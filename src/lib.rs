//! Umbrella crate re-exporting the PAAF workspace.
pub use pao_core as pao;
pub use pao_design as design;
pub use pao_drc as drc;
pub use pao_geom as geom;
pub use pao_obs as obs;
pub use pao_router as router;
pub use pao_tech as tech;
pub use pao_testgen as testgen;
pub use pao_viz as viz;
