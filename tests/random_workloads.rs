//! Randomized end-to-end guarantee: on any generated workload (any
//! flavour, size, seed, utilization), the full PAAF flow leaves zero
//! failed pins and every selected access point sits on its pin.

use paaf::pao::PinAccessOracle;
use paaf::testgen::{generate, SuiteCase, TechFlavor};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<Value = SuiteCase> {
    (
        prop::sample::select(vec![
            TechFlavor::N45,
            TechFlavor::N32A,
            TechFlavor::N32B,
            TechFlavor::N14,
        ]),
        20usize..90,
        0usize..2,
        60u32..95,
        any::<u64>(),
    )
        .prop_map(|(flavor, cells, macros, utilization, seed)| SuiteCase {
            name: format!("rnd{seed}"),
            flavor,
            cells,
            macros,
            nets: cells,
            io_pins: 4,
            utilization,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 4,
        ..ProptestConfig::default()
    })]

    #[test]
    fn paaf_never_fails_pins_on_generated_workloads(case in arb_case()) {
        let (tech, design) = generate(&case);
        let result = PinAccessOracle::new().analyze(&tech, &design);
        prop_assert_eq!(
            result.stats.failed_pins, 0,
            "case {:?}: {}", case, result.stats
        );
        prop_assert_eq!(result.stats.dirty_aps, 0);
        prop_assert_eq!(result.stats.pins_without_aps, 0);
        // Selected access points are on their pins.
        for net in design.nets() {
            for (comp, pin_name) in net.comp_pins() {
                let master = design.component(comp).master_in(&tech).expect("master");
                let pi = master
                    .pins
                    .iter()
                    .position(|p| p.name == pin_name)
                    .expect("pin");
                let ap = result
                    .access_point(&design, comp, pi)
                    .expect("access point exists");
                let on_pin = design
                    .placed_pin_shapes(&tech, comp)
                    .iter()
                    .any(|&(p, _, r)| p == pi && r.contains(ap.pos));
                prop_assert!(on_pin, "case {:?}: AP off pin {comp}/{pin_name}", case);
            }
        }
    }
}
