//! Randomized end-to-end guarantee: on any generated workload (any
//! flavour, size, seed, utilization), the full PAAF flow leaves zero
//! failed pins and every selected access point sits on its pin.

use paaf::pao::PinAccessOracle;
use paaf::testgen::{generate, SuiteCase, TechFlavor};
use pao_ptest::{check, Rng};

fn arb_case(rng: &mut Rng) -> SuiteCase {
    let flavor = *rng.pick(&[
        TechFlavor::N45,
        TechFlavor::N32A,
        TechFlavor::N32B,
        TechFlavor::N14,
    ]);
    let cells = rng.gen_range(20usize..90);
    let seed = rng.next_u64();
    SuiteCase {
        name: format!("rnd{seed}"),
        flavor,
        cells,
        macros: rng.gen_range(0usize..2),
        nets: cells,
        io_pins: 4,
        utilization: rng.gen_range(60u32..95),
        seed,
    }
}

#[test]
fn paaf_never_fails_pins_on_generated_workloads() {
    check("paaf_never_fails_pins_on_generated_workloads", 12, |rng| {
        let case = arb_case(rng);
        let (tech, design) = generate(&case);
        let result = PinAccessOracle::new().analyze(&tech, &design);
        assert_eq!(
            result.stats.failed_pins, 0,
            "case {case:?}: {}",
            result.stats
        );
        assert_eq!(result.stats.dirty_aps, 0);
        assert_eq!(result.stats.pins_without_aps, 0);
        // Selected access points are on their pins.
        for net in design.nets() {
            for (comp, pin_name) in net.comp_pins() {
                let master = design.component(comp).master_in(&tech).expect("master");
                let pi = master
                    .pins
                    .iter()
                    .position(|p| p.name == pin_name)
                    .expect("pin");
                let ap = result
                    .access_point(&design, comp, pi)
                    .expect("access point exists");
                let on_pin = design
                    .placed_pin_shapes(&tech, comp)
                    .iter()
                    .any(|&(p, _, r)| p == pi && r.contains(ap.pos));
                assert!(on_pin, "case {case:?}: AP off pin {comp}/{pin_name}");
            }
        }
    });
}
