//! Integration: the full text-format flow — generate, write LEF/DEF,
//! re-parse, and verify the analysis is identical on both copies.

use paaf::design::def;
use paaf::pao::PinAccessOracle;
use paaf::tech::lef;
use paaf::testgen::{generate, SuiteCase};

#[test]
fn analysis_identical_after_lefdef_roundtrip() {
    let (tech, design) = generate(&SuiteCase::small_smoke());

    let lef_text = lef::write_lef(&tech);
    let def_text = def::write_def(&design, &tech);
    let tech2 = lef::parse_lef(&lef_text).expect("LEF parses");
    let design2 = def::parse_def(&def_text, &tech2).expect("DEF parses");

    let r1 = PinAccessOracle::new().analyze(&tech, &design);
    let r2 = PinAccessOracle::new().analyze(&tech2, &design2);

    assert_eq!(r1.stats.unique_instances, r2.stats.unique_instances);
    assert_eq!(r1.stats.total_aps, r2.stats.total_aps);
    assert_eq!(r1.stats.failed_pins, r2.stats.failed_pins);
    // Identical selected access points for every connected pin.
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            let master = design.component(comp).master_in(&tech).unwrap();
            let pi = master.pins.iter().position(|p| p.name == pin_name).unwrap();
            let a = r1.access_point(&design, comp, pi).map(|a| a.pos);
            let b = r2.access_point(&design2, comp, pi).map(|a| a.pos);
            assert_eq!(a, b, "{comp} {pin_name}");
        }
    }
}

#[test]
fn def_text_references_resolve() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let def_text = def::write_def(&design, &tech);
    // Every component master named in the DEF exists in the tech.
    let design2 = def::parse_def(&def_text, &tech).expect("DEF parses");
    for c in design2.components() {
        assert!(tech.macro_by_name(&c.master).is_some(), "{}", c.master);
    }
    // Every net terminal resolves to a pin of its master.
    for net in design2.nets() {
        for (comp, pin) in net.comp_pins() {
            let m = design2.component(comp).master_in(&tech).unwrap();
            assert!(m.pin(&pin).is_some(), "{} {pin}", m.name);
        }
    }
}

#[test]
fn lef_parser_rejects_garbage_gracefully() {
    assert!(lef::parse_lef("LAYER M1 TYPE ROUTING ; WIDTH banana ; END M1").is_err());
    // An empty file is a valid (empty) library.
    let t = lef::parse_lef("").expect("empty LEF ok");
    assert!(t.layers().is_empty());
}
