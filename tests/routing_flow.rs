//! Integration: pin access → detailed routing → DRC scoring (the
//! Experiment 3 pipeline) on a small case.

use paaf::pao::PinAccessOracle;
use paaf::router::route::{RouteConfig, Router};
use paaf::router::{baseline_pin_access, score, BaselineConfig};
use paaf::testgen::{generate, SuiteCase};

fn world() -> (paaf::tech::Tech, paaf::design::Design) {
    generate(&SuiteCase::small_smoke())
}

#[test]
fn three_access_arms_rank_correctly() {
    let (tech, design) = world();
    let router = Router::new(&tech, &design, RouteConfig::default());

    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let with_pao = router.route_with_pao(&pao);
    let drcs_pao = score::count_drcs(&tech, &design, &with_pao);

    let base = baseline_pin_access(&tech, &design, &BaselineConfig::default());
    let with_base = router.route_with_accessor(|c, p| base.access_point(&design, c, p));
    let drcs_base = score::count_drcs(&tech, &design, &with_base);

    let naive = router.route_with_accessor(|_, _| None);
    let drcs_naive = score::count_drcs(&tech, &design, &naive);

    // The paper's ordering: PAAF < unvalidated baseline ≤ blind center
    // access (allow the last two to tie — both are unvalidated).
    assert!(
        drcs_pao < drcs_base,
        "PAAF {drcs_pao} vs baseline {drcs_base}"
    );
    assert!(
        drcs_pao < drcs_naive,
        "PAAF {drcs_pao} vs naive {drcs_naive}"
    );
}

#[test]
fn routing_is_deterministic() {
    let (tech, design) = world();
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let router = Router::new(&tech, &design, RouteConfig::default());
    let a = router.route_with_pao(&pao);
    let b = router.route_with_pao(&pao);
    assert_eq!(a.wirelength, b.wirelength);
    assert_eq!(a.via_count, b.via_count);
    assert_eq!(a.routed_nets, b.routed_nets);
    assert_eq!(
        score::count_drcs(&tech, &design, &a),
        score::count_drcs(&tech, &design, &b)
    );
}

#[test]
fn every_net_gets_wires_or_is_single_terminal() {
    let (tech, design) = world();
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let routed = Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&pao);
    // Every multi-terminal net must have at least its access vias
    // committed: check shape counts exceed the static design shapes.
    let mut static_shapes = 0usize;
    for (ci, _) in design.components().iter().enumerate() {
        let id = paaf::design::CompId(ci as u32);
        static_shapes += design.placed_pin_shapes(&tech, id).len();
        static_shapes += design.placed_obs_shapes(&tech, id).len();
    }
    assert!(
        routed.shapes.len() > static_shapes,
        "wires and vias committed: {} vs {static_shapes}",
        routed.shapes.len()
    );
    assert_eq!(routed.forced_terminals, 0);
}

#[test]
fn fig8_style_rendering_works_end_to_end() {
    let (tech, design) = world();
    let router = Router::new(&tech, &design, RouteConfig::default());
    let naive = router.route_with_accessor(|_, _| None);
    let violations = score::audit_routed(&tech, &design, &naive);
    assert!(!violations.is_empty());
    let window = violations[0].marker.expanded(3000);
    let svg = paaf::viz::render_window(
        &tech,
        &design,
        Some(&naive.shapes),
        &[],
        &violations,
        window,
        &paaf::viz::RenderOptions::default(),
    );
    assert!(svg.contains("stroke-dasharray"), "DRC markers rendered");
}

#[test]
fn routed_shape_invariants() {
    let (tech, design) = world();
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let routed = Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&pao);
    // Every committed wire is at least the layer's wire width in both
    // dimensions (strips/patches are wider, never thinner).
    for &(_, layer, r) in &routed.wires {
        let w = tech.layer(layer).width;
        assert!(
            r.min_side() >= w,
            "wire {r} thinner than layer width {w} on {}",
            tech.layer(layer).name
        );
        assert!(tech.layer(layer).is_routing());
    }
    // Access vias index into the via list, and access vias exist for
    // connected pins.
    for &i in &routed.access_vias {
        assert!(i < routed.vias.len());
    }
    assert!(!routed.access_vias.is_empty());
    // Via shapes live on their declared layers inside the shape set.
    for &(vid, pos, owner) in routed.vias.iter().take(20) {
        for (layer, rect) in tech.via(vid).placed_shapes(pos) {
            assert!(
                routed
                    .shapes
                    .query(layer, rect)
                    .any(|(r, o)| r == rect && o == owner),
                "via shape missing from shape set"
            );
        }
    }
}

#[test]
fn routed_def_round_trips_through_parser() {
    let (tech, design) = world();
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let routed = Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&pao);
    let text = paaf::router::defout::write_routed_def(&tech, &design, &routed);
    let reparsed = paaf::design::def::parse_def(&text, &tech).expect("routed DEF parses");
    assert_eq!(reparsed.nets().len(), design.nets().len());
    assert_eq!(reparsed.connected_pin_count(), design.connected_pin_count());
}
