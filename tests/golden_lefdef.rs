//! Robustness: parse "foreign-style" LEF/DEF with constructs our writer
//! never emits (comments, PROPERTYDEFINITIONS, VIAS/SPECIALNETS sections,
//! unusual whitespace) — the shapes real files throw at a parser.

use paaf::design::def;
use paaf::tech::lef;

const FOREIGN_LEF: &str = r#"
# Foreign LEF with header noise and exotic statements
VERSION 5.8 ;
NAMESCASESENSITIVE ON ;
BUSBITCHARS "[]" ;
DIVIDERCHAR "/" ;
UNITS
  TIME NANOSECONDS 100 ;
  DATABASE MICRONS 2000 ;
END UNITS
MANUFACTURINGGRID 0.005 ;
PROPERTYDEFINITIONS
  MACRO stuff STRING ;
END PROPERTYDEFINITIONS
LAYER poly TYPE MASTERSLICE ; END poly
LAYER M1
  TYPE ROUTING ; DIRECTION HORIZONTAL ;
  PITCH 0.19 ; OFFSET 0.095 ; WIDTH 0.06 ;
  SPACING 0.06 ;
  THICKNESS 0.13 ; RESISTANCE RPERSQ 0.38 ; CAPACITANCE CPERSQDIST 7.7e-05 ;
END M1
LAYER V1 TYPE CUT ; WIDTH 0.05 ; SPACING 0.08 ; END V1
LAYER M2
  TYPE ROUTING ; DIRECTION VERTICAL ; PITCH 0.2 ; WIDTH 0.06 ; SPACING 0.06 ;
END M2
VIA via1_foreign DEFAULT
  LAYER M1 ; RECT -0.065 -0.035 0.065 0.035 ;
  LAYER V1 ; RECT -0.025 -0.025 0.025 0.025 ;
  LAYER M2 ; RECT -0.035 -0.065 0.035 0.065 ;
END via1_foreign
SITE unit CLASS CORE ; SYMMETRY Y ; SIZE 0.19 BY 1.4 ; END unit
MACRO WEIRD_CELL
  CLASS CORE ;
  FOREIGN WEIRD_CELL 0 0 ;
  ORIGIN 0 0 ;
  SIZE 0.57 BY 1.4 ;
  SYMMETRY X Y ;
  SITE unit ;
  PIN A
    DIRECTION INPUT ; USE SIGNAL ; SHAPE ABUTMENT ;
    ANTENNAGATEAREA 0.04 ;
    PORT
      CLASS NONE ;
      LAYER M1 ;
        RECT 0.05 0.2 0.12 0.6 ;
    END
  END A
  PIN VDD
    DIRECTION INOUT ; USE POWER ;
    PORT LAYER M1 ; RECT 0 1.35 0.57 1.45 ; END
  END VDD
END WEIRD_CELL
END LIBRARY
"#;

const FOREIGN_DEF: &str = r#"
###############################################
# Foreign DEF
###############################################
VERSION 5.8 ;
DIVIDERCHAR "/" ;
BUSBITCHARS "[]" ;
DESIGN weird_top ;
TECHNOLOGY tech ;
UNITS DISTANCE MICRONS 2000 ;
PROPERTYDEFINITIONS
  DESIGN x STRING ;
END PROPERTYDEFINITIONS
DIEAREA ( 0 0 ) ( 11400 2800 ) ;
ROW r0 unit 0 0 N DO 30 BY 1 STEP 380 0 ;
TRACKS Y 140 DO 10 STEP 280 LAYER M1 ;
TRACKS X 190 DO 29 STEP 400 LAYER M2 ;
GCELLGRID X 0 DO 4 STEP 3000 ;
GCELLGRID Y 0 DO 2 STEP 1500 ;
VIAS 1 ;
 - custom_via + VIARULE vr + CUTSIZE 50 50 ;
END VIAS
COMPONENTS 2 ;
 - u0 WEIRD_CELL + SOURCE DIST + PLACED ( 0 0 ) N
   + PROPERTY stuff "hello" ;
 - u1 WEIRD_CELL + FIXED ( 1140 0 ) N ;
END COMPONENTS
PINS 1 ;
 - in[0] + NET in[0] + DIRECTION INPUT + USE SIGNAL
   + LAYER M2 ( -35 -35 ) ( 35 35 ) + PLACED ( 0 1400 ) N ;
END PINS
SPECIALNETS 1 ;
 - VDD ( * VDD ) + USE POWER ;
END SPECIALNETS
NETS 2 ;
 - n0 ( u0 A ) ( PIN in[0] ) + USE SIGNAL ;
 - n1 ( u1 A )
   + ROUTED M2 ( 1230 140 ) ( 1230 1400 )
     NEW M1 ( 1230 1400 ) ( 2000 1400 )
   ;
END NETS
END DESIGN
"#;

#[test]
fn foreign_lef_parses() {
    let tech = lef::parse_lef(FOREIGN_LEF).expect("foreign LEF parses");
    assert_eq!(tech.dbu_per_micron, 2000);
    // MASTERSLICE poly is kept as a non-routing layer.
    assert!(tech.layer_by_name("poly").unwrap().is_cut());
    assert_eq!(tech.routing_layers().len(), 2);
    let via = tech.via(tech.via_id("via1_foreign").unwrap());
    assert!(via.is_default);
    let cell = tech.macro_by_name("WEIRD_CELL").unwrap();
    assert_eq!(cell.signal_pins().count(), 1);
    assert_eq!(cell.pins.len(), 2);
    assert_eq!(cell.width, 1140);
}

#[test]
fn foreign_def_parses() {
    let tech = lef::parse_lef(FOREIGN_LEF).expect("LEF parses");
    let design = def::parse_def(FOREIGN_DEF, &tech).expect("foreign DEF parses");
    assert_eq!(design.name, "weird_top");
    assert_eq!(design.components().len(), 2);
    assert!(
        design
            .component(design.component_by_name("u1").unwrap())
            .is_fixed
    );
    assert_eq!(design.io_pins().len(), 1);
    assert_eq!(design.io_pins()[0].name, "in[0]");
    assert_eq!(design.nets().len(), 2);
    // The pre-routed net still resolves its terminal.
    let n1 = design.net(design.net_by_name("n1").unwrap());
    assert_eq!(n1.comp_pins().count(), 1);
    assert_eq!(design.rows.len(), 1);
    assert_eq!(design.tracks.len(), 2);
}

#[test]
fn full_analysis_on_foreign_files() {
    let tech = lef::parse_lef(FOREIGN_LEF).expect("LEF parses");
    let design = def::parse_def(FOREIGN_DEF, &tech).expect("DEF parses");
    let result = paaf::pao::PinAccessOracle::new().analyze(&tech, &design);
    // u0 at x=0 and u1 at x=1140 have different phases against the M2
    // track pattern (pitch 400) → two unique instances.
    assert_eq!(result.stats.unique_instances, 2);
    assert!(result.stats.total_aps > 0);
    assert_eq!(result.stats.pins_without_aps, 0);
}

#[test]
fn unplaced_components_are_skipped_by_analysis() {
    let tech = lef::parse_lef(FOREIGN_LEF).expect("LEF parses");
    let src = FOREIGN_DEF.replace(
        "- u1 WEIRD_CELL + FIXED ( 1140 0 ) N ;",
        "- u1 WEIRD_CELL + UNPLACED ;",
    );
    let design = def::parse_def(&src, &tech).expect("DEF parses");
    let u1 = design.component(design.component_by_name("u1").unwrap());
    assert!(!u1.is_placed);
    // Only u0 gets analyzed.
    let result = paaf::pao::PinAccessOracle::new().analyze(&tech, &design);
    assert_eq!(result.stats.unique_instances, 1);
    // Round-trip keeps the UNPLACED marker.
    let text = def::write_def(&design, &tech);
    assert!(text.contains("+ UNPLACED ;"));
    let again = def::parse_def(&text, &tech).expect("re-parses");
    assert!(
        !again
            .component(again.component_by_name("u1").unwrap())
            .is_placed
    );
}
