//! End-to-end integration: synthetic benchmark → PAAF analysis.

use paaf::pao::{PaoConfig, PinAccessOracle};
use paaf::testgen::{generate, SuiteCase, TechFlavor};

fn smoke_result() -> (paaf::tech::Tech, paaf::design::Design, paaf::pao::PaoResult) {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let result = PinAccessOracle::new().analyze(&tech, &design);
    (tech, design, result)
}

#[test]
fn paaf_is_clean_on_smoke_case() {
    let (_, design, result) = smoke_result();
    let s = &result.stats;
    assert!(s.unique_instances > 0);
    assert!(s.unique_instances <= design.components().len());
    // PAAF's defining properties (paper Tables II/III): zero dirty APs,
    // zero pins without APs, zero failed pins.
    assert_eq!(s.dirty_aps, 0, "{s}");
    assert_eq!(s.pins_without_aps, 0, "{s}");
    assert_eq!(s.failed_pins, 0, "{s}");
    assert!(s.total_aps >= 3 * s.unique_instances, "{s}");
    assert_eq!(s.total_pins, design.connected_pin_count());
}

#[test]
fn access_points_lie_on_pin_shapes() {
    let (tech, design, result) = smoke_result();
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            let master = design.component(comp).master_in(&tech).unwrap();
            let pin_idx = master.pins.iter().position(|p| p.name == pin_name).unwrap();
            let ap = result
                .access_point(&design, comp, pin_idx)
                .unwrap_or_else(|| panic!("no AP for {comp} {pin_name}"));
            let shapes = design.placed_pin_shapes(&tech, comp);
            assert!(
                shapes
                    .iter()
                    .any(|&(pi, _, r)| pi == pin_idx && r.contains(ap.pos)),
                "AP {} for {comp}/{pin_name} off its pin",
                ap.pos
            );
        }
    }
}

#[test]
fn without_bca_is_never_better() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let with = PinAccessOracle::new().analyze(&tech, &design);
    let mut cfg = PaoConfig::default();
    cfg.pattern.bca = false;
    cfg.pattern.max_patterns = 1;
    let without = PinAccessOracle::with_config(cfg).analyze(&tech, &design);
    assert!(without.stats.failed_pins >= with.stats.failed_pins);
}

#[test]
fn n32a_flavour_multiplies_unique_instances() {
    // The incommensurate row height must yield clearly more unique
    // instances than the commensurate N32B at the same size.
    let mk = |flavor| SuiteCase {
        name: "u".into(),
        flavor,
        cells: 300,
        macros: 0,
        nets: 100,
        io_pins: 0,
        utilization: 82,
        seed: 5,
    };
    let (ta, da) = generate(&mk(TechFlavor::N32A));
    let (tb, db) = generate(&mk(TechFlavor::N32B));
    let ua = paaf::pao::unique::extract_unique_instances(&ta, &da).len();
    let ub = paaf::pao::unique::extract_unique_instances(&tb, &db).len();
    assert!(ua > ub, "N32A {ua} vs N32B {ub}");
}

#[test]
fn aes14_is_clean_with_repair() {
    // The 14 nm case needs the post-selection repair pass for a handful of
    // frustrated boundary-pin chains; end state must be fully clean
    // (paper: "DRC-clean access points for all 57K instance pins").
    let (tech, design) = generate(&paaf::testgen::aes14_case());
    let result = PinAccessOracle::new().analyze(&tech, &design);
    assert_eq!(result.stats.failed_pins, 0, "{}", result.stats);
    assert_eq!(result.stats.pins_without_aps, 0);
    // Every access point in this flavour is off-track (Fig. 9's point).
    assert_eq!(result.stats.off_track_aps, result.stats.total_aps);
}

#[test]
fn reported_stats_are_reproducible() {
    // The stats in the result must agree with an independent recount.
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let result = PinAccessOracle::new().analyze(&tech, &design);
    let (total, failed) = paaf::pao::oracle::count_failed_pins(&tech, &design, &result);
    assert_eq!(total, result.stats.total_pins);
    assert_eq!(failed, result.stats.failed_pins);
    // And the whole analysis is deterministic.
    let again = PinAccessOracle::new().analyze(&tech, &design);
    assert_eq!(result.stats.total_aps, again.stats.total_aps);
    assert_eq!(result.selection, again.selection);
    assert_eq!(result.overrides.len(), again.overrides.len());
}
