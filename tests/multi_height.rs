//! Integration: multi-height cell support (the paper's future-work item
//! (i), implemented here).

use paaf::pao::PinAccessOracle;
use paaf::testgen::{generate, SuiteCase, TechFlavor};

fn world() -> (paaf::tech::Tech, paaf::design::Design) {
    // A case large enough that the double-height flop gets placed.
    generate(&SuiteCase {
        name: "mh".into(),
        flavor: TechFlavor::N45,
        cells: 250,
        macros: 0,
        nets: 200,
        io_pins: 8,
        utilization: 85,
        seed: 1234,
    })
}

#[test]
fn double_height_cells_are_placed_and_legal() {
    let (tech, design) = world();
    let mh: Vec<_> = design
        .components()
        .iter()
        .filter(|c| c.master == "DFFX2MH")
        .collect();
    assert!(!mh.is_empty(), "workload should place double-height flops");
    let row_h = TechFlavor::N45.row_height();
    for c in mh {
        // Even-row placement, N orientation, double height.
        assert_eq!(c.location.y % row_h, 0);
        assert_eq!((c.location.y / row_h) % 2, 0, "{}", c.name);
        assert_eq!(c.orient, pao_geom::Orient::N);
        assert_eq!(c.bbox(&tech).height(), 2 * row_h);
    }
    // No overlaps with any other component.
    let boxes: Vec<_> = design.components().iter().map(|c| c.bbox(&tech)).collect();
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            assert!(
                !boxes[i].overlaps(boxes[j]),
                "{} overlaps {}",
                design.components()[i].name,
                design.components()[j].name
            );
        }
    }
}

#[test]
fn multi_height_pins_get_clean_access() {
    let (tech, design) = world();
    let result = PinAccessOracle::new().analyze(&tech, &design);
    assert_eq!(result.stats.failed_pins, 0, "{}", result.stats);
    // Every connected pin of every double-height flop resolves.
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            if design.component(comp).master != "DFFX2MH" {
                continue;
            }
            let master = design.component(comp).master_in(&tech).unwrap();
            let pi = master.pins.iter().position(|p| p.name == pin_name).unwrap();
            let ap = result
                .access_point(&design, comp, pi)
                .unwrap_or_else(|| panic!("MH pin {pin_name} of {comp} failed"));
            // The AP is on the pin (which may sit in the upper row half).
            let shapes = design.placed_pin_shapes(&tech, comp);
            assert!(shapes
                .iter()
                .any(|&(p, _, r)| p == pi && r.contains(ap.pos)));
        }
    }
}

#[test]
fn multi_height_masters_have_alternating_rails() {
    let (tech, _) = world();
    let m = tech.macro_by_name("DFFX2MH").expect("double-height flop");
    let rails: Vec<_> = m.pins.iter().filter(|p| p.use_.is_supply()).collect();
    assert_eq!(rails.len(), 3, "one rail per row boundary");
    let grounds = rails
        .iter()
        .filter(|p| p.use_ == paaf::tech::PinUse::Ground)
        .count();
    assert_eq!(grounds, 2, "VSS-VDD-VSS pattern");
}
