//! Integration: multi-threaded analysis produces bit-identical results to
//! the single-threaded (paper measurement) mode.

use paaf::pao::{PaoConfig, PinAccessOracle};
use paaf::testgen::{generate, SuiteCase};

#[test]
fn threaded_analysis_matches_single_threaded() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let single = PinAccessOracle::new().analyze(&tech, &design);
    let cfg = PaoConfig {
        threads: 4,
        ..PaoConfig::default()
    };
    let multi = PinAccessOracle::with_config(cfg).analyze(&tech, &design);

    assert_eq!(single.stats.unique_instances, multi.stats.unique_instances);
    assert_eq!(single.stats.total_aps, multi.stats.total_aps);
    assert_eq!(single.stats.dirty_aps, multi.stats.dirty_aps);
    assert_eq!(single.stats.failed_pins, multi.stats.failed_pins);
    assert_eq!(single.selection, multi.selection);
    for (a, b) in single.unique.iter().zip(&multi.unique) {
        assert_eq!(a.info, b.info);
        assert_eq!(a.pin_aps, b.pin_aps);
        assert_eq!(a.pin_order, b.pin_order);
        assert_eq!(a.patterns, b.patterns);
    }
}
