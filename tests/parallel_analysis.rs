//! Integration: multi-threaded analysis produces bit-identical results to
//! the single-threaded (paper measurement) mode, for every thread count,
//! on generated suites and the checked-in LEF/DEF smoke benchmark.

use paaf::pao::{PaoConfig, PaoResult, PinAccessOracle};
use paaf::testgen::{generate, ispd18s_suite, SuiteCase};
use pao_design::Design;
use pao_tech::Tech;

fn analyze_with_threads(tech: &Tech, design: &Design, threads: usize) -> PaoResult {
    let cfg = PaoConfig {
        threads,
        ..PaoConfig::default()
    };
    PinAccessOracle::with_config(cfg).analyze(tech, design)
}

/// The determinism contract: everything except wall-clock/executor
/// telemetry must be equal.
fn assert_identical(base: &PaoResult, other: &PaoResult, label: &str) {
    assert!(
        base.stats.counters_eq(&other.stats),
        "{label}: stats counters diverged\nbase:\n{}\nother:\n{}",
        base.stats,
        other.stats
    );
    assert_eq!(base.comp_uniq, other.comp_uniq, "{label}: comp_uniq");
    assert_eq!(base.selection, other.selection, "{label}: selection");
    assert_eq!(base.overrides, other.overrides, "{label}: repair overrides");
    assert_eq!(base.unique.len(), other.unique.len(), "{label}: unique");
    for (a, b) in base.unique.iter().zip(&other.unique) {
        assert_eq!(a.info, b.info, "{label}: unique info");
        assert_eq!(a.pin_aps, b.pin_aps, "{label}: pin APs");
        assert_eq!(a.pin_order, b.pin_order, "{label}: pin order");
        assert_eq!(a.patterns, b.patterns, "{label}: patterns");
    }
}

#[test]
fn testgen_cases_identical_across_thread_counts() {
    let mut cases = vec![SuiteCase::small_smoke()];
    // The smallest Table I row (45 nm) plus a 32 nm case with a macro, so
    // the comparison covers block pins and planar access too.
    cases.push(ispd18s_suite().swap_remove(0));
    cases.push(SuiteCase {
        name: "par_macro".into(),
        flavor: paaf::testgen::TechFlavor::N32B,
        cells: 120,
        macros: 1,
        nets: 110,
        io_pins: 8,
        utilization: 80,
        seed: 99,
    });
    for case in cases {
        let (tech, design) = generate(&case);
        let base = analyze_with_threads(&tech, &design, 1);
        for threads in [2, 4, 8] {
            let multi = analyze_with_threads(&tech, &design, threads);
            assert_identical(&base, &multi, &format!("{} threads={threads}", case.name));
            // The executor actually engaged the requested worker count on
            // at least one phase (unless there was less work than workers).
            let engaged = multi.stats.apgen_exec.threads.max(
                multi
                    .stats
                    .audit_exec
                    .threads
                    .max(multi.stats.cluster_exec.threads),
            );
            assert!(engaged > 1, "{}: no phase ran parallel", case.name);
        }
    }
}

#[test]
fn smoke_benchmark_identical_across_thread_counts() {
    let root = env!("CARGO_MANIFEST_DIR");
    let lef = std::fs::read_to_string(format!("{root}/benchmarks/smoke.lef")).expect("smoke.lef");
    let def = std::fs::read_to_string(format!("{root}/benchmarks/smoke.def")).expect("smoke.def");
    let tech = pao_tech::lef::parse_lef(&lef).expect("parse smoke.lef");
    let design = pao_design::def::parse_def(&def, &tech).expect("parse smoke.def");
    let base = analyze_with_threads(&tech, &design, 1);
    for threads in [2, 4, 8] {
        let multi = analyze_with_threads(&tech, &design, threads);
        assert_identical(&base, &multi, &format!("smoke threads={threads}"));
    }
}
