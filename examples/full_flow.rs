//! The full flow on a mid-size testcase: LEF/DEF round-trip, PAAF
//! analysis, baseline comparison, detailed routing and DRC scoring —
//! everything the paper's evaluation exercises, end to end.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use paaf::pao::oracle::count_failed_pins_with;
use paaf::pao::PinAccessOracle;
use paaf::router::route::{RouteConfig, Router};
use paaf::router::{baseline_pin_access, score, BaselineConfig};
use paaf::testgen::{generate, ispd18s_suite, SuiteCase};

fn main() {
    // A reduced ispd18s_test1 so the example finishes in seconds.
    let case = SuiteCase {
        cells: 300,
        nets: 260,
        ..ispd18s_suite()[0].clone()
    };
    println!("== generate {} ==", case.name);
    let (tech, design) = generate(&case);

    // The generator's output round-trips through the LEF/DEF text formats.
    let lef = paaf::tech::lef::write_lef(&tech);
    let def = paaf::design::def::write_def(&design, &tech);
    let tech2 = paaf::tech::lef::parse_lef(&lef).expect("LEF round-trip");
    let design2 = paaf::design::def::parse_def(&def, &tech2).expect("DEF round-trip");
    println!(
        "LEF {} KiB / DEF {} KiB round-trip ok ({} components)",
        lef.len() / 1024,
        def.len() / 1024,
        design2.components().len()
    );

    // PAAF analysis.
    println!("\n== PAAF analysis ==");
    let pao = PinAccessOracle::new().analyze(&tech2, &design2);
    println!("{}", pao.stats);

    // Baseline comparison (Table II/III shape).
    println!("\n== TrRte-like baseline ==");
    let base = baseline_pin_access(&tech2, &design2, &BaselineConfig::default());
    let (total, base_failed) =
        count_failed_pins_with(&tech2, &design2, |c, p| base.access_point(&design2, c, p));
    println!(
        "baseline: {} APs, {}/{} failed pins  |  PAAF: {} APs, {}/{} failed pins",
        base.total_aps, base_failed, total, pao.stats.total_aps, pao.stats.failed_pins, total
    );

    // Detailed routing with both access arms (Experiment 3 shape).
    println!("\n== detailed routing ==");
    let router = Router::new(&tech2, &design2, RouteConfig::default());
    let routed = router.route_with_pao(&pao);
    let drcs_pao = score::count_drcs(&tech2, &design2, &routed);
    let naive = router.route_with_accessor(|_, _| None);
    let drcs_naive = score::count_drcs(&tech2, &design2, &naive);
    println!(
        "PAAF access : {} nets routed, {} vias, wirelength {}, DRCs {}",
        routed.routed_nets, routed.via_count, routed.wirelength, drcs_pao
    );
    println!(
        "naive access: {} nets routed, {} vias, wirelength {}, DRCs {}",
        naive.routed_nets, naive.via_count, naive.wirelength, drcs_naive
    );
    println!("\nDRC breakdown (naive arm):");
    for (rule, count) in score::drc_breakdown(&tech2, &design2, &naive) {
        println!("  {rule:<20} {count}");
    }
    assert!(drcs_pao < drcs_naive, "PAAF must win");
    println!(
        "\nPAAF reduces routed DRCs by {}x",
        drcs_naive.max(1) / drcs_pao.max(1)
    );
}
