//! Incremental re-analysis across placement changes — the paper's
//! motivating use case for a *fast* pin access oracle (placement
//! optimization loops re-query pin access after every move).
//!
//! ```text
//! cargo run --release --example incremental
//! ```

use paaf::design::CompId;
use paaf::pao::incremental::AnalysisCache;
use paaf::pao::PinAccessOracle;
use paaf::testgen::{generate, ispd18s_suite, SuiteCase};
use std::time::Instant;

fn main() {
    let case = SuiteCase {
        cells: 1200,
        nets: 1000,
        ..ispd18s_suite()[1].clone()
    };
    let (tech, mut design) = generate(&case);
    let oracle = PinAccessOracle::new();
    let mut cache = AnalysisCache::new();

    // Cold run: full three-step analysis (fills the cache).
    let t0 = Instant::now();
    let cold = oracle.analyze_with_cache(&tech, &design, &mut cache);
    let cold_t = t0.elapsed();
    println!(
        "cold analysis : {:.3}s  ({} unique instances, {} failed pins)",
        cold_t.as_secs_f64(),
        cold.stats.unique_instances,
        cold.stats.failed_pins
    );

    // A placement-optimizer-style loop: swap same-master instance pairs
    // (signature-preserving moves) and re-analyze after each change.
    let mut warm_total = 0.0f64;
    let mut moves = 0usize;
    for step in 0..5 {
        // Find two same-master instances and swap their locations.
        let mut swapped = false;
        'outer: for i in 0..design.components().len() {
            for j in (i + 1)..design.components().len() {
                let (a, b) = (
                    design.component(CompId(i as u32)),
                    design.component(CompId(j as u32)),
                );
                if a.master == b.master
                    && a.orient == b.orient
                    && a.location != b.location
                    && (i + j) % 7 == step % 7
                {
                    let (la, lb) = (a.location, b.location);
                    design.component_mut(CompId(i as u32)).location = lb;
                    design.component_mut(CompId(j as u32)).location = la;
                    swapped = true;
                    break 'outer;
                }
            }
        }
        if !swapped {
            continue;
        }
        moves += 1;
        let t0 = Instant::now();
        let warm = oracle.analyze_with_cache(&tech, &design, &mut cache);
        warm_total += t0.elapsed().as_secs_f64();
        assert_eq!(warm.stats.failed_pins, 0);
    }
    let (hits, misses) = cache.stats();
    println!(
        "warm analyses : {moves} moves in {warm_total:.3}s ({:.3}s each)",
        warm_total / moves.max(1) as f64
    );
    println!("cache         : {hits} signature hits, {misses} misses");
    println!(
        "speedup       : {:.1}x per placement iteration",
        cold_t.as_secs_f64() / (warm_total / moves.max(1) as f64)
    );
}
