//! Quickstart: generate a small benchmark, run the pin access oracle and
//! inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paaf::design::CompId;
use paaf::pao::PinAccessOracle;
use paaf::testgen::{generate, SuiteCase};

fn main() {
    // 1. A placed design. Real flows parse LEF/DEF here:
    //    `pao_tech::lef::parse_lef(...)` + `pao_design::def::parse_def(...)`.
    //    The synthetic generator gives us a self-contained workload.
    let (tech, design) = generate(&SuiteCase::small_smoke());
    println!(
        "design `{}`: {} components, {} nets, {} connected pins",
        design.name,
        design.components().len(),
        design.nets().len(),
        design.connected_pin_count()
    );

    // 2. Run the three-step PAAF analysis with the paper's defaults
    //    (k = 3 access points per pin, α = 0.3, up to 3 BCA-diverse
    //    patterns per unique instance).
    let oracle = PinAccessOracle::new();
    let result = oracle.analyze(&tech, &design);
    println!("\n{}\n", result.stats);

    // 3. Query access for a specific pin of a specific instance.
    let comp = CompId(0);
    let inst = design.component(comp);
    let master = inst.master_in(&tech).expect("known master");
    for (pin_idx, pin) in master.pins.iter().enumerate() {
        if pin.use_.is_supply() {
            continue;
        }
        match result.access_point(&design, comp, pin_idx) {
            Some(ap) => {
                let via = ap
                    .primary_via()
                    .map_or("planar", |v| tech.via(v).name.as_str());
                println!(
                    "{}/{:4}  access at {}  [{} x {}]  via {}",
                    inst.name, pin.name, ap.pos, ap.nonpref_type, ap.pref_type, via
                );
            }
            None => println!("{}/{} has NO access (failed pin)", inst.name, pin.name),
        }
    }
}
