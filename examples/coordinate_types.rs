//! The paper's Figure 3, as a runnable example: the four coordinate types
//! on a hand-built pin, showing which up-via placements are DRC-clean.
//!
//! ```text
//! cargo run --release --example coordinate_types
//! ```
//!
//! Writes `out/fig3_coordinate_types.svg`.

use paaf::design::{Design, TrackPattern};
use paaf::drc::{DrcEngine, ShapeSet};
use paaf::geom::{Dir, Point, Rect};
use paaf::pao::apgen::{generate_pin_access_points, ApGenConfig};
use paaf::pao::unique::local_pin_owner;
use paaf::pao::CoordType;
use paaf::tech::rules::MinStepRule;
use paaf::tech::{Layer, Tech, ViaDef};

fn main() {
    // A minimal 3-layer tech where the bar via's enclosure height equals
    // the wire width — the Fig. 3 setup.
    let mut tech = Tech::new(1000);
    let mut m1 = Layer::routing("metal1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    let m1 = tech.add_layer(m1);
    let v1 = tech.add_layer(Layer::cut("via1", 50, 120));
    let m2 = tech.add_layer(Layer::routing("metal2", Dir::Vertical, 200, 60, 70));
    let mut via = ViaDef::new(
        "via1_0",
        m1,
        vec![Rect::new(-65, -30, 65, 30)],
        v1,
        vec![Rect::new(-25, -25, 25, 25)],
        m2,
        vec![Rect::new(-30, -65, 30, 65)],
    );
    via.is_default = true;
    tech.add_via(via);

    let mut design = Design::new("fig3", Rect::new(0, 0, 2000, 1000));
    design
        .tracks
        .push(TrackPattern::new(Dir::Horizontal, 100, 200, 5, vec![m1]));
    design
        .tracks
        .push(TrackPattern::new(Dir::Vertical, 100, 200, 10, vec![m2]));

    // The pin: a wide, short bar whose y-span misses every track — the
    // situation of Fig. 3 where on-track and half-track up-vias cause
    // min-step DRCs and only shape-center / enclosure-boundary are clean.
    let pin = Rect::new(300, 210, 1400, 280);
    let mut ctx = ShapeSet::new(tech.layers().len());
    ctx.insert(m1, pin, local_pin_owner(0));
    ctx.rebuild();
    let engine = DrcEngine::new(&tech);

    println!("pin {pin} (70 tall) between tracks y=100 and y=300\n");
    println!(
        "{:<22} {:>8} {:>10}",
        "preferred-dir type", "#points", "#clean"
    );
    for ty in CoordType::PREFERRED {
        let cfg = ApGenConfig {
            k: usize::MAX, // no early exit: enumerate everything
            pref_types: vec![ty],
            nonpref_types: vec![CoordType::OnTrack],
            ..ApGenConfig::default()
        };
        let clean =
            generate_pin_access_points(&tech, &design, &engine, &ctx, 0, &[(m1, pin)], &cfg);
        // Count raw candidates of this type by disabling validation value:
        // re-deriving candidates is internal, so report clean only.
        println!("{:<22} {:>8} {:>10}", ty.to_string(), "-", clean.len());
    }

    // The full Algorithm 1 with defaults picks the cheapest clean types.
    let aps = generate_pin_access_points(
        &tech,
        &design,
        &engine,
        &ctx,
        0,
        &[(m1, pin)],
        &ApGenConfig::default(),
    );
    println!("\nAlgorithm 1 result ({} access points):", aps.len());
    for ap in &aps {
        println!(
            "  {}  ({} x, {} y)  vias: {}",
            ap.pos,
            ap.nonpref_type,
            ap.pref_type,
            ap.vias.len()
        );
    }

    // Render the pin, tracks and access points.
    let window = Rect::new(0, 0, 1800, 600);
    let markers: Vec<(Point, bool)> = aps.iter().map(|ap| (ap.pos, true)).collect();
    let svg = paaf::viz::render_window(
        &tech,
        &design,
        Some(&ctx),
        &markers,
        &[],
        window,
        &paaf::viz::RenderOptions {
            tracks: true,
            cell_outlines: false,
            max_layer: None,
        },
    );
    std::fs::create_dir_all("out").ok();
    std::fs::write("out/fig3_coordinate_types.svg", svg).ok();
    println!("\nwrote out/fig3_coordinate_types.svg");
}
