//! The paper's Figures 5–7, runnable: pin ordering, the DP graph,
//! BCA-diverse access pattern generation for one unique instance, and the
//! cluster-level DP over instances.
//!
//! ```text
//! cargo run --release --example pattern_dp
//! ```

use paaf::pao::pattern::order_pins;
use paaf::pao::{PaoConfig, PinAccessOracle};
use paaf::testgen::{generate, SuiteCase};

fn main() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let result = PinAccessOracle::new().analyze(&tech, &design);

    // Pick the unique instance with the most analyzed pins.
    let u = result
        .unique
        .iter()
        .max_by_key(|u| u.pin_order.len())
        .expect("some unique instance");
    let master = tech.macro_by_name(&u.info.master).expect("master");
    println!(
        "unique instance {}: master {} orient {} ({} members)",
        u.info.id,
        u.info.master,
        u.info.orient,
        u.info.members.len()
    );

    // Figure 5: pin ordering by x_avg + α·y_avg.
    println!("\npin ordering (alpha = 0.3):");
    let order = order_pins(&u.pin_aps, 0.3);
    assert_eq!(order, u.pin_order);
    for (rank, &pi) in order.iter().enumerate() {
        let aps = &u.pin_aps[pi];
        let xavg: f64 = aps.iter().map(|a| a.pos.x as f64).sum::<f64>() / aps.len() as f64;
        let yavg: f64 = aps.iter().map(|a| a.pos.y as f64).sum::<f64>() / aps.len() as f64;
        let boundary = if rank == 0 || rank == order.len() - 1 {
            "  (boundary pin)"
        } else {
            ""
        };
        println!(
            "  #{rank}: pin {:4} — {} APs, key = {:.0}{boundary}",
            master.pins[pi].name,
            aps.len(),
            xavg + 0.3 * yavg,
        );
    }

    // Figure 6: the DP graph dimensions.
    let vertices: usize = order.iter().map(|&pi| u.pin_aps[pi].len()).sum();
    let edges: usize = order
        .windows(2)
        .map(|w| u.pin_aps[w[0]].len() * u.pin_aps[w[1]].len())
        .sum();
    println!(
        "\nDP graph: {} access-point vertices, {} edges (+ source/sink)",
        vertices, edges
    );

    // The BCA-diverse patterns.
    println!("\naccess patterns (up to 3, boundary-conflict-aware):");
    for (k, pat) in u.patterns.iter().enumerate() {
        let choices: Vec<String> = order
            .iter()
            .zip(&pat.choice)
            .map(|(&pi, &ap)| format!("{}[{}]@{}", master.pins[pi].name, ap, u.pin_aps[pi][ap].pos))
            .collect();
        println!(
            "  pattern {k}: cost {:4}  validated {}  {}",
            pat.cost,
            pat.validated,
            choices.join("  ")
        );
    }

    // Boundary APs differ across patterns — the BCA effect.
    if u.patterns.len() >= 2 {
        let first: Vec<usize> = u.patterns.iter().map(|p| p.choice[0]).collect();
        println!("\nboundary (first-pin) AP per pattern: {first:?} — diversity courtesy of BCA");
    }

    // Figure 7: the cluster-level DP — ordered cell instances, each with
    // its access patterns as DP vertices.
    let clusters = paaf::pao::cluster::build_clusters(&tech, &design);
    let big = clusters
        .iter()
        .max_by_key(|c| c.comps.len())
        .expect("some cluster");
    println!(
        "\nlargest cluster ({} instances, left to right):",
        big.comps.len()
    );
    let mut vertices = 0usize;
    for &comp in &big.comps {
        let c = design.component(comp);
        let pats = result.comp_uniq[comp.index()]
            .map(|ui| result.unique[ui.index()].patterns.len())
            .unwrap_or(0);
        vertices += pats;
        println!(
            "  {:6} {:8} x={:<7} {} pattern vertice(s), selected #{:?}",
            c.name,
            c.master,
            c.location.x,
            pats,
            result.selection[comp.index()]
        );
    }
    println!(
        "cluster DP: {vertices} vertices over {} layers",
        big.comps.len()
    );

    // Compare against a run without BCA.
    let mut cfg = PaoConfig::default();
    cfg.pattern.bca = false;
    let no_bca = PinAccessOracle::with_config(cfg).analyze(&tech, &design);
    let u2 = &no_bca.unique[u.info.id.index()];
    println!(
        "without BCA the same instance yields {} pattern(s) (BCA: {})",
        u2.patterns.len(),
        u.patterns.len()
    );
}
