//! Route a benchmark and export the result as industry-standard routed
//! DEF (plus a full-die SVG).
//!
//! ```text
//! cargo run --release --example routed_def
//! ```

use paaf::pao::PinAccessOracle;
use paaf::router::defout::write_routed_def;
use paaf::router::route::{RouteConfig, Router};
use paaf::router::score;
use paaf::testgen::{generate, SuiteCase};

fn main() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let result = PinAccessOracle::new().analyze(&tech, &design);
    let routed = Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&result);
    println!(
        "routed {} nets, {} vias, {} dbu wirelength, {} DRCs ({} pin-access)",
        routed.routed_nets,
        routed.via_count,
        routed.wirelength,
        score::count_drcs(&tech, &design, &routed),
        score::access_drcs(&tech, &design, &routed),
    );

    std::fs::create_dir_all("out").ok();
    let def = write_routed_def(&tech, &design, &routed);
    std::fs::write("out/smoke_routed.def", &def).expect("write DEF");
    println!("wrote out/smoke_routed.def ({} KiB)", def.len() / 1024);

    // A die overview with the routing and any violations marked.
    let violations = score::audit_routed(&tech, &design, &routed);
    let svg = paaf::viz::render_window(
        &tech,
        &design,
        Some(&routed.shapes),
        &[],
        &violations,
        design.die_area,
        &paaf::viz::RenderOptions::default(),
    );
    std::fs::write("out/smoke_routed.svg", svg).expect("write SVG");
    println!("wrote out/smoke_routed.svg");
}
