#![warn(missing_docs)]

//! Deterministic, dependency-free randomness and a tiny property-test
//! harness.
//!
//! The workspace builds and tests fully offline; external registries are
//! unreachable in the environments this repository targets. This crate
//! replaces the `rand` and `proptest` dev-dependencies with:
//!
//! * [`Rng`] — an xorshift128+ generator (seeded through splitmix64) with
//!   bias-free integer ranges, bools, picks and shuffles. Identical output
//!   on every platform and every run for a given seed.
//! * [`check`] — a fixed-case property runner: `cases` deterministic seeds
//!   are derived from the property name, and a failing case re-raises the
//!   original panic payload prefixed with the case index and seed so the
//!   failure reproduces with a one-line unit test.
//!
//! ```
//! use pao_ptest::{check, Rng};
//!
//! check("addition_commutes", 64, |rng: &mut Rng| {
//!     let a = rng.gen_range(-1000i64..1000);
//!     let b = rng.gen_range(-1000i64..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

/// Splitmix64 step — used for seeding and seed derivation.
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xorshift128+ pseudo-random generator.
///
/// Not cryptographic; statistical quality is ample for test-case and
/// workload generation. The stream is fixed forever for a given seed —
/// generated benchmarks are reproducible across machines and releases.
#[derive(Debug, Clone)]
pub struct Rng {
    s0: u64,
    s1: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let mut s1 = splitmix64(&mut sm);
        if s0 == 0 && s1 == 0 {
            s1 = 1; // xorshift state must not be all-zero
        }
        Rng { s0, s1 }
    }

    /// The next raw 64-bit value.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// An independent generator split off this one (advances `self`).
    #[must_use]
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Uniform value in `[0, span)` for `span >= 1`, bias-free via
    /// rejection sampling. `span == 2^64` is represented as `0`.
    fn below(&mut self, span: u128) -> u64 {
        debug_assert!(span > 0 && span <= (1u128 << 64));
        if span == 1u128 << 64 {
            return self.next_u64();
        }
        let span64 = span as u64;
        // Largest multiple of `span` that fits in u64, as an exclusive cap.
        let limit = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let x = self.next_u64();
            if x <= limit {
                return x % span64;
            }
        }
    }

    /// Uniform integer in `range` (half-open `a..b` or inclusive `a..=b`),
    /// for the integer types implementing [`SampleRange`].
    ///
    /// # Panics
    ///
    /// Panics on an empty range, like `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        let (lo, hi) = range.bounds();
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = (hi - lo + 1) as u128;
        // `below(span) < span = hi - lo + 1`, so `lo + below(span) <= hi`
        // always fits; degrade to `hi` rather than panic regardless.
        lo.checked_add(i128::from(self.below(span)))
            .map_or_else(|| R::cast(hi), R::cast)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53-bit fraction comparison keeps this exact and portable.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics when the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

/// Integer ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced integer type.
    type Out;
    /// Inclusive `(low, high)` bounds of the range.
    fn bounds(&self) -> (i128, i128);
    /// Narrows a sampled value back to the output type.
    fn cast(v: i128) -> Self::Out;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Out = $t;
            #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn bounds(&self) -> (i128, i128) {
                (self.start as i128, self.end as i128 - 1)
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn cast(v: i128) -> $t { v as $t }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Out = $t;
            #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn bounds(&self) -> (i128, i128) {
                (*self.start() as i128, *self.end() as i128)
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn cast(v: i128) -> $t { v as $t }
        }
    )*};
}

impl_sample_range!(i32, i64, u8, u32, u64, usize);

/// FNV-1a hash of a name — stable seed derivation for [`check`].
#[must_use]
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic seed of case `i` of property `name` (exposed so a
/// failing case can be replayed in isolation: `Rng::new(case_seed(..))`).
#[must_use]
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut sm = fnv1a(name) ^ (u64::from(case) << 32 | u64::from(case));
    splitmix64(&mut sm)
}

/// Runs `prop` against `cases` deterministic random cases.
///
/// On a failing case the original panic payload is re-raised (assert
/// messages survive) after printing the property name, case index and seed
/// to stderr.
///
/// # Panics
///
/// Re-raises the first failing case's panic.
pub fn check<F>(name: &str, cases: u32, mut prop: F)
where
    F: FnMut(&mut Rng),
{
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("property `{name}` failed at case {case}/{cases} (seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-17i64..23);
            assert!((-17..23).contains(&v));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
            let w = rng.gen_range(5u32..6);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::new(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = Rng::new(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(rng.gen_range(0u64..=u64::MAX));
        }
        assert!(distinct.len() > 60);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng::new(0).gen_range(5i64..5);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = Rng::new(4);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn check_runs_all_cases() {
        let mut ran = 0;
        check("counter", 17, |_| ran += 1);
        assert_eq!(ran, 17);
    }

    #[test]
    #[should_panic(expected = "boom 4")]
    fn check_preserves_panic_payload() {
        let mut n = 0;
        check("fails_eventually", 10, |_| {
            n += 1;
            assert!(n < 4, "boom {n}");
        });
    }

    #[test]
    fn case_seeds_differ_across_names_and_cases() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }
}
