//! Rate-limited stderr warnings.
//!
//! A daemon under hostile or degraded load can hit the same warning
//! thousands of times per second (shed requests, oversized frames,
//! degraded ECOs). Emitting every occurrence floods stderr and slows the
//! very path that is already struggling; emitting none hides the problem.
//! [`warn_limited`] emits at most one message per key per interval and
//! folds the rest into a suppressed count reported with the next emit.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct KeyState {
    last_emit: Instant,
    suppressed: u64,
}

static STATE: Mutex<Option<HashMap<&'static str, KeyState>>> = Mutex::new(None);

/// Emits `warning: <msg>` to stderr at most once per `interval` for each
/// `key`. Calls inside the interval are counted, not printed; the next
/// emitted line appends `(N similar suppressed)`. Returns `true` when the
/// message was actually emitted (testable without capturing stderr).
///
/// The message is built lazily so suppressed calls pay no formatting
/// cost — pass a closure, not a formatted string.
pub fn warn_limited(key: &'static str, interval: Duration, msg: impl FnOnce() -> String) -> bool {
    let mut guard = match STATE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let map = guard.get_or_insert_with(HashMap::new);
    let now = Instant::now();
    match map.get_mut(key) {
        Some(state) if now.duration_since(state.last_emit) < interval => {
            state.suppressed += 1;
            false
        }
        Some(state) => {
            let suppressed = std::mem::take(&mut state.suppressed);
            state.last_emit = now;
            if suppressed > 0 {
                eprintln!("warning: {} ({suppressed} similar suppressed)", msg());
            } else {
                eprintln!("warning: {}", msg());
            }
            true
        }
        None => {
            map.insert(
                key,
                KeyState {
                    last_emit: now,
                    suppressed: 0,
                },
            );
            eprintln!("warning: {}", msg());
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_emits_then_suppresses_then_reopens() {
        let interval = Duration::from_millis(80);
        assert!(warn_limited("test.ratelimit.a", interval, || "one".into()));
        assert!(!warn_limited("test.ratelimit.a", interval, || "two".into()));
        assert!(!warn_limited("test.ratelimit.a", interval, || "three".into()));
        std::thread::sleep(interval + Duration::from_millis(20));
        assert!(warn_limited("test.ratelimit.a", interval, || "four".into()));
    }

    #[test]
    fn keys_are_independent() {
        let interval = Duration::from_secs(3600);
        assert!(warn_limited("test.ratelimit.b", interval, || "b".into()));
        assert!(warn_limited("test.ratelimit.c", interval, || "c".into()));
        assert!(!warn_limited("test.ratelimit.b", interval, || "b".into()));
    }

    #[test]
    fn suppressed_calls_skip_formatting() {
        let interval = Duration::from_secs(3600);
        assert!(warn_limited("test.ratelimit.d", interval, || "d".into()));
        // The closure must not run for a suppressed call.
        let _ = warn_limited("test.ratelimit.d", interval, || {
            panic!("formatted a suppressed warning")
        });
    }
}
