#![warn(missing_docs)]

//! `pao-obs` — std-only observability for the PAAF pipeline.
//!
//! The crate provides three cooperating facilities, all designed so that
//! instrumentation left in hot loops costs ~nothing when disabled (a
//! single relaxed atomic load per call site):
//!
//! 1. **Spans** ([`trace`]): lightweight begin/end records buffered in
//!    thread-local vectors and flushed through a mutex-guarded global
//!    sink. Each thread records onto a *track*; the parallel executor
//!    assigns one track per worker so traces show per-worker timelines.
//! 2. **Metrics** ([`metrics`]): named counters and log₂-bucket
//!    histograms, accumulated thread-locally and merged into a global
//!    registry when threads exit (or on explicit flush). Snapshots are
//!    plain `BTreeMap`s, diffable between two points in time.
//! 3. **Decision ledger** ([`ledger`]): fixed-size attribution records
//!    (why a candidate was rejected, which rule fired) buffered per
//!    worker and drained in canonical sorted order — the substrate of
//!    `pao explain` / `pao report`.
//! 4. **Export** ([`trace::TraceDump::to_chrome_json`]): the span sink
//!    serializes to Chrome trace-event JSON loadable in Perfetto
//!    (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Recording is controlled by three independent process-wide switches:
//!
//! ```
//! pao_obs::enable_metrics();
//! pao_obs::metrics::counter_add("demo.widgets", 3);
//! let snap = pao_obs::metrics::snapshot();
//! assert_eq!(snap.counter("demo.widgets"), 3);
//! # pao_obs::disable_all();
//! # pao_obs::reset();
//! ```
//!
//! Thread-local buffers are merged when their thread exits; [`metrics::snapshot`]
//! and [`trace::take_trace`] additionally flush the *calling* thread, so
//! call them after worker threads have been joined (the PAAF executor
//! joins its scoped workers at the end of every phase, making phase
//! boundaries natural collection points).

pub mod clock;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod procstat;
pub mod ratelimit;
pub mod trace;

pub use procstat::{peak_rss_bytes, peak_rss_mb, thread_cpu_ns};

use std::sync::atomic::{AtomicU8, Ordering};

const METRICS_BIT: u8 = 1;
const TRACE_BIT: u8 = 2;
const LEDGER_BIT: u8 = 4;

static MODE: AtomicU8 = AtomicU8::new(0);

/// Turns on counter/histogram recording process-wide.
pub fn enable_metrics() {
    MODE.fetch_or(METRICS_BIT, Ordering::SeqCst);
}

/// Turns on span recording process-wide (also pins the trace epoch, so
/// the first span does not pay the one-time clock initialization).
pub fn enable_trace() {
    trace::init_epoch();
    MODE.fetch_or(TRACE_BIT, Ordering::SeqCst);
}

/// Turns on decision-ledger recording process-wide (see [`ledger`]).
pub fn enable_ledger() {
    MODE.fetch_or(LEDGER_BIT, Ordering::SeqCst);
}

/// Turns off decision-ledger recording only, leaving metrics/trace
/// recording as they were. A resident service scopes ledger collection
/// to one analysis this way without dropping its request counters.
pub fn disable_ledger() {
    MODE.fetch_and(!LEDGER_BIT, Ordering::SeqCst);
}

/// Turns off all recording. Already-buffered data stays collectable.
pub fn disable_all() {
    MODE.store(0, Ordering::SeqCst);
}

/// `true` when counters/histograms are being recorded.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    MODE.load(Ordering::Relaxed) & METRICS_BIT != 0
}

/// `true` when spans are being recorded.
#[inline]
#[must_use]
pub fn trace_enabled() -> bool {
    MODE.load(Ordering::Relaxed) & TRACE_BIT != 0
}

/// `true` when decision-ledger records are being collected.
#[inline]
#[must_use]
pub fn ledger_enabled() -> bool {
    MODE.load(Ordering::Relaxed) & LEDGER_BIT != 0
}

/// Clears all collected metrics, span and ledger data (the current
/// thread's buffers and the global sinks). Recording switches are left
/// as-is.
pub fn reset() {
    metrics::reset();
    trace::reset();
    ledger::reset();
}

/// Flushes the calling thread's buffered metrics, spans *and* ledger
/// records into the global sinks. Worker threads call this before
/// finishing; the TLS `Drop` flush alone is not enough because
/// `std::thread::scope` can unblock before TLS destructors run.
pub fn flush_thread() {
    metrics::flush_thread();
    trace::flush_thread();
    ledger::flush_thread();
}

pub use ledger::{take as take_ledger, LedgerDump, LedgerEvent, LedgerPhase, LedgerRecord};
pub use metrics::{counter_add, gauge_max, hist_record, snapshot, Hist, MetricsSnapshot};
pub use ratelimit::warn_limited;
pub use trace::{record_span_at, span, take_trace, Span, SpanEvent, TraceDump};

#[cfg(test)]
mod tests {
    #[test]
    fn switches_toggle_independently() {
        // Serialize against other global-state tests in this binary.
        let _g = crate::metrics::test_lock();
        super::disable_all();
        assert!(!super::metrics_enabled());
        assert!(!super::trace_enabled());
        super::enable_metrics();
        assert!(super::metrics_enabled());
        assert!(!super::trace_enabled());
        super::enable_trace();
        assert!(super::trace_enabled());
        super::disable_all();
        assert!(!super::metrics_enabled() && !super::trace_enabled());
        super::reset();
    }
}
