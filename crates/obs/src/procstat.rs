//! Process/thread statistics from `/proc` — std-only, Linux-aware.
//!
//! Two readings feed the benchmark surfaces:
//!
//! * [`peak_rss_bytes`] — the process's high-water resident set
//!   (`VmHWM` in `/proc/self/status`), the honest answer to "did the
//!   1M-component run fit in memory". The kernel tracks the maximum for
//!   us, so one read at exit covers the whole run.
//! * [`thread_cpu_ns`] — the calling thread's cumulative on-CPU time
//!   (`/proc/thread-self/schedstat`, first field). Sampling it at worker
//!   start/end gives busy time that excludes involuntary preemption,
//!   unlike wall-clock spans which count time spent *descheduled* as
//!   busy when workers oversubscribe the machine.
//!
//! Both return `None` off Linux (or on exotic kernels without the
//! files); callers fall back to wall-clock accounting.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// when `/proc/self/status` is unavailable.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set size in mebibytes, rounded to the nearest MiB.
#[must_use]
pub fn peak_rss_mb() -> Option<u64> {
    peak_rss_bytes().map(|b| (b + (1 << 19)) >> 20)
}

/// Cumulative on-CPU time of the **calling thread** in nanoseconds, or
/// `None` when `/proc/thread-self/schedstat` is unavailable.
///
/// The schedstat first field only advances while the thread is actually
/// running, so `end - start` deltas measure work, not scheduler wait.
#[must_use]
pub fn thread_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    stat.split_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("linux exposes /proc/self/status");
        assert!(rss > 1 << 20, "peak RSS {rss} suspiciously small");
        assert!(peak_rss_mb().unwrap() >= 1);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn thread_cpu_advances_with_work() {
        let a = thread_cpu_ns().expect("linux exposes schedstat");
        // Burn a little CPU; schedstat must not go backwards.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns().unwrap();
        assert!(b >= a, "{b} < {a}");
    }

    #[test]
    fn readers_never_panic() {
        let _ = peak_rss_bytes();
        let _ = peak_rss_mb();
        let _ = thread_cpu_ns();
    }
}
