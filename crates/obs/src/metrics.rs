//! Named counters and histograms with thread-local accumulation.
//!
//! Every recording thread owns a small private map from metric name to
//! value; [`counter_add`]/[`hist_record`] touch only that map (no global
//! lock in the hot path). The map merges into the process-wide registry
//! when the thread exits and when the owning thread calls [`snapshot`]
//! or [`flush_thread`]. Names are `&'static str` by design: every metric
//! the pipeline emits is known at compile time, which keeps the hot path
//! free of `String` allocation.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets: bucket `i` holds values whose bit length is
/// `i` (bucket 0 holds only the value 0, bucket 64 holds `≥ 2^63`).
const BUCKETS: usize = 65;

/// A mergeable log₂-bucket histogram of `u64` samples.
///
/// Exact `count`/`sum`/`min`/`max`; quantiles are approximated by the
/// upper bound of the bucket containing the requested rank, clamped to
/// the observed `[min, max]` — at most a 2× relative error, plenty for
/// "are cluster sizes ~3 or ~300" style questions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Largest value a bucket can hold.
fn bucket_upper(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`); 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Approximate median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Approximate 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The samples recorded since `earlier` (bucket-wise subtraction;
    /// `earlier` must be a previous snapshot of the same histogram).
    /// `min`/`max` cannot be reconstructed for the interval and keep the
    /// whole-history values.
    #[must_use]
    pub fn delta_since(&self, earlier: &Hist) -> Hist {
        let mut out = self.clone();
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        for (b, &e) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *b = b.saturating_sub(e);
        }
        out
    }
}

#[derive(Default)]
struct Registry {
    counters: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Hist>,
    gauges: HashMap<&'static str, u64>,
}

impl Registry {
    fn merge_from(&mut self, tls: &mut ThreadMetrics) {
        for (name, v) in tls.counters.drain() {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in tls.hists.drain() {
            self.hists.entry(name).or_default().merge(&h);
        }
        for (name, v) in tls.gauges.drain() {
            let g = self.gauges.entry(name).or_insert(0);
            *g = (*g).max(v);
        }
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

#[derive(Default)]
struct ThreadMetrics {
    counters: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Hist>,
    gauges: HashMap<&'static str, u64>,
}

impl ThreadMetrics {
    fn flush(&mut self) {
        if self.counters.is_empty() && self.hists.is_empty() && self.gauges.is_empty() {
            return;
        }
        let mut reg = registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reg.merge_from(self);
    }
}

impl Drop for ThreadMetrics {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadMetrics> = RefCell::new(ThreadMetrics::default());
}

/// Adds `delta` to the named counter. No-op (one relaxed atomic load)
/// when metrics are disabled or `delta == 0`.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if delta == 0 || !crate::metrics_enabled() {
        return;
    }
    TLS.with(|t| {
        *t.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

/// Records one sample into the named histogram. No-op when metrics are
/// disabled.
#[inline]
pub fn hist_record(name: &'static str, value: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    TLS.with(|t| {
        t.borrow_mut().hists.entry(name).or_default().record(value);
    });
}

/// Raises the named gauge to at least `value` (max-merge semantics).
/// Gauges report *levels* — e.g. scratch-buffer high-water marks — so
/// merging keeps the maximum seen across all threads and calls. No-op
/// when metrics are disabled.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let g = t.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    });
}

/// Merges the calling thread's buffered metrics into the global registry.
///
/// Worker threads must call this before finishing: the TLS `Drop` flush
/// is only a backstop, and `std::thread::scope` can unblock before TLS
/// destructors run, so metrics left to the destructor may be invisible
/// to a `snapshot` immediately after the scope.
pub fn flush_thread() {
    TLS.with(|t| t.borrow_mut().flush());
}

/// A point-in-time copy of every metric: counters and histograms keyed
/// by name, in deterministic (sorted) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Hist>,
    /// Gauge levels by name (max-merged; e.g. buffer high-water marks).
    pub gauges: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty() && self.gauges.is_empty()
    }

    /// The named counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if recorded.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// The named gauge's level (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// What was recorded between `earlier` and this snapshot. Metrics
    /// whose interval value is zero are dropped. Gauges are levels, not
    /// rates: a gauge that rose above its earlier level is kept at its
    /// **absolute** new level, an unchanged one is dropped.
    #[must_use]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(name));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, h) in &self.hists {
            let d = match earlier.hist(name) {
                Some(e) => h.delta_since(e),
                None => h.clone(),
            };
            if d.count() > 0 {
                out.hists.insert(name.clone(), d);
            }
        }
        for (name, &v) in &self.gauges {
            if v > earlier.gauge(name) {
                out.gauges.insert(name.clone(), v);
            }
        }
        out
    }

    /// Renders an aligned two-section text table (counters, then
    /// histograms with count/mean/p50/p95/max) for terminal display.
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let w = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            let w = self
                .gauges
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max(5);
            let _ = writeln!(out, "  {:<w$}  {:>9}", "gauge", "level");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<w$}  {v:>9}");
            }
        }
        if !self.hists.is_empty() {
            let w = self.hists.keys().map(String::len).max().unwrap_or(0).max(4);
            let _ = writeln!(
                out,
                "  {:<w$}  {:>9} {:>10} {:>8} {:>8} {:>8}",
                "hist", "count", "mean", "p50", "p95", "max"
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  {:>9} {:>10.1} {:>8} {:>8} {:>8}",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.max()
                );
            }
        }
        out
    }
}

/// Flushes the calling thread and copies the global registry. Metrics
/// buffered by *other live* threads are not included — join workers
/// first (PAAF phases do).
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    flush_thread();
    let reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = MetricsSnapshot::default();
    for (&name, &v) in &reg.counters {
        out.counters.insert(name.to_owned(), v);
    }
    for (&name, h) in &reg.hists {
        out.hists.insert(name.to_owned(), h.clone());
    }
    for (&name, &v) in &reg.gauges {
        out.gauges.insert(name.to_owned(), v);
    }
    out
}

/// Clears the global registry and the calling thread's buffers.
pub fn reset() {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.counters.clear();
        t.hists.clear();
        t.gauges.clear();
    });
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.counters.clear();
    reg.hists.clear();
    reg.gauges.clear();
}

/// Serializes tests that touch the process-global recording state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_records_and_summarizes() {
        let mut h = Hist::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        // p50: rank 3 → value 3 lives in bucket 2 (values 2..=3).
        assert_eq!(h.p50(), 3);
        // p95: rank 5 → the 100 sample's bucket, clamped to max.
        assert_eq!(h.p95(), 100);
        // Empty histogram is all zeros.
        let e = Hist::new();
        assert_eq!((e.count(), e.min(), e.max(), e.p50()), (0, 0, 0, 0));
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn hist_merge_equals_combined_recording() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut both = Hist::new();
        for v in [5u64, 9, 12] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 900, 31] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn hist_delta_since_subtracts() {
        let mut h = Hist::new();
        h.record(4);
        let early = h.clone();
        h.record(7);
        h.record(9);
        let d = h.delta_since(&early);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 16);
    }

    #[test]
    fn zero_and_huge_values_bucket_correctly() {
        let mut h = Hist::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn counters_merge_across_threads() {
        let _g = test_lock();
        crate::enable_metrics();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter_add("test.merge.ctr", 2);
                    }
                    hist_record("test.merge.hist", 8);
                    // Scope exit does not wait for TLS destructors.
                    flush_thread();
                });
            }
        });
        // Workers flushed explicitly; main thread adds its share.
        counter_add("test.merge.ctr", 1);
        let snap = snapshot();
        assert_eq!(snap.counter("test.merge.ctr"), 4 * 200 + 1);
        let h = snap.hist("test.merge.hist").expect("hist recorded");
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 8);
        crate::disable_all();
        reset();
    }

    #[test]
    fn gauges_max_merge_across_threads() {
        let _g = test_lock();
        crate::enable_metrics();
        reset();
        std::thread::scope(|s| {
            for level in [30u64, 80, 50] {
                s.spawn(move || {
                    gauge_max("test.gauge.hiwater", level);
                    gauge_max("test.gauge.hiwater", level / 2);
                    flush_thread();
                });
            }
        });
        gauge_max("test.gauge.hiwater", 10);
        let snap = snapshot();
        assert_eq!(snap.gauge("test.gauge.hiwater"), 80);
        assert_eq!(snap.gauge("test.gauge.absent"), 0);
        // Levels: unchanged gauges drop out of a delta, raised ones keep
        // their absolute level.
        let d = snap.delta_since(&snap);
        assert!(d.gauges.is_empty());
        gauge_max("test.gauge.hiwater", 200);
        let d = snapshot().delta_since(&snap);
        assert_eq!(d.gauge("test.gauge.hiwater"), 200);
        assert!(d.to_table().contains("test.gauge.hiwater"));
        crate::disable_all();
        reset();
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = test_lock();
        crate::disable_all();
        reset();
        counter_add("test.disabled.ctr", 5);
        hist_record("test.disabled.hist", 5);
        let snap = snapshot();
        assert_eq!(snap.counter("test.disabled.ctr"), 0);
        assert!(snap.hist("test.disabled.hist").is_none());
    }

    #[test]
    fn snapshot_delta_drops_unchanged() {
        let _g = test_lock();
        crate::enable_metrics();
        reset();
        counter_add("test.delta.a", 10);
        counter_add("test.delta.b", 1);
        let first = snapshot();
        counter_add("test.delta.a", 7);
        hist_record("test.delta.h", 3);
        let second = snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.counter("test.delta.a"), 7);
        assert!(!d.counters.contains_key("test.delta.b"));
        assert_eq!(d.hist("test.delta.h").map(Hist::count), Some(1));
        crate::disable_all();
        reset();
    }

    #[test]
    fn table_renders_counters_and_hists() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("alpha".into(), 42);
        let mut h = Hist::new();
        h.record(16);
        snap.hists.insert("sizes".into(), h);
        let t = snap.to_table();
        assert!(t.contains("alpha"));
        assert!(t.contains("42"));
        assert!(t.contains("p95"));
        assert!(t.contains("sizes"));
    }
}
