//! Span recording and Chrome trace-event export.
//!
//! Spans are complete (`ph: "X"`) events: a name, a *track*, a start
//! timestamp relative to the process trace epoch, and a duration, all in
//! nanoseconds. Each thread buffers its spans locally and flushes them
//! to the global sink when the buffer fills or the thread exits; the
//! sink is a mutex-guarded vector capped at [`MAX_EVENTS`] (overflow is
//! counted, not silently lost).
//!
//! Tracks map to Chrome trace `tid`s. Track 0 is the main thread; the
//! parallel executor assigns track `w + 1` to worker `w`, so every
//! phase's worker `w` lands on the same timeline — idle gaps between a
//! worker's spans are directly visible in Perfetto.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard cap on buffered span events (~32 MB at 32 B/event); beyond it
/// new events increment [`TraceDump::dropped`] instead.
pub const MAX_EVENTS: usize = 1 << 20;

/// Thread-local buffer size triggering a flush to the global sink.
const FLUSH_AT: usize = 4096;

/// One complete span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (a compile-time label; phase or item kind).
    pub name: &'static str,
    /// Track (Chrome `tid`): 0 = main thread, `w + 1` = executor worker `w`.
    pub track: u32,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Default)]
struct Sink {
    events: Vec<SpanEvent>,
    dropped: u64,
    tracks: BTreeMap<u32, String>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Pins the trace epoch to "now" if not already set. Called by
/// [`crate::enable_trace`]; harmless to call again.
pub(crate) fn init_epoch() {
    let _ = epoch();
}

struct ThreadTrace {
    track: u32,
    buf: Vec<SpanEvent>,
}

impl ThreadTrace {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut s = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let room = MAX_EVENTS.saturating_sub(s.events.len());
        if self.buf.len() > room {
            s.dropped += (self.buf.len() - room) as u64;
            self.buf.truncate(room);
        }
        s.events.append(&mut self.buf);
    }
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadTrace> = const {
        RefCell::new(ThreadTrace {
            track: 0,
            buf: Vec::new(),
        })
    };
}

/// Assigns the calling thread to `track` and registers the track's
/// display label (first registration wins). The executor calls this at
/// worker startup; the main thread defaults to track 0 ("main").
pub fn set_track(track: u32, label: &str) {
    TLS.with(|t| t.borrow_mut().track = track);
    let mut s = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    s.tracks.entry(track).or_insert_with(|| label.to_owned());
}

/// Records a span whose endpoints were measured by the caller (the
/// executor reuses its busy-time instants, so tracing adds no extra
/// clock reads in the hot loop). No-op when tracing is disabled.
#[inline]
pub fn record_span_at(name: &'static str, start: Instant, dur: Duration) {
    if !crate::trace_enabled() {
        return;
    }
    let start_ns =
        u64::try_from(start.saturating_duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX);
    let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let track = t.track;
        t.buf.push(SpanEvent {
            name,
            track,
            start_ns,
            dur_ns,
        });
        if t.buf.len() >= FLUSH_AT {
            t.flush();
        }
    });
}

/// An RAII span: records a [`SpanEvent`] from construction to drop.
/// Construction when tracing is disabled costs one atomic load.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_span_at(self.name, start, start.elapsed());
        }
    }
}

/// Opens a span named `name` on the calling thread's track.
#[must_use]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: crate::trace_enabled().then(Instant::now),
    }
}

/// Flushes the calling thread's buffered spans into the global sink.
///
/// Worker threads must call this before finishing: the TLS `Drop` flush
/// is only a backstop, and `std::thread::scope` can unblock before TLS
/// destructors run, so spans left to the destructor may be invisible to
/// a `take_trace` immediately after the scope.
pub fn flush_thread() {
    TLS.with(|t| t.borrow_mut().flush());
}

/// Everything the sink collected: events, track labels, overflow count.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Collected spans (sink order: per-thread batches).
    pub events: Vec<SpanEvent>,
    /// Track display labels by track id.
    pub tracks: BTreeMap<u32, String>,
    /// Events discarded after [`MAX_EVENTS`] was reached.
    pub dropped: u64,
}

impl TraceDump {
    /// Total span nanoseconds per track — the tracing-side view of
    /// per-worker busy time.
    #[must_use]
    pub fn busy_ns_per_track(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            *out.entry(e.track).or_insert(0u64) += e.dur_ns;
        }
        out
    }

    /// Serializes to Chrome trace-event JSON (the "JSON array format"
    /// wrapped in an object), loadable in Perfetto or `chrome://tracing`.
    /// Timestamps are microseconds with nanosecond precision.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"pao\"}}",
        );
        let mut tracks = self.tracks.clone();
        tracks.entry(0).or_insert_with(|| "main".to_owned());
        for e in &self.events {
            tracks
                .entry(e.track)
                .or_insert_with(|| format!("track {}", e.track));
        }
        for (id, label) in &tracks {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{id},\
                 \"args\":{{\"name\":{}}}}}",
                crate::json::quote(label)
            );
            // Keep main on top, workers in index order.
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":{id},\
                 \"args\":{{\"sort_index\":{id}}}}}"
            );
        }
        for e in &self.events {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"X\",\"cat\":\"pao\",\"name\":{},\"pid\":0,\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03}}}",
                crate::json::quote(e.name),
                e.track,
                e.start_ns / 1000,
                e.start_ns % 1000,
                e.dur_ns / 1000,
                e.dur_ns % 1000,
            );
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{}}}}}\n",
            self.dropped
        );
        out
    }
}

/// Flushes the calling thread and drains the global sink. Spans buffered
/// by *other live* threads are not included — join workers first.
#[must_use]
pub fn take_trace() -> TraceDump {
    flush_thread();
    let mut s = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    TraceDump {
        events: std::mem::take(&mut s.events),
        tracks: s.tracks.clone(),
        dropped: std::mem::take(&mut s.dropped),
    }
}

/// Clears the sink and the calling thread's buffer.
pub fn reset() {
    TLS.with(|t| t.borrow_mut().buf.clear());
    let mut s = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    s.events.clear();
    s.tracks.clear();
    s.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_in_order() {
        let _g = crate::metrics::test_lock();
        crate::enable_trace();
        reset();
        {
            let _outer = span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let dump = take_trace();
        crate::disable_all();
        assert_eq!(dump.events.len(), 2);
        // Inner drops first.
        let inner = &dump.events[0];
        let outer = &dump.events[1];
        assert_eq!((inner.name, outer.name), ("inner", "outer"));
        // Outer encloses inner in time.
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(
            inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns,
            "inner must end within outer"
        );
        reset();
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _g = crate::metrics::test_lock();
        crate::disable_all();
        reset();
        {
            let _s = span("ghost");
        }
        record_span_at("ghost2", Instant::now(), Duration::from_millis(1));
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn worker_tracks_collect_across_threads() {
        let _g = crate::metrics::test_lock();
        crate::enable_trace();
        reset();
        std::thread::scope(|s| {
            for w in 0..3u32 {
                s.spawn(move || {
                    set_track(w + 1, &format!("worker {w}"));
                    let t0 = Instant::now();
                    record_span_at("item", t0, Duration::from_micros(50));
                    // Scope exit does not wait for TLS destructors.
                    flush_thread();
                });
            }
        });
        let dump = take_trace();
        crate::disable_all();
        assert_eq!(dump.events.len(), 3);
        let tracks: std::collections::BTreeSet<u32> = dump.events.iter().map(|e| e.track).collect();
        assert_eq!(tracks.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(dump.tracks.get(&2).map(String::as_str), Some("worker 1"));
        let busy = dump.busy_ns_per_track();
        assert_eq!(busy[&1], 50_000);
        reset();
    }

    #[test]
    fn chrome_export_is_valid_json_with_nonnegative_durations() {
        let dump = TraceDump {
            events: vec![
                SpanEvent {
                    name: "apgen",
                    track: 1,
                    start_ns: 1500,
                    dur_ns: 2750,
                },
                SpanEvent {
                    name: "phase.\"quoted\"\\x",
                    track: 0,
                    start_ns: 0,
                    dur_ns: 0,
                },
            ],
            tracks: std::iter::once((1u32, "worker 0".to_owned())).collect(),
            dropped: 2,
        };
        let json = dump.to_chrome_json();
        crate::json::validate(&json).expect("chrome export must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.750"));
        assert!(json.contains("\"droppedEvents\":2"));
        // Golden check: every emitted duration is non-negative (no "-"
        // directly after a dur key).
        assert!(!json.contains("\"dur\":-"));
    }

    #[test]
    fn sink_cap_counts_drops() {
        // Exercise the truncation arithmetic without 1M allocations.
        let mut t = ThreadTrace {
            track: 0,
            buf: vec![
                SpanEvent {
                    name: "x",
                    track: 0,
                    start_ns: 0,
                    dur_ns: 1,
                };
                8
            ],
        };
        let _g = crate::metrics::test_lock();
        reset();
        {
            let mut s = sink()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s.events = vec![
                SpanEvent {
                    name: "pre",
                    track: 0,
                    start_ns: 0,
                    dur_ns: 1,
                };
                MAX_EVENTS - 3
            ];
        }
        t.flush();
        let dump = take_trace();
        assert_eq!(dump.events.len(), MAX_EVENTS);
        assert_eq!(dump.dropped, 5);
        reset();
    }
}
