//! The decision ledger: a compact attribution stream recording *why*
//! individual candidates were rejected across the PAAF pipeline.
//!
//! Counters (see [`crate::metrics`]) say how much work each phase did;
//! the ledger records the per-decision facts behind those aggregates:
//! which access-point candidate was rejected by which DRC rule and
//! sub-check, which pattern-DP edge was penalized and why, which
//! selection edge probed dirty, and what the repair pass did to each
//! dirty pin. `pao explain` and `pao report` are built on it.
//!
//! Design constraints (DESIGN.md §15):
//!
//! - **Fixed-size records, no strings on the hot path.** A
//!   [`LedgerRecord`] is a flat `Copy` struct of integer codes; names
//!   are resolved only at presentation time.
//! - **Per-worker buffering.** Records accumulate in a thread-local
//!   vector and merge into the bounded global sink in chunks (worker
//!   exit, chunk overflow, or explicit [`flush_thread`]).
//! - **Bounded with a drop counter.** The global sink holds at most
//!   [`capacity`] records; overflow increments `dropped` instead of
//!   growing without bound. A dump with `dropped == 0` is complete.
//! - **Deterministic across thread counts.** The set of records is a
//!   function of the input alone (recording sites only log facts that
//!   are identical for every worker schedule); [`take`] sorts records
//!   into canonical order, so two complete dumps of the same analysis
//!   are bit-identical regardless of thread count.
//! - **Off by default, cheap when off**: one relaxed atomic load per
//!   call site (callers additionally guard record *construction* on
//!   [`crate::ledger_enabled`]).

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Sentinel for "no rule / no sub-check" in a record's `rule` and
/// `subcheck` fields.
pub const NO_CODE: u8 = u8::MAX;

/// Pipeline phase a ledger event belongs to. Mirrors the PAAF steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LedgerPhase {
    /// Step 1: per-pin access point generation.
    Apgen = 0,
    /// Step 2: unique-instance access pattern generation (DP).
    Pattern = 1,
    /// Step 3: cluster-based access pattern selection (DP).
    Select = 2,
    /// Post-selection repair rounds.
    Repair = 3,
}

impl LedgerPhase {
    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LedgerPhase::Apgen => "apgen",
            LedgerPhase::Pattern => "pattern",
            LedgerPhase::Select => "select",
            LedgerPhase::Repair => "repair",
        }
    }
}

/// What happened. Each event fixes the meaning of the record's
/// `entity`/`candidate`/`aux` fields (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LedgerEvent {
    /// An access-point candidate failed validation. `entity` =
    /// `(unique_instance << 16) | pin`, `candidate` = per-pin trial
    /// index, `aux` = layer index, `x`/`y` = candidate position,
    /// `rule`/`subcheck` = offending DRC rule and sub-check (or
    /// [`NO_CODE`] when no via candidate existed at all).
    ApReject = 0,
    /// An access-point candidate was accepted. Fields as [`Self::ApReject`]
    /// minus the reject attribution.
    ApAccept = 1,
    /// A pattern-DP edge cost was penalized because its two access
    /// points are not mutually DRC-clean. `entity` =
    /// `(unique_instance << 16) | pin`, `candidate` = this pin's AP
    /// choice, `aux` = previous pin's AP choice.
    PatEdgeDrc = 2,
    /// A pattern-DP history pair (choices two pins apart) probed dirty.
    /// Fields as [`Self::PatEdgeDrc`] with `aux` = the choice two pins back.
    PatEdgeHistory = 3,
    /// A pattern-DP edge was penalized by the boundary-conflict-aware
    /// term (boundary AP already used by an earlier pattern). `entity` =
    /// `(unique_instance << 16) | pin`, `candidate` = AP choice,
    /// `aux` = 0 for the left boundary pin, 1 for the right.
    PatEdgeBca = 4,
    /// A whole generated pattern was audited. `entity` =
    /// `unique_instance << 16`, `candidate` = pattern index, `aux` = 1
    /// when clean / 0 when dirty, `x` = DP cost.
    PatternValidated = 5,
    /// No clean pattern existed; the best dirty pattern was kept.
    /// `entity` = `unique_instance << 16`, `candidate` = pattern index.
    PatternFallback = 6,
    /// A selection-DP edge between two neighboring instances probed
    /// DRC-dirty. `entity` = `(left_component << 32) | right_component`,
    /// `candidate` = left pattern index, `aux` = right pattern index.
    SelectEdgeDirty = 7,
    /// Per-cluster prune tally from the selection DP. `entity` = first
    /// component id in the cluster, `candidate` = via pairs skipped as
    /// far, `aux` = edges pruned by the cost bound.
    SelectPruned = 8,
    /// A connected pin was found dirty by a repair-round scan.
    /// `entity` = `(component << 16) | pin`, `aux` = repair round.
    RepairDirty = 9,
    /// A dirty pin's access was replaced by a clean alternative.
    /// Fields as [`Self::RepairDirty`] plus `candidate` = chosen
    /// candidate index and `x`/`y` = the new access position.
    RepairReplaced = 10,
    /// A dirty pin had no clean alternative this round. Fields as
    /// [`Self::RepairDirty`].
    RepairStuck = 11,
}

impl LedgerEvent {
    /// The phase this event belongs to.
    #[must_use]
    pub fn phase(self) -> LedgerPhase {
        match self {
            LedgerEvent::ApReject | LedgerEvent::ApAccept => LedgerPhase::Apgen,
            LedgerEvent::PatEdgeDrc
            | LedgerEvent::PatEdgeHistory
            | LedgerEvent::PatEdgeBca
            | LedgerEvent::PatternValidated
            | LedgerEvent::PatternFallback => LedgerPhase::Pattern,
            LedgerEvent::SelectEdgeDirty | LedgerEvent::SelectPruned => LedgerPhase::Select,
            LedgerEvent::RepairDirty | LedgerEvent::RepairReplaced | LedgerEvent::RepairStuck => {
                LedgerPhase::Repair
            }
        }
    }

    /// Stable snake_case name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LedgerEvent::ApReject => "ap_reject",
            LedgerEvent::ApAccept => "ap_accept",
            LedgerEvent::PatEdgeDrc => "pattern_edge_drc",
            LedgerEvent::PatEdgeHistory => "pattern_edge_history",
            LedgerEvent::PatEdgeBca => "pattern_edge_bca",
            LedgerEvent::PatternValidated => "pattern_validated",
            LedgerEvent::PatternFallback => "pattern_fallback",
            LedgerEvent::SelectEdgeDirty => "select_edge_dirty",
            LedgerEvent::SelectPruned => "select_pruned",
            LedgerEvent::RepairDirty => "repair_dirty",
            LedgerEvent::RepairReplaced => "repair_replaced",
            LedgerEvent::RepairStuck => "repair_stuck",
        }
    }

    /// Decodes a record's `event` byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<LedgerEvent> {
        Some(match code {
            0 => LedgerEvent::ApReject,
            1 => LedgerEvent::ApAccept,
            2 => LedgerEvent::PatEdgeDrc,
            3 => LedgerEvent::PatEdgeHistory,
            4 => LedgerEvent::PatEdgeBca,
            5 => LedgerEvent::PatternValidated,
            6 => LedgerEvent::PatternFallback,
            7 => LedgerEvent::SelectEdgeDirty,
            8 => LedgerEvent::SelectPruned,
            9 => LedgerEvent::RepairDirty,
            10 => LedgerEvent::RepairReplaced,
            11 => LedgerEvent::RepairStuck,
            _ => return None,
        })
    }
}

/// One ledger entry: a fixed-size, string-free attribution record.
///
/// The derived `Ord` (field order: phase, event, rule, subcheck, entity,
/// candidate, aux, x, y) is the canonical sort applied by [`take`] —
/// two equal record *multisets* always serialize identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LedgerRecord {
    /// Pipeline phase code ([`LedgerPhase`] as `u8`).
    pub phase: u8,
    /// Event code ([`LedgerEvent`] as `u8`).
    pub event: u8,
    /// Offending DRC rule code, or [`NO_CODE`]. Decoded by the consumer
    /// (the rule taxonomy lives in `pao-drc`, which this crate cannot
    /// depend on).
    pub rule: u8,
    /// Offending DRC sub-check code, or [`NO_CODE`].
    pub subcheck: u8,
    /// What the record is about; encoding is event-specific (see
    /// [`LedgerEvent`]).
    pub entity: u64,
    /// Candidate index; event-specific.
    pub candidate: u32,
    /// Extra event-specific payload (layer, round, neighbor choice …).
    pub aux: u32,
    /// X coordinate (DBU) when the event has a location, else 0.
    pub x: i64,
    /// Y coordinate (DBU) when the event has a location, else 0.
    pub y: i64,
}

impl LedgerRecord {
    /// A record with no reject attribution, no aux payload and no
    /// location; chain the `with_*` builders for the rest.
    #[must_use]
    pub fn new(event: LedgerEvent, entity: u64, candidate: u32) -> LedgerRecord {
        LedgerRecord {
            phase: event.phase() as u8,
            event: event as u8,
            rule: NO_CODE,
            subcheck: NO_CODE,
            entity,
            candidate,
            aux: 0,
            x: 0,
            y: 0,
        }
    }

    /// Attaches the offending DRC rule + sub-check codes.
    #[must_use]
    pub fn with_reject(mut self, rule: u8, subcheck: u8) -> LedgerRecord {
        self.rule = rule;
        self.subcheck = subcheck;
        self
    }

    /// Attaches the event-specific aux payload.
    #[must_use]
    pub fn with_aux(mut self, aux: u32) -> LedgerRecord {
        self.aux = aux;
        self
    }

    /// Attaches a location.
    #[must_use]
    pub fn with_pos(mut self, x: i64, y: i64) -> LedgerRecord {
        self.x = x;
        self.y = y;
        self
    }

    /// The decoded event, if the `event` byte is valid.
    #[must_use]
    pub fn decode_event(&self) -> Option<LedgerEvent> {
        LedgerEvent::from_code(self.event)
    }
}

/// Everything collected since the last [`take`]/[`reset`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerDump {
    /// All records, in canonical sorted order.
    pub records: Vec<LedgerRecord>,
    /// Records discarded because the global sink was full. A dump is
    /// complete — and its determinism guarantee holds — only when this
    /// is zero.
    pub dropped: u64,
}

/// TLS chunk size: records buffered per thread before merging into the
/// global sink.
const CHUNK: usize = 8192;

/// Default bound on the global sink (records, not bytes).
const DEFAULT_CAPACITY: usize = 1 << 20;

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Current global-sink bound in records.
#[must_use]
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Overrides the global-sink bound (records). Takes effect for future
/// merges; mainly for tests and memory-constrained embeddings.
pub fn set_capacity(records: usize) {
    CAPACITY.store(records, Ordering::Relaxed);
}

#[derive(Default)]
struct Sink {
    records: Vec<LedgerRecord>,
    dropped: u64,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

struct ThreadLedger {
    buf: Vec<LedgerRecord>,
}

impl ThreadLedger {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let cap = capacity();
        let mut sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let room = cap.saturating_sub(sink.records.len());
        let take = room.min(self.buf.len());
        sink.records.extend_from_slice(&self.buf[..take]);
        sink.dropped += (self.buf.len() - take) as u64;
        self.buf.clear();
    }
}

impl Drop for ThreadLedger {
    // Backstop: merge whatever is still buffered when the thread dies.
    // Workers flush explicitly via `pao_obs::flush_thread()` before
    // `std::thread::scope` unblocks; this covers everything else.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadLedger> = const { RefCell::new(ThreadLedger { buf: Vec::new() }) };
}

/// Appends one record to the calling thread's buffer. No-op while the
/// ledger switch is off. Callers on hot paths should additionally guard
/// record *construction* on [`crate::ledger_enabled`].
#[inline]
pub fn record(rec: LedgerRecord) {
    if !crate::ledger_enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.buf.push(rec);
        if t.buf.len() >= CHUNK {
            t.flush();
        }
    });
}

/// Merges the calling thread's buffered records into the global sink.
pub fn flush_thread() {
    TLS.with(|t| t.borrow_mut().flush());
}

/// Flushes the calling thread, then drains the global sink into a
/// canonically sorted [`LedgerDump`]. Call after worker threads have
/// been joined (phase boundaries / end of analysis).
#[must_use]
pub fn take() -> LedgerDump {
    flush_thread();
    let (mut records, dropped) = {
        let mut sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (std::mem::take(&mut sink.records), {
            let d = sink.dropped;
            sink.dropped = 0;
            d
        })
    };
    records.sort_unstable();
    LedgerDump { records, dropped }
}

/// Clears the calling thread's buffer and the global sink.
pub fn reset() {
    TLS.with(|t| t.borrow_mut().buf.clear());
    let mut sink = sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sink.records.clear();
    sink.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: LedgerEvent, entity: u64, candidate: u32) -> LedgerRecord {
        LedgerRecord::new(event, entity, candidate)
    }

    #[test]
    fn record_take_roundtrip_and_canonical_order() {
        let _g = crate::metrics::test_lock();
        crate::disable_all();
        reset();
        crate::enable_ledger();
        // Insert out of order; take() must return the canonical sort.
        record(rec(LedgerEvent::RepairDirty, 9, 0).with_aux(1));
        record(
            rec(LedgerEvent::ApReject, 3, 2)
                .with_reject(1, 0)
                .with_pos(100, -200),
        );
        record(rec(LedgerEvent::ApAccept, 3, 4).with_pos(100, 300));
        crate::disable_all();
        let dump = take();
        assert_eq!(dump.dropped, 0);
        assert_eq!(dump.records.len(), 3);
        let mut sorted = dump.records.clone();
        sorted.sort_unstable();
        assert_eq!(dump.records, sorted);
        assert_eq!(dump.records[0].decode_event(), Some(LedgerEvent::ApReject));
        assert_eq!(dump.records[0].rule, 1);
        assert_eq!(dump.records[0].x, 100);
        assert_eq!(
            dump.records[2].decode_event(),
            Some(LedgerEvent::RepairDirty)
        );
        // Drained: a second take is empty.
        assert!(take().records.is_empty());
        reset();
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let _g = crate::metrics::test_lock();
        crate::disable_all();
        reset();
        record(rec(LedgerEvent::ApAccept, 1, 1));
        assert!(take().records.is_empty());
    }

    #[test]
    fn overflow_counts_drops() {
        let _g = crate::metrics::test_lock();
        crate::disable_all();
        reset();
        let saved = capacity();
        set_capacity(4);
        crate::enable_ledger();
        for i in 0..10u32 {
            record(rec(LedgerEvent::SelectEdgeDirty, 0, i));
        }
        crate::disable_all();
        let dump = take();
        set_capacity(saved);
        assert_eq!(dump.records.len(), 4);
        assert_eq!(dump.dropped, 6);
        reset();
    }

    #[test]
    fn threaded_collection_is_order_invariant() {
        let _g = crate::metrics::test_lock();
        crate::disable_all();
        reset();
        crate::enable_ledger();
        let run = || {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    s.spawn(move || {
                        for i in 0..50u32 {
                            record(rec(LedgerEvent::ApReject, t, i).with_reject(2, 1));
                        }
                        crate::flush_thread();
                    });
                }
            });
            take()
        };
        let a = run();
        let b = run();
        crate::disable_all();
        assert_eq!(a.records.len(), 200);
        assert_eq!(a, b, "same multiset must dump identically");
        reset();
    }

    #[test]
    fn event_codes_roundtrip() {
        for code in 0..=11u8 {
            let e = LedgerEvent::from_code(code).unwrap();
            assert_eq!(e as u8, code);
            assert!(!e.name().is_empty());
            assert!(!e.phase().name().is_empty());
        }
        assert_eq!(LedgerEvent::from_code(200), None);
    }
}
