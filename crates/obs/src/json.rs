//! Minimal JSON utilities: string quoting for the trace exporter and a
//! validating parser used to assert that exported traces (and the bench
//! JSON) parse — std-only, no serde.

use std::fmt;

/// Quotes `s` as a JSON string literal (with surrounding quotes),
/// escaping control characters, quotes and backslashes.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON syntax error: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `text` is one well-formed JSON document.
///
/// # Errors
///
/// Returns the first [`JsonError`] encountered.
pub fn validate(text: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, m: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: m.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), JsonError> {
            if !matches!(p.peek(), Some(b'0'..=b'9')) {
                return Err(p.err("expected digit"));
            }
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            Ok(())
        };
        // Integer part: `0` or a non-zero digit followed by more digits
        // (JSON forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => digits(self)?,
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"a\\n\\u00e9\"",
            "true",
            " { \"a\" : [ 1 , { \"b\" : null } , false ] } ",
            "{\"ts\":1.500,\"dur\":2.750}",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01", // leading zero is invalid JSON
            "1 2",
            "nul",
            "{\"a\":1}}",
            "\"bad\\escape\"",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("l1\nl2\t\u{1}"), "\"l1\\nl2\\t\\u0001\"");
        // Round-trip through the validator.
        validate(&quote("tricky \" \\ \n value")).expect("quoted strings are valid JSON");
    }

    #[test]
    fn error_reports_offset() {
        let e = validate("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
