//! Minimal JSON utilities: string quoting for the trace exporter, a
//! validating parser used to assert that exported traces (and the bench
//! JSON) parse, and a [`Value`] tree parser for the `pao serve` JSON-RPC
//! framing — std-only, no serde.

use std::fmt;

/// Quotes `s` as a JSON string literal (with surrounding quotes),
/// escaping control characters, quotes and backslashes.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON syntax error: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `text` is one well-formed JSON document.
///
/// # Errors
///
/// Returns the first [`JsonError`] encountered.
pub fn validate(text: &str) -> Result<(), JsonError> {
    parse(text).map(|_| ())
}

/// A parsed JSON document: the dynamic value tree behind the `pao serve`
/// request framing. Objects keep their key order (duplicate keys keep the
/// first occurrence on [`Value::get`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (`None` for non-objects and absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer (rejects fractional values and
    /// magnitudes beyond the f64-exact integer range).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        let exact = 2f64.powi(53);
        (n.fract() == 0.0 && n.abs() <= exact).then_some(n as i64)
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses one well-formed JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns the first [`JsonError`] encountered.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, m: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: m.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number().map(Value::Num),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    /// Parses four hex digits after `\u` into their code unit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            unit = unit * 16 + d;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    // Fast path: no escapes — slice the raw bytes out.
                    if out.is_empty() && self.pos > start {
                        out = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    }
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    if out.is_empty() && self.pos > start {
                        out = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    }
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pair: a high surrogate must pair
                            // with a following \uDC00-\uDFFF low half.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                unit
                            };
                            out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) if out.is_empty() => self.pos += 1,
                Some(_) => {
                    // Slow path after an escape: copy whole unescaped runs
                    // so multi-byte UTF-8 sequences stay contiguous.
                    let run_start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[run_start..self.pos]));
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), JsonError> {
            if !matches!(p.peek(), Some(b'0'..=b'9')) {
                return Err(p.err("expected digit"));
            }
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            Ok(())
        };
        // Integer part: `0` or a non-zero digit followed by more digits
        // (JSON forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => digits(self)?,
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| self.err("unrepresentable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"a\\n\\u00e9\"",
            "true",
            " { \"a\" : [ 1 , { \"b\" : null } , false ] } ",
            "{\"ts\":1.500,\"dur\":2.750}",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01", // leading zero is invalid JSON
            "1 2",
            "nul",
            "{\"a\":1}}",
            "\"bad\\escape\"",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("l1\nl2\t\u{1}"), "\"l1\\nl2\\t\\u0001\"");
        // Round-trip through the validator.
        validate(&quote("tricky \" \\ \n value")).expect("quoted strings are valid JSON");
    }

    #[test]
    fn error_reports_offset() {
        let e = validate("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_builds_value_tree() {
        let v = parse(r#"{"method":"eco","id":7,"params":{"moves":[{"inst":"u1","dx":-40}]}}"#)
            .expect("parses");
        assert_eq!(v.get("method").and_then(Value::as_str), Some("eco"));
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(7));
        let moves = v
            .get("params")
            .and_then(|p| p.get("moves"))
            .and_then(Value::as_array)
            .expect("array");
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].get("inst").and_then(Value::as_str), Some("u1"));
        assert_eq!(moves[0].get("dx").and_then(Value::as_i64), Some(-40));
    }

    #[test]
    fn parse_unescapes_strings() {
        assert_eq!(
            parse(r#""l1\nl2\t\" \\ é 😀""#).expect("parses"),
            Value::Str("l1\nl2\t\" \\ \u{e9} \u{1f600}".to_owned())
        );
        assert!(parse(r#""\ud800 lone""#).is_err(), "lone surrogate");
        // quote -> parse round-trip.
        let tricky = "a\"b\\c\nd\té";
        assert_eq!(
            parse(&quote(tricky)).expect("round-trips"),
            Value::Str(tricky.to_owned())
        );
    }

    #[test]
    fn parse_numbers_and_scalars() {
        assert_eq!(parse("-1.5e2").expect("num").as_f64(), Some(-150.0));
        assert_eq!(parse("42").expect("num").as_i64(), Some(42));
        assert_eq!(parse("1.5").expect("num").as_i64(), None, "not integral");
        assert_eq!(parse("true").expect("bool").as_bool(), Some(true));
        assert!(parse("null").expect("null").is_null());
        assert_eq!(
            parse("[]").expect("arr").as_array().map(<[Value]>::len),
            Some(0)
        );
    }
}
