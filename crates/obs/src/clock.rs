//! Wall-clock formatting without external date dependencies: enough
//! ISO-8601 to stamp benchmark artifacts comparably across runs.
//!
//! Wall-clock time is for *provenance stamps only* (e.g. the
//! `timestamp` field of bench JSON). Every duration, deadline, span or
//! heartbeat in the codebase is measured with monotonic
//! [`std::time::Instant`] — a system clock step (NTP, suspend/resume)
//! must never shrink a budget or fire the watchdog.

use std::time::{SystemTime, UNIX_EPOCH};

/// Converts days since 1970-01-01 to a `(year, month, day)` civil date
/// (Howard Hinnant's `civil_from_days`, valid far beyond any plausible
/// benchmark timestamp).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m as u32, d as u32)
}

/// Formats a Unix timestamp (seconds) as `YYYY-MM-DDThh:mm:ssZ`.
#[must_use]
pub fn iso8601_utc(unix_secs: i64) -> String {
    let days = unix_secs.div_euclid(86_400);
    let tod = unix_secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60
    )
}

/// The current wall-clock time as `YYYY-MM-DDThh:mm:ssZ` (UTC).
#[must_use]
pub fn now_iso8601() -> String {
    let secs = match SystemTime::now().duration_since(UNIX_EPOCH) {
        Ok(d) => i64::try_from(d.as_secs()).unwrap_or(i64::MAX),
        Err(e) => -i64::try_from(e.duration().as_secs()).unwrap_or(i64::MAX),
    };
    iso8601_utc(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamps_format_correctly() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(1_000_000_000), "2001-09-09T01:46:40Z");
        // Leap-year day: 2020-02-29.
        assert_eq!(iso8601_utc(1_582_934_400), "2020-02-29T00:00:00Z");
        // Pre-epoch values stay well-formed.
        assert_eq!(iso8601_utc(-1), "1969-12-31T23:59:59Z");
    }

    #[test]
    fn now_is_plausibly_recent() {
        let now = now_iso8601();
        assert_eq!(now.len(), 20);
        assert!(now.ends_with('Z'));
        let year: i64 = now[..4].parse().expect("year");
        assert!(year >= 2024, "{now}");
    }
}
