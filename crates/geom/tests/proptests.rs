//! Property-based tests for the geometry primitives.

use pao_geom::{max_rects, Interval, Orient, Point, RTree, Rect, Transform};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 1i64..500, 1i64..500).prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

proptest! {
    #[test]
    fn interval_overlap_len_symmetric(a in -100i64..100, b in -100i64..100,
                                      c in -100i64..100, d in -100i64..100) {
        let i = Interval::new(a, b);
        let j = Interval::new(c, d);
        prop_assert_eq!(i.overlap_len(j), j.overlap_len(i));
        prop_assert_eq!(i.overlaps(j), j.overlaps(i));
        prop_assert_eq!(i.dist(j), j.dist(i));
        // Overlap length never exceeds either interval's length.
        prop_assert!(i.overlap_len(j) <= i.len());
        prop_assert!(i.overlap_len(j) <= j.len());
        // Exactly one of "positive overlap length" and "positive distance".
        prop_assert!(!(i.overlap_len(j) > 0 && i.dist(j) > 0));
    }

    #[test]
    fn interval_hull_contains_both(a in -100i64..100, b in -100i64..100,
                                   c in -100i64..100, d in -100i64..100) {
        let i = Interval::new(a, b);
        let j = Interval::new(c, d);
        let h = i.hull(j);
        prop_assert!(h.contains_interval(i));
        prop_assert!(h.contains_interval(j));
    }

    #[test]
    fn rect_intersect_is_contained(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
            prop_assert!(a.touches(b));
        } else {
            prop_assert!(!a.touches(b));
        }
    }

    #[test]
    fn rect_hull_contains_both(a in arb_rect(), b in arb_rect()) {
        let h = a.hull(b);
        prop_assert!(h.contains_rect(a));
        prop_assert!(h.contains_rect(b));
        // Hull area ≥ both areas.
        prop_assert!(h.area() >= a.area());
        prop_assert!(h.area() >= b.area());
    }

    #[test]
    fn rect_dist_zero_iff_touching(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.dist(b) == 0, a.touches(b));
        prop_assert_eq!(a.dist(b), b.dist(a));
    }

    #[test]
    fn rect_overlap_implies_touch(a in arb_rect(), b in arb_rect()) {
        if a.overlaps(b) {
            prop_assert!(a.touches(b));
            prop_assert!(a.intersect(b).map(|i| i.area() > 0).unwrap_or(false));
        }
    }

    #[test]
    fn transform_roundtrip(p in arb_point(),
                           loc in arb_point(),
                           o in prop::sample::select(Orient::ALL.to_vec()),
                           w in 1i64..1000, h in 1i64..1000) {
        let t = Transform::new(loc, o, w, h);
        prop_assert_eq!(t.invert(t.apply(p)), p);
    }

    #[test]
    fn transform_preserves_manhattan_distance(a in arb_point(), b in arb_point(),
                                              loc in arb_point(),
                                              o in prop::sample::select(Orient::ALL.to_vec())) {
        let t = Transform::new(loc, o, 500, 300);
        // Rigid Manhattan motions (90° rotations + mirrors) preserve L1 distance.
        prop_assert_eq!(t.apply(a).manhattan(t.apply(b)), a.manhattan(b));
    }

    #[test]
    fn transform_rect_preserves_area(r in arb_rect(), loc in arb_point(),
                                     o in prop::sample::select(Orient::ALL.to_vec())) {
        let t = Transform::new(loc, o, 500, 300);
        prop_assert_eq!(t.apply_rect(r).area(), r.area());
    }

    #[test]
    fn max_rects_cover_union_and_stay_inside(shapes in prop::collection::vec(arb_rect(), 1..6)) {
        let maxes = max_rects(&shapes);
        prop_assert!(!maxes.is_empty());
        // Every maximal rect's corners/center lie inside the union bbox, and
        // its center is covered by some input shape.
        for m in &maxes {
            prop_assert!(shapes.iter().any(|s| s.contains(m.center())),
                         "max rect {} center not covered", m);
            // Maximality: no other maximal rect contains it.
            for other in &maxes {
                if other != m {
                    prop_assert!(!other.contains_rect(*m),
                                 "max rect {} contained in {}", m, other);
                }
            }
        }
        // Every input shape is contained in at least one maximal rect if the
        // shape is itself "whole" — weaker check: each input corner cell center
        // is covered by some max rect.
        for s in &shapes {
            prop_assert!(maxes.iter().any(|m| m.contains(s.center())));
        }
    }

    #[test]
    fn rtree_query_matches_linear_scan(items in prop::collection::vec(arb_rect(), 0..80),
                                       window in arb_rect()) {
        let tree: RTree<usize> = items.iter().copied().zip(0usize..).collect();
        let mut got: Vec<usize> = tree.query(window).map(|(_, &i)| i).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, r)| r.touches(window))
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rtree_insert_then_query(items in prop::collection::vec(arb_rect(), 1..40)) {
        let mut tree: RTree<usize> = RTree::new();
        for (i, r) in items.iter().enumerate() {
            tree.insert(*r, i);
        }
        for (i, r) in items.iter().enumerate() {
            prop_assert!(tree.query(*r).any(|(_, &j)| j == i));
        }
        tree.rebuild();
        for (i, r) in items.iter().enumerate() {
            prop_assert!(tree.query(*r).any(|(_, &j)| j == i));
        }
    }
}

/// Shoelace area of a vertex loop (positive CCW).
fn shoelace(loop_: &[Point]) -> i128 {
    let mut acc: i128 = 0;
    for i in 0..loop_.len() {
        let a = loop_[i];
        let b = loop_[(i + 1) % loop_.len()];
        acc += i128::from(a.x) * i128::from(b.y) - i128::from(b.x) * i128::from(a.y);
    }
    acc / 2
}

proptest! {
    /// The signed areas of the union's boundary loops (outer CCW positive,
    /// holes CW negative) sum to the union area — ties the boundary tracer
    /// and the area scanline together.
    #[test]
    fn boundary_loops_shoelace_matches_union_area(
        shapes in prop::collection::vec(arb_rect(), 1..7),
    ) {
        use pao_geom::boundary::{union_area, union_boundaries};
        let loops = union_boundaries(&shapes);
        let total: i128 = loops.iter().map(|l| shoelace(l)).sum();
        prop_assert_eq!(total, union_area(&shapes));
    }

    /// Every boundary edge is axis-parallel and no loop self-intersects at
    /// a vertex (all loop vertices distinct).
    #[test]
    fn boundary_loops_are_rectilinear(shapes in prop::collection::vec(arb_rect(), 1..7)) {
        use pao_geom::boundary::union_boundaries;
        for l in union_boundaries(&shapes) {
            for i in 0..l.len() {
                let a = l[i];
                let b = l[(i + 1) % l.len()];
                prop_assert!((a.x == b.x) ^ (a.y == b.y), "edge {a}->{b} not axis-parallel");
            }
            let mut vs = l.clone();
            vs.sort_unstable();
            vs.dedup();
            prop_assert_eq!(vs.len(), l.len(), "duplicate vertex in loop");
        }
    }
}
