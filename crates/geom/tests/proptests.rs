//! Property-based tests for the geometry primitives (offline harness).

use pao_geom::{max_rects, Interval, Orient, Point, RTree, Rect, Transform};
use pao_ptest::{check, Rng};

fn arb_point(rng: &mut Rng) -> Point {
    Point::new(
        rng.gen_range(-10_000i64..10_000),
        rng.gen_range(-10_000i64..10_000),
    )
}

fn arb_rect(rng: &mut Rng) -> Rect {
    let p = arb_point(rng);
    let w = rng.gen_range(1i64..500);
    let h = rng.gen_range(1i64..500);
    Rect::new(p.x, p.y, p.x + w, p.y + h)
}

fn arb_rects(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Rect> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| arb_rect(rng)).collect()
}

fn arb_orient(rng: &mut Rng) -> Orient {
    *rng.pick(&Orient::ALL)
}

#[test]
fn interval_overlap_len_symmetric() {
    check("interval_overlap_len_symmetric", 256, |rng| {
        let i = Interval::new(rng.gen_range(-100i64..100), rng.gen_range(-100i64..100));
        let j = Interval::new(rng.gen_range(-100i64..100), rng.gen_range(-100i64..100));
        assert_eq!(i.overlap_len(j), j.overlap_len(i));
        assert_eq!(i.overlaps(j), j.overlaps(i));
        assert_eq!(i.dist(j), j.dist(i));
        // Overlap length never exceeds either interval's length.
        assert!(i.overlap_len(j) <= i.len());
        assert!(i.overlap_len(j) <= j.len());
        // Exactly one of "positive overlap length" and "positive distance".
        assert!(!(i.overlap_len(j) > 0 && i.dist(j) > 0));
    });
}

#[test]
fn interval_hull_contains_both() {
    check("interval_hull_contains_both", 256, |rng| {
        let i = Interval::new(rng.gen_range(-100i64..100), rng.gen_range(-100i64..100));
        let j = Interval::new(rng.gen_range(-100i64..100), rng.gen_range(-100i64..100));
        let h = i.hull(j);
        assert!(h.contains_interval(i));
        assert!(h.contains_interval(j));
    });
}

#[test]
fn rect_intersect_is_contained() {
    check("rect_intersect_is_contained", 256, |rng| {
        let a = arb_rect(rng);
        let b = arb_rect(rng);
        if let Some(i) = a.intersect(b) {
            assert!(a.contains_rect(i));
            assert!(b.contains_rect(i));
            assert!(a.touches(b));
        } else {
            assert!(!a.touches(b));
        }
    });
}

#[test]
fn rect_hull_contains_both() {
    check("rect_hull_contains_both", 256, |rng| {
        let a = arb_rect(rng);
        let b = arb_rect(rng);
        let h = a.hull(b);
        assert!(h.contains_rect(a));
        assert!(h.contains_rect(b));
        // Hull area ≥ both areas.
        assert!(h.area() >= a.area());
        assert!(h.area() >= b.area());
    });
}

#[test]
fn rect_dist_zero_iff_touching() {
    check("rect_dist_zero_iff_touching", 256, |rng| {
        let a = arb_rect(rng);
        let b = arb_rect(rng);
        assert_eq!(a.dist(b) == 0, a.touches(b));
        assert_eq!(a.dist(b), b.dist(a));
    });
}

#[test]
fn rect_overlap_implies_touch() {
    check("rect_overlap_implies_touch", 256, |rng| {
        let a = arb_rect(rng);
        let b = arb_rect(rng);
        if a.overlaps(b) {
            assert!(a.touches(b));
            assert!(a.intersect(b).map(|i| i.area() > 0).unwrap_or(false));
        }
    });
}

#[test]
fn transform_roundtrip() {
    check("transform_roundtrip", 256, |rng| {
        let p = arb_point(rng);
        let loc = arb_point(rng);
        let o = arb_orient(rng);
        let w = rng.gen_range(1i64..1000);
        let h = rng.gen_range(1i64..1000);
        let t = Transform::new(loc, o, w, h);
        assert_eq!(t.invert(t.apply(p)), p);
    });
}

#[test]
fn transform_preserves_manhattan_distance() {
    check("transform_preserves_manhattan_distance", 256, |rng| {
        let a = arb_point(rng);
        let b = arb_point(rng);
        let loc = arb_point(rng);
        let t = Transform::new(loc, arb_orient(rng), 500, 300);
        // Rigid Manhattan motions (90° rotations + mirrors) preserve L1 distance.
        assert_eq!(t.apply(a).manhattan(t.apply(b)), a.manhattan(b));
    });
}

#[test]
fn transform_rect_preserves_area() {
    check("transform_rect_preserves_area", 256, |rng| {
        let r = arb_rect(rng);
        let loc = arb_point(rng);
        let t = Transform::new(loc, arb_orient(rng), 500, 300);
        assert_eq!(t.apply_rect(r).area(), r.area());
    });
}

#[test]
fn max_rects_cover_union_and_stay_inside() {
    check("max_rects_cover_union_and_stay_inside", 128, |rng| {
        let shapes = arb_rects(rng, 1, 6);
        let maxes = max_rects(&shapes);
        assert!(!maxes.is_empty());
        // Every maximal rect's center is covered by some input shape.
        for m in &maxes {
            assert!(
                shapes.iter().any(|s| s.contains(m.center())),
                "max rect {m} center not covered"
            );
            // Maximality: no other maximal rect contains it.
            for other in &maxes {
                if other != m {
                    assert!(
                        !other.contains_rect(*m),
                        "max rect {m} contained in {other}"
                    );
                }
            }
        }
        // Weaker coverage check: each input shape's center is covered by
        // some max rect.
        for s in &shapes {
            assert!(maxes.iter().any(|m| m.contains(s.center())));
        }
    });
}

#[test]
fn rtree_query_matches_linear_scan() {
    check("rtree_query_matches_linear_scan", 128, |rng| {
        let items = arb_rects(rng, 0, 80);
        let window = arb_rect(rng);
        let tree: RTree<usize> = items.iter().copied().zip(0usize..).collect();
        let mut got: Vec<usize> = tree.query(window).map(|(_, &i)| i).collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, r)| r.touches(window))
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    });
}

#[test]
fn rtree_insert_then_query() {
    check("rtree_insert_then_query", 128, |rng| {
        let items = arb_rects(rng, 1, 40);
        let mut tree: RTree<usize> = RTree::new();
        for (i, r) in items.iter().enumerate() {
            tree.insert(*r, i);
        }
        for (i, r) in items.iter().enumerate() {
            assert!(tree.query(*r).any(|(_, &j)| j == i));
        }
        tree.rebuild();
        for (i, r) in items.iter().enumerate() {
            assert!(tree.query(*r).any(|(_, &j)| j == i));
        }
    });
}

/// Shoelace area of a vertex loop (positive CCW).
fn shoelace(loop_: &[Point]) -> i128 {
    let mut acc: i128 = 0;
    for i in 0..loop_.len() {
        let a = loop_[i];
        let b = loop_[(i + 1) % loop_.len()];
        acc += i128::from(a.x) * i128::from(b.y) - i128::from(b.x) * i128::from(a.y);
    }
    acc / 2
}

/// The signed areas of the union's boundary loops (outer CCW positive,
/// holes CW negative) sum to the union area — ties the boundary tracer
/// and the area scanline together.
#[test]
fn boundary_loops_shoelace_matches_union_area() {
    check("boundary_loops_shoelace_matches_union_area", 128, |rng| {
        use pao_geom::boundary::{union_area, union_boundaries};
        let shapes = arb_rects(rng, 1, 7);
        let loops = union_boundaries(&shapes);
        let total: i128 = loops.iter().map(|l| shoelace(l)).sum();
        assert_eq!(total, union_area(&shapes));
    });
}

/// Every boundary edge is axis-parallel and no loop self-intersects at
/// a vertex (all loop vertices distinct).
#[test]
fn boundary_loops_are_rectilinear() {
    check("boundary_loops_are_rectilinear", 128, |rng| {
        use pao_geom::boundary::union_boundaries;
        let shapes = arb_rects(rng, 1, 7);
        for l in union_boundaries(&shapes) {
            for i in 0..l.len() {
                let a = l[i];
                let b = l[(i + 1) % l.len()];
                assert!(
                    (a.x == b.x) ^ (a.y == b.y),
                    "edge {a}->{b} not axis-parallel"
                );
            }
            let mut vs = l.clone();
            vs.sort_unstable();
            vs.dedup();
            assert_eq!(vs.len(), l.len(), "duplicate vertex in loop");
        }
    });
}
