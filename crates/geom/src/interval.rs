//! Closed 1-D integer intervals.

use crate::Dbu;
use std::fmt;

/// A closed interval `[lo, hi]` on the integer line.
///
/// Degenerate intervals (`lo == hi`) are allowed; they model the span of a
/// zero-width object such as a track coordinate. Construction normalizes the
/// endpoint order.
///
/// ```
/// use pao_geom::Interval;
/// let a = Interval::new(10, 0);
/// assert_eq!((a.lo(), a.hi()), (0, 10));
/// assert!(a.contains(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: Dbu,
    hi: Dbu,
}

impl Interval {
    /// Creates the interval spanning `a` and `b` (order-insensitive).
    #[must_use]
    pub fn new(a: Dbu, b: Dbu) -> Interval {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(self) -> Dbu {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(self) -> Dbu {
        self.hi
    }

    /// Length `hi - lo` (zero for degenerate intervals).
    #[must_use]
    pub fn len(self) -> Dbu {
        self.hi - self.lo
    }

    /// `true` when the interval is degenerate (`lo == hi`).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// Midpoint, rounded toward `lo` (integer division).
    #[must_use]
    pub fn center(self) -> Dbu {
        self.lo + (self.hi - self.lo) / 2
    }

    /// `true` when `v` lies in `[lo, hi]`.
    #[must_use]
    pub fn contains(self, v: Dbu) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when `other` lies entirely within `self`.
    #[must_use]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` when the two closed intervals share at least one point.
    ///
    /// ```
    /// use pao_geom::Interval;
    /// assert!(Interval::new(0, 10).overlaps(Interval::new(10, 20)));
    /// assert!(!Interval::new(0, 10).overlaps(Interval::new(11, 20)));
    /// ```
    #[must_use]
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Length of the overlap between the two intervals, or 0 when they are
    /// disjoint or touch at a single point. This is the *parallel run
    /// length* used by spacing rules.
    #[must_use]
    pub fn overlap_len(self, other: Interval) -> Dbu {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0)
    }

    /// Intersection of the two intervals, if non-empty (shared single points
    /// yield a degenerate interval).
    #[must_use]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// Smallest interval containing both inputs.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Distance between the intervals (0 when they overlap or touch).
    #[must_use]
    pub fn dist(self, other: Interval) -> Dbu {
        (self.lo.max(other.lo) - self.hi.min(other.hi)).max(0)
    }

    /// The interval expanded by `d` on both sides (shrunk for negative `d`).
    ///
    /// # Panics
    ///
    /// Panics if shrinking by `-d` would invert the interval.
    #[must_use]
    pub fn expanded(self, d: Dbu) -> Interval {
        assert!(
            self.lo - d <= self.hi + d,
            "shrinking interval [{}, {}] by {} inverts it",
            self.lo,
            self.hi,
            -d
        );
        Interval {
            lo: self.lo - d,
            hi: self.hi + d,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_order() {
        let i = Interval::new(5, -5);
        assert_eq!(i.lo(), -5);
        assert_eq!(i.hi(), 5);
        assert_eq!(i.len(), 10);
        assert_eq!(i.center(), 0);
    }

    #[test]
    fn containment() {
        let i = Interval::new(0, 10);
        assert!(i.contains(0) && i.contains(10) && i.contains(5));
        assert!(!i.contains(-1) && !i.contains(11));
        assert!(i.contains_interval(Interval::new(2, 8)));
        assert!(i.contains_interval(i));
        assert!(!i.contains_interval(Interval::new(2, 11)));
    }

    #[test]
    fn overlap_and_prl() {
        let a = Interval::new(0, 10);
        assert_eq!(a.overlap_len(Interval::new(5, 20)), 5);
        assert_eq!(a.overlap_len(Interval::new(10, 20)), 0);
        assert_eq!(a.overlap_len(Interval::new(20, 30)), 0);
        assert_eq!(
            a.intersect(Interval::new(5, 20)),
            Some(Interval::new(5, 10))
        );
        assert_eq!(a.intersect(Interval::new(11, 20)), None);
    }

    #[test]
    fn hull_dist_expand() {
        let a = Interval::new(0, 10);
        let b = Interval::new(20, 30);
        assert_eq!(a.hull(b), Interval::new(0, 30));
        assert_eq!(a.dist(b), 10);
        assert_eq!(a.dist(Interval::new(5, 7)), 0);
        assert_eq!(a.expanded(5), Interval::new(-5, 15));
        assert_eq!(a.expanded(-5), Interval::new(5, 5));
    }

    #[test]
    #[should_panic(expected = "inverts")]
    fn over_shrink_panics() {
        let _ = Interval::new(0, 10).expanded(-6);
    }

    #[test]
    fn center_rounds_toward_lo() {
        assert_eq!(Interval::new(0, 5).center(), 2);
        assert_eq!(Interval::new(-5, 0).center(), -3);
    }
}
