//! Simple rectilinear polygons.

use crate::{Dbu, Point, Rect};
use std::fmt;

/// A simple (non-self-intersecting) rectilinear polygon given as a closed
/// vertex loop.
///
/// The loop is stored without repeating the first vertex; consecutive edges
/// must alternate between horizontal and vertical. LEF `POLYGON` pin ports
/// use exactly this representation.
///
/// ```
/// use pao_geom::{Point, Polygon, Rect};
///
/// // An L-shape: a 20×10 bar with a 10×10 notch removed from the top-right.
/// let l = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(20, 0),
///     Point::new(20, 5),
///     Point::new(10, 5),
///     Point::new(10, 10),
///     Point::new(0, 10),
/// ]).unwrap();
/// assert_eq!(l.area(), 150);
/// assert_eq!(l.bbox(), Rect::new(0, 0, 20, 10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

/// Error constructing a [`Polygon`] from an invalid vertex loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than 4 vertices were supplied.
    TooFewVertices(usize),
    /// Two consecutive vertices are neither horizontally nor vertically
    /// aligned (or are coincident), at the given loop index.
    NotRectilinear(usize),
    /// The polygon has zero area.
    ZeroArea,
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => {
                write!(f, "rectilinear polygon needs at least 4 vertices, got {n}")
            }
            PolygonError::NotRectilinear(i) => {
                write!(f, "edge starting at vertex {i} is not axis-parallel")
            }
            PolygonError::ZeroArea => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Creates a polygon from a closed vertex loop (first vertex not
    /// repeated).
    ///
    /// Collinear runs are merged. The loop may be given in either winding
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError`] if the loop has fewer than four distinct
    /// vertices, a non-axis-parallel edge, or zero area.
    pub fn new(vertices: Vec<Point>) -> Result<Polygon, PolygonError> {
        // Merge collinear / duplicate vertices first.
        let mut vs: Vec<Point> = Vec::with_capacity(vertices.len());
        for &v in &vertices {
            if vs.last() == Some(&v) {
                continue;
            }
            if vs.len() >= 2 {
                let a = vs[vs.len() - 2];
                let b = vs[vs.len() - 1];
                if (a.x == b.x && b.x == v.x) || (a.y == b.y && b.y == v.y) {
                    vs.pop();
                }
            }
            vs.push(v);
        }
        // Close-up: also merge across the loop seam.
        while vs.len() >= 3 {
            let n = vs.len();
            let (a, b, c) = (vs[n - 2], vs[n - 1], vs[0]);
            if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
                vs.pop();
                continue;
            }
            let (a, b, c) = (vs[n - 1], vs[0], vs[1]);
            if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
                vs.remove(0);
                continue;
            }
            break;
        }
        if vs.len() < 4 {
            return Err(PolygonError::TooFewVertices(vs.len()));
        }
        for i in 0..vs.len() {
            let a = vs[i];
            let b = vs[(i + 1) % vs.len()];
            if !((a.x == b.x) ^ (a.y == b.y)) {
                return Err(PolygonError::NotRectilinear(i));
            }
        }
        let poly = Polygon { vertices: vs };
        if poly.signed_area2() == 0 {
            return Err(PolygonError::ZeroArea);
        }
        Ok(poly)
    }

    /// The four-vertex polygon equivalent to `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is degenerate (zero width or height).
    #[must_use]
    pub fn from_rect(r: Rect) -> Polygon {
        match Polygon::new(vec![
            r.ll(),
            Point::new(r.xhi(), r.ylo()),
            r.ur(),
            Point::new(r.xlo(), r.yhi()),
        ]) {
            Ok(p) => p,
            Err(e) => panic!("degenerate rectangle {r}: {e}"),
        }
    }

    /// The vertex loop (first vertex not repeated).
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Twice the signed (shoelace) area; positive for counter-clockwise
    /// winding.
    fn signed_area2(&self) -> i128 {
        let vs = &self.vertices;
        let mut acc: i128 = 0;
        for i in 0..vs.len() {
            let a = vs[i];
            let b = vs[(i + 1) % vs.len()];
            acc += i128::from(a.x) * i128::from(b.y) - i128::from(b.x) * i128::from(a.y);
        }
        acc
    }

    /// Enclosed area.
    #[must_use]
    pub fn area(&self) -> i128 {
        self.signed_area2().abs() / 2
    }

    /// Axis-aligned bounding box.
    #[must_use]
    pub fn bbox(&self) -> Rect {
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for &v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Rect::from_points(lo, hi)
    }

    /// `true` when `p` lies inside or on the boundary of the polygon.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        // Boundary check, then even-odd ray cast to the east with half-open
        // edge treatment to be robust at vertices.
        let vs = &self.vertices;
        let n = vs.len();
        for i in 0..n {
            let a = vs[i];
            let b = vs[(i + 1) % n];
            if a.x == b.x {
                if p.x == a.x && crate::Interval::new(a.y, b.y).contains(p.y) {
                    return true;
                }
            } else if p.y == a.y && crate::Interval::new(a.x, b.x).contains(p.x) {
                return true;
            }
        }
        let mut inside = false;
        for i in 0..n {
            let a = vs[i];
            let b = vs[(i + 1) % n];
            if a.x != b.x {
                continue;
            }
            // Vertical edge at x = a.x spanning [min, max) half-open in y.
            let (ylo, yhi) = (a.y.min(b.y), a.y.max(b.y));
            if p.y >= ylo && p.y < yhi && a.x > p.x {
                inside = !inside;
            }
        }
        inside
    }

    /// Decomposes the polygon into non-overlapping rectangles covering the
    /// same region, using horizontal slab decomposition.
    ///
    /// ```
    /// use pao_geom::{Point, Polygon};
    /// let l = Polygon::new(vec![
    ///     Point::new(0, 0), Point::new(20, 0), Point::new(20, 5),
    ///     Point::new(10, 5), Point::new(10, 10), Point::new(0, 10),
    /// ]).unwrap();
    /// let rects = l.to_rects();
    /// let total: i128 = rects.iter().map(|r| r.area()).sum();
    /// assert_eq!(total, l.area());
    /// ```
    #[must_use]
    pub fn to_rects(&self) -> Vec<Rect> {
        let mut ys: Vec<Dbu> = self.vertices.iter().map(|v| v.y).collect();
        ys.sort_unstable();
        ys.dedup();
        let mut out = Vec::new();
        for slab in ys.windows(2) {
            let (ylo, yhi) = (slab[0], slab[1]);
            let mid2 = ylo + yhi; // 2 × slab mid-y, to avoid fractional math
                                  // Collect crossing x's of vertical edges at the slab's interior.
            let mut xs: Vec<Dbu> = Vec::new();
            let vs = &self.vertices;
            let n = vs.len();
            for i in 0..n {
                let a = vs[i];
                let b = vs[(i + 1) % n];
                if a.x == b.x {
                    let (elo, ehi) = (a.y.min(b.y), a.y.max(b.y));
                    if 2 * elo < mid2 && mid2 < 2 * ehi {
                        xs.push(a.x);
                    }
                }
            }
            xs.sort_unstable();
            debug_assert_eq!(xs.len() % 2, 0, "rectilinear parity");
            for pair in xs.chunks_exact(2) {
                out.push(Rect::new(pair[0], ylo, pair[1], yhi));
            }
        }
        out
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Polygon {
        Polygon::from_rect(r)
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POLYGON")?;
        for v in &self.vertices {
            write!(f, " {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 5),
            Point::new(10, 5),
            Point::new(10, 10),
            Point::new(0, 10),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_loops() {
        assert!(matches!(
            Polygon::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(0, 1)]),
            Err(PolygonError::NotRectilinear(_) | PolygonError::TooFewVertices(_))
        ));
        // Diagonal edge.
        assert!(matches!(
            Polygon::new(vec![
                Point::new(0, 0),
                Point::new(5, 5),
                Point::new(5, 0),
                Point::new(0, 0)
            ]),
            Err(PolygonError::NotRectilinear(_) | PolygonError::TooFewVertices(_))
        ));
    }

    #[test]
    fn merges_collinear_vertices() {
        let p = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(10, 0),
            Point::new(10, 10),
            Point::new(0, 10),
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 4);
        assert_eq!(p.area(), 100);
    }

    #[test]
    fn area_and_bbox() {
        let l = l_shape();
        assert_eq!(l.area(), 150);
        assert_eq!(l.bbox(), Rect::new(0, 0, 20, 10));
        // Winding order does not matter.
        let mut rev = l.vertices().to_vec();
        rev.reverse();
        assert_eq!(Polygon::new(rev).unwrap().area(), 150);
    }

    #[test]
    fn containment() {
        let l = l_shape();
        assert!(l.contains(Point::new(5, 5))); // in the tall part
        assert!(l.contains(Point::new(15, 2))); // in the low bar
        assert!(!l.contains(Point::new(15, 7))); // in the notch
        assert!(l.contains(Point::new(0, 0))); // corner
        assert!(l.contains(Point::new(10, 7))); // boundary of notch
        assert!(!l.contains(Point::new(21, 2)));
    }

    #[test]
    fn slab_decomposition_covers_exactly() {
        let l = l_shape();
        let rects = l.to_rects();
        assert_eq!(rects.len(), 2);
        let total: i128 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(total, l.area());
        for w in rects.windows(2) {
            assert!(!w[0].overlaps(w[1]));
        }
    }

    #[test]
    fn rect_roundtrip() {
        let r = Rect::new(3, 4, 30, 40);
        let p: Polygon = r.into();
        assert_eq!(p.bbox(), r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.to_rects(), vec![r]);
    }

    #[test]
    fn u_shape_decomposes_into_three() {
        // U-shape: 30 wide, arms 10 wide, 20 tall, base 5 tall.
        let u = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 20),
            Point::new(20, 20),
            Point::new(20, 5),
            Point::new(10, 5),
            Point::new(10, 20),
            Point::new(0, 20),
        ])
        .unwrap();
        let rects = u.to_rects();
        let total: i128 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(total, u.area());
        assert_eq!(u.area(), 30 * 5 + 2 * 10 * 15);
        assert!(u.contains(Point::new(5, 15)));
        assert!(!u.contains(Point::new(15, 15)));
    }
}
