//! 2-D integer points.

use crate::{Dbu, Dir};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point in the 2-D integer plane (DBU coordinates).
///
/// `Point` is `Copy`, totally ordered (x-major, then y — the order used when
/// sweeping shapes left-to-right) and hashable so it can key maps of access
/// points.
///
/// ```
/// use pao_geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, -1);
/// assert_eq!(p, Point::new(4, 3));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// x coordinate in DBU.
    pub x: Dbu,
    /// y coordinate in DBU.
    pub y: Dbu,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: Dbu, y: Dbu) -> Point {
        Point { x, y }
    }

    /// The coordinate along `dir`: x for [`Dir::Horizontal`], y for
    /// [`Dir::Vertical`].
    ///
    /// ```
    /// use pao_geom::{Dir, Point};
    /// let p = Point::new(10, 20);
    /// assert_eq!(p.coord(Dir::Horizontal), 10);
    /// assert_eq!(p.coord(Dir::Vertical), 20);
    /// ```
    #[must_use]
    pub fn coord(self, dir: Dir) -> Dbu {
        match dir {
            Dir::Horizontal => self.x,
            Dir::Vertical => self.y,
        }
    }

    /// Returns a copy with the coordinate along `dir` replaced by `v`.
    #[must_use]
    pub fn with_coord(self, dir: Dir, v: Dbu) -> Point {
        match dir {
            Dir::Horizontal => Point::new(v, self.y),
            Dir::Vertical => Point::new(self.x, v),
        }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use pao_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan(Point::new(3, -4)), 7);
    /// ```
    #[must_use]
    pub fn manhattan(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl From<(Dbu, Dbu)> for Point {
    fn from((x, y): (Dbu, Dbu)) -> Point {
        Point::new(x, y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1, 2);
        let b = Point::new(10, 20);
        assert_eq!(a + b, Point::new(11, 22));
        assert_eq!(b - a, Point::new(9, 18));
        assert_eq!(-a, Point::new(-1, -2));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_is_x_major() {
        assert!(Point::new(1, 100) < Point::new(2, 0));
        assert!(Point::new(1, 1) < Point::new(1, 2));
    }

    #[test]
    fn coord_access_by_dir() {
        let p = Point::new(7, 9);
        assert_eq!(p.coord(Dir::Horizontal), 7);
        assert_eq!(p.coord(Dir::Vertical), 9);
        assert_eq!(p.with_coord(Dir::Horizontal, 0), Point::new(0, 9));
        assert_eq!(p.with_coord(Dir::Vertical, 0), Point::new(7, 0));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(-1, -1).manhattan(Point::new(2, 3)), 7);
        assert_eq!(Point::ORIGIN.manhattan(Point::ORIGIN), 0);
    }

    #[test]
    fn min_max() {
        let a = Point::new(1, 9);
        let b = Point::new(5, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(5, 9));
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (3, 4).into();
        assert_eq!(p.to_string(), "(3, 4)");
    }
}
