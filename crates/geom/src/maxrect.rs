//! Maximal-rectangle decomposition of a union of rectangles.
//!
//! The paper's *shape-center* coordinate type is defined on the **maximal
//! rectangles** of a pin's geometry: "all overlapping rectangles that are
//! maximal in area" (Section II-C). For a plain rectangular pin this is the
//! pin itself; for an L/T/U-shaped pin the maximal rectangles overlap each
//! other.

use crate::scratch::GridScratch;
use crate::Rect;

/// Computes all maximal axis-aligned rectangles contained in the union of
/// `shapes`.
///
/// A rectangle is *maximal* when it lies inside the union and cannot be
/// grown in any of the four directions while staying inside. The result is
/// deduplicated and sorted. Returns an empty vector for empty input.
/// Degenerate input rectangles are ignored.
///
/// The implementation compresses coordinates (`n` distinct x's, `m` distinct
/// y's) and enumerates candidate spans with a prefix-sum fullness oracle —
/// O(n²m²) candidates, each tested in O(1). Pin geometry has tiny `n`, `m`,
/// so this exhaustive approach is both robust and fast.
///
/// ```
/// use pao_geom::{max_rects, Rect};
///
/// // L-shape as two overlapping rects.
/// let shapes = [Rect::new(0, 0, 20, 5), Rect::new(0, 0, 10, 10)];
/// let mut maxes = max_rects(&shapes);
/// maxes.sort();
/// assert_eq!(maxes, vec![Rect::new(0, 0, 10, 10), Rect::new(0, 0, 20, 5)]);
/// ```
#[must_use]
pub fn max_rects(shapes: &[Rect]) -> Vec<Rect> {
    let mut out = Vec::new();
    max_rects_into(shapes, &mut GridScratch::new(), &mut out);
    out
}

/// Writes all maximal rectangles of the union of `shapes` into `out`
/// (cleared first), reusing the buffers of `ws` — allocation-free once
/// both have warmed up. Semantics are identical to [`max_rects`].
pub fn max_rects_into(shapes: &[Rect], ws: &mut GridScratch, out: &mut Vec<Rect>) {
    out.clear();
    let Some((nx, ny)) = ws.compress_and_fill(shapes) else {
        return;
    };

    // 2-D prefix sums of covered cells for O(1) fullness queries,
    // row-major `pre[i * (ny + 1) + j]`.
    let stride = ny + 1;
    ws.pre.clear();
    ws.pre.resize((nx + 1) * stride, 0);
    for i in 0..nx {
        for j in 0..ny {
            ws.pre[(i + 1) * stride + j + 1] =
                ws.pre[i * stride + j + 1] + ws.pre[(i + 1) * stride + j] - ws.pre[i * stride + j]
                    + u32::from(ws.covered[i * ny + j]);
        }
    }
    let pre = &ws.pre;
    let cells = |i0: usize, i1: usize, j0: usize, j1: usize| -> u32 {
        // Ordered so every intermediate value stays non-negative.
        (pre[i1 * stride + j1] - pre[i0 * stride + j1]) + pre[i0 * stride + j0]
            - pre[i1 * stride + j0]
    };
    let full = |i0: usize, i1: usize, j0: usize, j1: usize| -> bool {
        i0 < i1 && j0 < j1 && cells(i0, i1, j0, j1) == ((i1 - i0) as u32) * ((j1 - j0) as u32)
    };

    for i0 in 0..nx {
        for i1 in (i0 + 1)..=nx {
            for j0 in 0..ny {
                for j1 in (j0 + 1)..=ny {
                    if !full(i0, i1, j0, j1) {
                        continue;
                    }
                    let grow_left = i0 > 0 && full(i0 - 1, i1, j0, j1);
                    let grow_right = i1 < nx && full(i0, i1 + 1, j0, j1);
                    let grow_down = j0 > 0 && full(i0, i1, j0 - 1, j1);
                    let grow_up = j1 < ny && full(i0, i1, j0, j1 + 1);
                    if !(grow_left || grow_right || grow_down || grow_up) {
                        out.push(Rect::new(ws.xs[i0], ws.ys[j0], ws.xs[i1], ws.ys[j1]));
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn single_rect_is_its_own_max() {
        let r = Rect::new(0, 0, 100, 50);
        assert_eq!(max_rects(&[r]), vec![r]);
    }

    #[test]
    fn empty_and_degenerate_input() {
        assert!(max_rects(&[]).is_empty());
        assert!(max_rects(&[Rect::new(0, 0, 0, 10)]).is_empty());
    }

    #[test]
    fn duplicate_rects_dedupe() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(max_rects(&[r, r, r]), vec![r]);
    }

    #[test]
    fn l_shape_two_max_rects() {
        let shapes = [Rect::new(0, 0, 20, 5), Rect::new(0, 0, 10, 10)];
        let maxes = max_rects(&shapes);
        assert_eq!(maxes, vec![Rect::new(0, 0, 10, 10), Rect::new(0, 0, 20, 5)]);
    }

    #[test]
    fn cross_shape_two_max_rects() {
        // A plus/cross: horizontal bar × vertical bar.
        let h = Rect::new(0, 10, 30, 20);
        let v = Rect::new(10, 0, 20, 30);
        let maxes = max_rects(&[h, v]);
        assert_eq!(maxes, vec![h, v]);
    }

    #[test]
    fn t_shape() {
        // T: top bar [0,30]×[20,30], stem [10,20]×[0,30].
        let top = Rect::new(0, 20, 30, 30);
        let stem = Rect::new(10, 0, 20, 30);
        let maxes = max_rects(&[top, stem]);
        assert_eq!(maxes, vec![top, stem]);
    }

    #[test]
    fn abutting_rects_merge() {
        // Two abutting halves of one rectangle → a single maximal rect.
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert_eq!(max_rects(&[a, b]), vec![Rect::new(0, 0, 20, 10)]);
    }

    #[test]
    fn staircase_three_max_rects() {
        // Staircase of three unit steps.
        let shapes = [
            Rect::new(0, 0, 30, 10),
            Rect::new(0, 0, 20, 20),
            Rect::new(0, 0, 10, 30),
        ];
        let maxes = max_rects(&shapes);
        assert_eq!(maxes.len(), 3);
        for s in &shapes {
            assert!(maxes.contains(s));
        }
    }

    #[test]
    fn max_rects_contain_every_input_point() {
        let shapes = [Rect::new(0, 0, 20, 5), Rect::new(5, 0, 10, 15)];
        let maxes = max_rects(&shapes);
        // Sample points on a fine grid; each covered point must be in some
        // maximal rect, and each maximal rect must lie inside the union.
        for x in 0..=20 {
            for y in 0..=15 {
                let p = Point::new(x, y);
                let in_union = shapes.iter().any(|r| r.contains(p));
                let in_max = maxes.iter().any(|r| r.contains(p));
                if in_union {
                    assert!(in_max, "point {p} lost by decomposition");
                }
            }
        }
        // Interior of each maximal rect must be covered by the union.
        for m in &maxes {
            let c = m.center();
            assert!(shapes.iter().any(|r| r.contains(c)));
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let cases: Vec<Vec<Rect>> = vec![
            vec![Rect::new(0, 0, 100, 50)],
            vec![Rect::new(0, 0, 20, 5), Rect::new(0, 0, 10, 10)],
            vec![Rect::new(0, 10, 30, 20), Rect::new(10, 0, 20, 30)],
            vec![],
            vec![Rect::new(0, 0, 10, 10), Rect::new(100, 100, 110, 110)],
        ];
        let mut ws = GridScratch::new();
        let mut out = Vec::new();
        for shapes in &cases {
            max_rects_into(shapes, &mut ws, &mut out);
            assert_eq!(out, max_rects(shapes));
        }
    }

    #[test]
    fn disjoint_islands() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(100, 100, 110, 110);
        assert_eq!(max_rects(&[a, b]), vec![a, b]);
    }
}
