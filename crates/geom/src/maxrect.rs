//! Maximal-rectangle decomposition of a union of rectangles.
//!
//! The paper's *shape-center* coordinate type is defined on the **maximal
//! rectangles** of a pin's geometry: "all overlapping rectangles that are
//! maximal in area" (Section II-C). For a plain rectangular pin this is the
//! pin itself; for an L/T/U-shaped pin the maximal rectangles overlap each
//! other.

use crate::{Dbu, Rect};

/// Computes all maximal axis-aligned rectangles contained in the union of
/// `shapes`.
///
/// A rectangle is *maximal* when it lies inside the union and cannot be
/// grown in any of the four directions while staying inside. The result is
/// deduplicated and sorted. Returns an empty vector for empty input.
/// Degenerate input rectangles are ignored.
///
/// The implementation compresses coordinates (`n` distinct x's, `m` distinct
/// y's) and enumerates candidate spans with a prefix-sum fullness oracle —
/// O(n²m²) candidates, each tested in O(1). Pin geometry has tiny `n`, `m`,
/// so this exhaustive approach is both robust and fast.
///
/// ```
/// use pao_geom::{max_rects, Rect};
///
/// // L-shape as two overlapping rects.
/// let shapes = [Rect::new(0, 0, 20, 5), Rect::new(0, 0, 10, 10)];
/// let mut maxes = max_rects(&shapes);
/// maxes.sort();
/// assert_eq!(maxes, vec![Rect::new(0, 0, 10, 10), Rect::new(0, 0, 20, 5)]);
/// ```
#[must_use]
pub fn max_rects(shapes: &[Rect]) -> Vec<Rect> {
    let shapes: Vec<Rect> = shapes
        .iter()
        .copied()
        .filter(|r| !r.is_degenerate())
        .collect();
    if shapes.is_empty() {
        return Vec::new();
    }
    let mut xs: Vec<Dbu> = shapes.iter().flat_map(|r| [r.xlo(), r.xhi()]).collect();
    let mut ys: Vec<Dbu> = shapes.iter().flat_map(|r| [r.ylo(), r.yhi()]).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let nx = xs.len() - 1; // number of cell columns
    let ny = ys.len() - 1;

    // covered[i][j]: cell (xs[i]..xs[i+1]) × (ys[j]..ys[j+1]) in the union.
    let mut covered = vec![vec![false; ny]; nx];
    for r in &shapes {
        let i0 = xs.binary_search(&r.xlo()).expect("compressed coord");
        let i1 = xs.binary_search(&r.xhi()).expect("compressed coord");
        let j0 = ys.binary_search(&r.ylo()).expect("compressed coord");
        let j1 = ys.binary_search(&r.yhi()).expect("compressed coord");
        for col in covered.iter_mut().take(i1).skip(i0) {
            for cell in col.iter_mut().take(j1).skip(j0) {
                *cell = true;
            }
        }
    }

    // 2-D prefix sums of covered cells for O(1) fullness queries.
    let mut pre = vec![vec![0u32; ny + 1]; nx + 1];
    for i in 0..nx {
        for j in 0..ny {
            pre[i + 1][j + 1] =
                pre[i][j + 1] + pre[i + 1][j] - pre[i][j] + u32::from(covered[i][j]);
        }
    }
    let cells = |i0: usize, i1: usize, j0: usize, j1: usize| -> u32 {
        // Ordered so every intermediate value stays non-negative.
        (pre[i1][j1] - pre[i0][j1]) + pre[i0][j0] - pre[i1][j0]
    };
    let full = |i0: usize, i1: usize, j0: usize, j1: usize| -> bool {
        i0 < i1 && j0 < j1 && cells(i0, i1, j0, j1) == ((i1 - i0) as u32) * ((j1 - j0) as u32)
    };

    let mut out = Vec::new();
    for i0 in 0..nx {
        for i1 in (i0 + 1)..=nx {
            for j0 in 0..ny {
                for j1 in (j0 + 1)..=ny {
                    if !full(i0, i1, j0, j1) {
                        continue;
                    }
                    let grow_left = i0 > 0 && full(i0 - 1, i1, j0, j1);
                    let grow_right = i1 < nx && full(i0, i1 + 1, j0, j1);
                    let grow_down = j0 > 0 && full(i0, i1, j0 - 1, j1);
                    let grow_up = j1 < ny && full(i0, i1, j0, j1 + 1);
                    if !(grow_left || grow_right || grow_down || grow_up) {
                        out.push(Rect::new(xs[i0], ys[j0], xs[i1], ys[j1]));
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn single_rect_is_its_own_max() {
        let r = Rect::new(0, 0, 100, 50);
        assert_eq!(max_rects(&[r]), vec![r]);
    }

    #[test]
    fn empty_and_degenerate_input() {
        assert!(max_rects(&[]).is_empty());
        assert!(max_rects(&[Rect::new(0, 0, 0, 10)]).is_empty());
    }

    #[test]
    fn duplicate_rects_dedupe() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(max_rects(&[r, r, r]), vec![r]);
    }

    #[test]
    fn l_shape_two_max_rects() {
        let shapes = [Rect::new(0, 0, 20, 5), Rect::new(0, 0, 10, 10)];
        let maxes = max_rects(&shapes);
        assert_eq!(maxes, vec![Rect::new(0, 0, 10, 10), Rect::new(0, 0, 20, 5)]);
    }

    #[test]
    fn cross_shape_two_max_rects() {
        // A plus/cross: horizontal bar × vertical bar.
        let h = Rect::new(0, 10, 30, 20);
        let v = Rect::new(10, 0, 20, 30);
        let maxes = max_rects(&[h, v]);
        assert_eq!(maxes, vec![h, v]);
    }

    #[test]
    fn t_shape() {
        // T: top bar [0,30]×[20,30], stem [10,20]×[0,30].
        let top = Rect::new(0, 20, 30, 30);
        let stem = Rect::new(10, 0, 20, 30);
        let maxes = max_rects(&[top, stem]);
        assert_eq!(maxes, vec![top, stem]);
    }

    #[test]
    fn abutting_rects_merge() {
        // Two abutting halves of one rectangle → a single maximal rect.
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert_eq!(max_rects(&[a, b]), vec![Rect::new(0, 0, 20, 10)]);
    }

    #[test]
    fn staircase_three_max_rects() {
        // Staircase of three unit steps.
        let shapes = [
            Rect::new(0, 0, 30, 10),
            Rect::new(0, 0, 20, 20),
            Rect::new(0, 0, 10, 30),
        ];
        let maxes = max_rects(&shapes);
        assert_eq!(maxes.len(), 3);
        for s in &shapes {
            assert!(maxes.contains(s));
        }
    }

    #[test]
    fn max_rects_contain_every_input_point() {
        let shapes = [Rect::new(0, 0, 20, 5), Rect::new(5, 0, 10, 15)];
        let maxes = max_rects(&shapes);
        // Sample points on a fine grid; each covered point must be in some
        // maximal rect, and each maximal rect must lie inside the union.
        for x in 0..=20 {
            for y in 0..=15 {
                let p = Point::new(x, y);
                let in_union = shapes.iter().any(|r| r.contains(p));
                let in_max = maxes.iter().any(|r| r.contains(p));
                if in_union {
                    assert!(in_max, "point {p} lost by decomposition");
                }
            }
        }
        // Interior of each maximal rect must be covered by the union.
        for m in &maxes {
            let c = m.center();
            assert!(shapes.iter().any(|r| r.contains(c)));
        }
    }

    #[test]
    fn disjoint_islands() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(100, 100, 110, 110);
        assert_eq!(max_rects(&[a, b]), vec![a, b]);
    }
}
