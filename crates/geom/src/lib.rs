#![warn(missing_docs)]

//! Integer Manhattan geometry for VLSI physical design.
//!
//! All coordinates are in **database units** (DBU, typically 1/1000 or
//! 1/2000 of a micron) represented as [`i64`] — the same convention used by
//! LEF/DEF-based tools. The crate provides:
//!
//! * [`Point`], [`Rect`], [`Interval`] primitives with Manhattan-distance
//!   predicates,
//! * rectilinear [`Polygon`]s and their decomposition into
//!   [maximal rectangles](maxrect::max_rects) (needed for the paper's
//!   *shape-center* access coordinates),
//! * DEF placement [`Orient`]ations and the affine [`Transform`] they induce,
//! * a bulk-loaded [`RTree`] spatial index used by the DRC engine and the
//!   access-point validator.
//!
//! # Examples
//!
//! ```
//! use pao_geom::{Point, Rect};
//!
//! let pin = Rect::new(0, 0, 400, 120);
//! assert!(pin.contains(Point::new(200, 60)));
//! assert_eq!(pin.center(), Point::new(200, 60));
//! ```

pub mod boundary;
pub mod dist;
pub mod interval;
pub mod maxrect;
pub mod orient;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod rtree;
pub mod scratch;
pub mod transform;

pub use dist::{euclid_sq, manhattan, rect_dist, rect_dist_components};
pub use interval::Interval;
pub use maxrect::{max_rects, max_rects_into};
pub use orient::Orient;
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use rtree::RTree;
pub use scratch::GridScratch;
pub use transform::Transform;

/// Database unit coordinate type used throughout the workspace.
pub type Dbu = i64;

/// Axis selector for direction-dependent geometry (preferred routing
/// direction, track axes, spans).
///
/// `Horizontal` means "extending along x" (a horizontal wire); its governing
/// coordinate (the track location) is therefore a *y* value, and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Extends along the x axis.
    Horizontal,
    /// Extends along the y axis.
    Vertical,
}

impl Dir {
    /// The perpendicular direction.
    ///
    /// ```
    /// use pao_geom::Dir;
    /// assert_eq!(Dir::Horizontal.perp(), Dir::Vertical);
    /// ```
    #[must_use]
    pub fn perp(self) -> Dir {
        match self {
            Dir::Horizontal => Dir::Vertical,
            Dir::Vertical => Dir::Horizontal,
        }
    }

    /// `true` for [`Dir::Horizontal`].
    #[must_use]
    pub fn is_horizontal(self) -> bool {
        self == Dir::Horizontal
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dir::Horizontal => write!(f, "HORIZONTAL"),
            Dir::Vertical => write!(f, "VERTICAL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_perp_is_involutive() {
        assert_eq!(Dir::Horizontal.perp().perp(), Dir::Horizontal);
        assert_eq!(Dir::Vertical.perp().perp(), Dir::Vertical);
    }

    #[test]
    fn dir_display() {
        assert_eq!(Dir::Horizontal.to_string(), "HORIZONTAL");
        assert_eq!(Dir::Vertical.to_string(), "VERTICAL");
    }
}
