//! Axis-aligned integer rectangles.

use crate::{Dbu, Dir, Interval, Point};
use std::fmt;

/// An axis-aligned rectangle `[xlo, xhi] × [ylo, yhi]` in DBU.
///
/// Rectangles are *closed* regions: two rectangles that share only an edge
/// or a corner still [`touch`](Rect::touches) but have zero
/// [`overlap area`](Rect::intersect). Degenerate (zero-width/height)
/// rectangles are permitted; they model wire centerlines and track segments.
///
/// ```
/// use pao_geom::{Point, Rect};
/// let r = Rect::new(0, 0, 100, 50);
/// assert_eq!(r.width(), 100);
/// assert_eq!(r.height(), 50);
/// assert_eq!(r.area(), 5000);
/// assert!(r.contains(Point::new(100, 50))); // closed
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    xlo: Dbu,
    ylo: Dbu,
    xhi: Dbu,
    yhi: Dbu,
}

impl Rect {
    /// Creates a rectangle from two corner coordinates (order-insensitive).
    #[must_use]
    pub fn new(x1: Dbu, y1: Dbu, x2: Dbu, y2: Dbu) -> Rect {
        Rect {
            xlo: x1.min(x2),
            ylo: y1.min(y2),
            xhi: x1.max(x2),
            yhi: y1.max(y2),
        }
    }

    /// Creates a rectangle from two corner points.
    #[must_use]
    pub fn from_points(a: Point, b: Point) -> Rect {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a rectangle centered at `c` with the given total width and
    /// height. Odd extents round down on the high side.
    #[must_use]
    pub fn centered_at(c: Point, width: Dbu, height: Dbu) -> Rect {
        Rect::new(
            c.x - width / 2,
            c.y - height / 2,
            c.x - width / 2 + width,
            c.y - height / 2 + height,
        )
    }

    /// Low x edge.
    #[must_use]
    pub fn xlo(self) -> Dbu {
        self.xlo
    }

    /// Low y edge.
    #[must_use]
    pub fn ylo(self) -> Dbu {
        self.ylo
    }

    /// High x edge.
    #[must_use]
    pub fn xhi(self) -> Dbu {
        self.xhi
    }

    /// High y edge.
    #[must_use]
    pub fn yhi(self) -> Dbu {
        self.yhi
    }

    /// Lower-left corner.
    #[must_use]
    pub fn ll(self) -> Point {
        Point::new(self.xlo, self.ylo)
    }

    /// Upper-right corner.
    #[must_use]
    pub fn ur(self) -> Point {
        Point::new(self.xhi, self.yhi)
    }

    /// Width (x extent).
    #[must_use]
    pub fn width(self) -> Dbu {
        self.xhi - self.xlo
    }

    /// Height (y extent).
    #[must_use]
    pub fn height(self) -> Dbu {
        self.yhi - self.ylo
    }

    /// Area (`width × height`).
    #[must_use]
    pub fn area(self) -> i128 {
        i128::from(self.width()) * i128::from(self.height())
    }

    /// The shorter of width and height — the "width" in the min-width DRC
    /// sense.
    #[must_use]
    pub fn min_side(self) -> Dbu {
        self.width().min(self.height())
    }

    /// The longer of width and height.
    #[must_use]
    pub fn max_side(self) -> Dbu {
        self.width().max(self.height())
    }

    /// Center point (integer division, rounds toward low corner).
    #[must_use]
    pub fn center(self) -> Point {
        Point::new(
            self.xlo + (self.xhi - self.xlo) / 2,
            self.ylo + (self.yhi - self.ylo) / 2,
        )
    }

    /// `true` when width or height is zero.
    #[must_use]
    pub fn is_degenerate(self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// The x span as an [`Interval`].
    #[must_use]
    pub fn x_span(self) -> Interval {
        Interval::new(self.xlo, self.xhi)
    }

    /// The y span as an [`Interval`].
    #[must_use]
    pub fn y_span(self) -> Interval {
        Interval::new(self.ylo, self.yhi)
    }

    /// The span along `dir` ([`x_span`](Rect::x_span) for horizontal).
    #[must_use]
    pub fn span(self, dir: Dir) -> Interval {
        match dir {
            Dir::Horizontal => self.x_span(),
            Dir::Vertical => self.y_span(),
        }
    }

    /// `true` when the point lies in the closed region.
    #[must_use]
    pub fn contains(self, p: Point) -> bool {
        self.x_span().contains(p.x) && self.y_span().contains(p.y)
    }

    /// `true` when the point lies strictly inside (not on the boundary).
    #[must_use]
    pub fn contains_strict(self, p: Point) -> bool {
        self.xlo < p.x && p.x < self.xhi && self.ylo < p.y && p.y < self.yhi
    }

    /// `true` when `other` lies entirely within `self` (closed containment).
    #[must_use]
    pub fn contains_rect(self, other: Rect) -> bool {
        self.x_span().contains_interval(other.x_span())
            && self.y_span().contains_interval(other.y_span())
    }

    /// `true` when the closed regions share at least one point (edge/corner
    /// contact counts).
    #[must_use]
    pub fn touches(self, other: Rect) -> bool {
        self.x_span().overlaps(other.x_span()) && self.y_span().overlaps(other.y_span())
    }

    /// `true` when the open interiors intersect (edge/corner contact does
    /// *not* count). This is the "shapes short" predicate.
    #[must_use]
    pub fn overlaps(self, other: Rect) -> bool {
        self.xlo < other.xhi && other.xlo < self.xhi && self.ylo < other.yhi && other.ylo < self.yhi
    }

    /// Intersection of the closed regions, when non-empty (may be
    /// degenerate for edge contact).
    #[must_use]
    pub fn intersect(self, other: Rect) -> Option<Rect> {
        let xs = self.x_span().intersect(other.x_span())?;
        let ys = self.y_span().intersect(other.y_span())?;
        Some(Rect::new(xs.lo(), ys.lo(), xs.hi(), ys.hi()))
    }

    /// Smallest rectangle containing both inputs.
    #[must_use]
    pub fn hull(self, other: Rect) -> Rect {
        Rect::new(
            self.xlo.min(other.xlo),
            self.ylo.min(other.ylo),
            self.xhi.max(other.xhi),
            self.yhi.max(other.yhi),
        )
    }

    /// The rectangle expanded by `d` on all four sides (shrunk for negative
    /// `d`).
    ///
    /// # Panics
    ///
    /// Panics if shrinking inverts either span.
    #[must_use]
    pub fn expanded(self, d: Dbu) -> Rect {
        let xs = self.x_span().expanded(d);
        let ys = self.y_span().expanded(d);
        Rect::new(xs.lo(), ys.lo(), xs.hi(), ys.hi())
    }

    /// The rectangle expanded by possibly different amounts per axis.
    #[must_use]
    pub fn expanded_xy(self, dx: Dbu, dy: Dbu) -> Rect {
        let xs = self.x_span().expanded(dx);
        let ys = self.y_span().expanded(dy);
        Rect::new(xs.lo(), ys.lo(), xs.hi(), ys.hi())
    }

    /// The rectangle translated by `delta`.
    #[must_use]
    pub fn translated(self, delta: Point) -> Rect {
        Rect {
            xlo: self.xlo + delta.x,
            ylo: self.ylo + delta.y,
            xhi: self.xhi + delta.x,
            yhi: self.yhi + delta.y,
        }
    }

    /// Minimum Manhattan distance between the two closed regions (0 when
    /// they touch or overlap).
    #[must_use]
    pub fn dist(self, other: Rect) -> Dbu {
        self.x_span().dist(other.x_span()) + self.y_span().dist(other.y_span())
    }

    /// Per-axis gaps `(dx, dy)` between the two closed regions; each is 0
    /// when the projections overlap. Spacing rules compare
    /// `max(dx, dy)`-style Euclidean or Manhattan combinations of these.
    #[must_use]
    pub fn dist_components(self, other: Rect) -> (Dbu, Dbu) {
        (
            self.x_span().dist(other.x_span()),
            self.y_span().dist(other.y_span()),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}) - ({}, {})",
            self.xlo, self.ylo, self.xhi, self.yhi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_corners() {
        let r = Rect::new(10, 20, -10, -20);
        assert_eq!(r.ll(), Point::new(-10, -20));
        assert_eq!(r.ur(), Point::new(10, 20));
        assert_eq!(r.width(), 20);
        assert_eq!(r.height(), 40);
    }

    #[test]
    fn centered_at_even_and_odd() {
        let r = Rect::centered_at(Point::new(0, 0), 10, 4);
        assert_eq!(r, Rect::new(-5, -2, 5, 2));
        let r = Rect::centered_at(Point::new(0, 0), 5, 3);
        assert_eq!(r.width(), 5);
        assert_eq!(r.height(), 3);
        assert_eq!(r.center(), Point::new(0, 0));
    }

    #[test]
    fn containment_predicates() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(10, 10)));
        assert!(!r.contains_strict(Point::new(0, 5)));
        assert!(r.contains_strict(Point::new(5, 5)));
        assert!(r.contains_rect(Rect::new(0, 0, 10, 10)));
        assert!(!r.contains_rect(Rect::new(0, 0, 11, 10)));
    }

    #[test]
    fn touch_vs_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let edge = Rect::new(10, 0, 20, 10);
        let corner = Rect::new(10, 10, 20, 20);
        let inside = Rect::new(5, 5, 15, 15);
        let far = Rect::new(11, 0, 20, 10);
        assert!(a.touches(edge) && !a.overlaps(edge));
        assert!(a.touches(corner) && !a.overlaps(corner));
        assert!(a.touches(inside) && a.overlaps(inside));
        assert!(!a.touches(far) && !a.overlaps(far));
    }

    #[test]
    fn intersection_and_hull() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 20, 20);
        assert_eq!(a.intersect(b), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.hull(b), Rect::new(0, 0, 20, 20));
        assert_eq!(a.intersect(Rect::new(11, 11, 20, 20)), None);
        // Edge contact yields a degenerate intersection.
        let e = a.intersect(Rect::new(10, 0, 20, 10)).unwrap();
        assert!(e.is_degenerate());
    }

    #[test]
    fn distances() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(13, 14, 20, 20);
        assert_eq!(a.dist_components(b), (3, 4));
        assert_eq!(a.dist(b), 7);
        assert_eq!(a.dist(Rect::new(5, 5, 6, 6)), 0);
    }

    #[test]
    fn expansion_translation() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(a.expanded(2), Rect::new(-2, -2, 12, 12));
        assert_eq!(a.expanded_xy(1, 0), Rect::new(-1, 0, 11, 10));
        assert_eq!(
            a.translated(Point::new(100, -100)),
            Rect::new(100, -100, 110, -90)
        );
    }

    #[test]
    fn area_uses_wide_arithmetic() {
        let big = Rect::new(0, 0, i64::MAX / 4, 4);
        assert_eq!(big.area(), i128::from(i64::MAX / 4) * 4);
    }

    #[test]
    fn span_by_dir() {
        let r = Rect::new(0, 1, 10, 21);
        assert_eq!(r.span(Dir::Horizontal), Interval::new(0, 10));
        assert_eq!(r.span(Dir::Vertical), Interval::new(1, 21));
        assert_eq!(r.min_side(), 10);
        assert_eq!(r.max_side(), 20);
    }
}
