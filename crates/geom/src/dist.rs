//! Distance helpers shared by spacing checks.

use crate::{Dbu, Point, Rect};

/// Manhattan (L1) distance between two points.
///
/// ```
/// use pao_geom::{manhattan, Point};
/// assert_eq!(manhattan(Point::new(0, 0), Point::new(3, 4)), 7);
/// ```
#[must_use]
pub fn manhattan(a: Point, b: Point) -> Dbu {
    a.manhattan(b)
}

/// Squared Euclidean distance between two points (kept squared to stay in
/// integer arithmetic; compare against `d * d`).
///
/// ```
/// use pao_geom::{euclid_sq, Point};
/// assert_eq!(euclid_sq(Point::new(0, 0), Point::new(3, 4)), 25);
/// ```
#[must_use]
pub fn euclid_sq(a: Point, b: Point) -> i128 {
    let dx = i128::from(a.x - b.x);
    let dy = i128::from(a.y - b.y);
    dx * dx + dy * dy
}

/// Per-axis gaps `(dx, dy)` between two closed rectangles (each component
/// is zero when the projections overlap).
#[must_use]
pub fn rect_dist_components(a: Rect, b: Rect) -> (Dbu, Dbu) {
    a.dist_components(b)
}

/// Euclidean-squared corner-to-corner distance between two rectangles, the
/// metric used by corner-to-corner spacing checks. Zero when the rectangles
/// touch or overlap.
#[must_use]
pub fn rect_dist(a: Rect, b: Rect) -> i128 {
    let (dx, dy) = a.dist_components(b);
    i128::from(dx) * i128::from(dx) + i128::from(dy) * i128::from(dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclid_matches_pythagoras() {
        assert_eq!(euclid_sq(Point::new(1, 1), Point::new(4, 5)), 25);
        assert_eq!(euclid_sq(Point::new(0, 0), Point::new(0, 0)), 0);
    }

    #[test]
    fn rect_corner_distance() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(13, 14, 20, 20);
        assert_eq!(rect_dist(a, b), 9 + 16);
        assert_eq!(rect_dist_components(a, b), (3, 4));
        // Overlapping rects are at distance zero.
        assert_eq!(rect_dist(a, Rect::new(5, 5, 8, 8)), 0);
        // Edge-aligned rects are at distance zero.
        assert_eq!(rect_dist(a, Rect::new(10, 0, 20, 10)), 0);
    }

    #[test]
    fn manhattan_symmetry() {
        let a = Point::new(-3, 7);
        let b = Point::new(11, -2);
        assert_eq!(manhattan(a, b), manhattan(b, a));
        assert_eq!(manhattan(a, b), 14 + 9);
    }
}
