//! Placement transforms mapping cell-master coordinates into die
//! coordinates.

use crate::{Dbu, Dir, Orient, Point, Rect};

/// The affine transform induced by placing a cell master of size
/// `width × height` at `location` with a given [`Orient`].
///
/// Master shapes live in master coordinates with the master's bounding box
/// at `[0, width] × [0, height]`. Per the LEF/DEF convention, the master is
/// first rotated/mirrored and then translated so that the lower-left corner
/// of its *transformed* bounding box coincides with `location`.
///
/// ```
/// use pao_geom::{Orient, Point, Rect, Transform};
///
/// // A 100×50 master placed at (1000, 2000), mirrored about the x axis.
/// let t = Transform::new(Point::new(1000, 2000), Orient::FS, 100, 50);
/// // The master's lower-left corner maps to the placed upper-left corner.
/// assert_eq!(t.apply(Point::new(0, 0)), Point::new(1000, 2050));
/// // The master bbox maps onto the placement bbox.
/// assert_eq!(t.apply_rect(Rect::new(0, 0, 100, 50)), Rect::new(1000, 2000, 1100, 2050));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transform {
    location: Point,
    orient: Orient,
    width: Dbu,
    height: Dbu,
}

impl Transform {
    /// Creates a transform for a master of the given size placed at
    /// `location` with orientation `orient`.
    #[must_use]
    pub fn new(location: Point, orient: Orient, width: Dbu, height: Dbu) -> Transform {
        Transform {
            location,
            orient,
            width,
            height,
        }
    }

    /// Identity transform (placement at the origin, orientation `N`).
    #[must_use]
    pub fn identity() -> Transform {
        Transform::new(Point::ORIGIN, Orient::N, 0, 0)
    }

    /// The placement location (lower-left of the placed bounding box).
    #[must_use]
    pub fn location(self) -> Point {
        self.location
    }

    /// The placement orientation.
    #[must_use]
    pub fn orient(self) -> Orient {
        self.orient
    }

    /// Maps a master-space point into die space.
    #[must_use]
    pub fn apply(self, p: Point) -> Point {
        let Point { x, y } = p;
        let (lx, ly) = (self.location.x, self.location.y);
        let (w, h) = (self.width, self.height);
        match self.orient {
            Orient::N => Point::new(lx + x, ly + y),
            Orient::S => Point::new(lx + w - x, ly + h - y),
            Orient::W => Point::new(lx + h - y, ly + x),
            Orient::E => Point::new(lx + y, ly + w - x),
            Orient::FN => Point::new(lx + w - x, ly + y),
            Orient::FS => Point::new(lx + x, ly + h - y),
            Orient::FW => Point::new(lx + y, ly + x),
            Orient::FE => Point::new(lx + h - y, ly + w - x),
        }
    }

    /// Maps a master-space rectangle into die space.
    #[must_use]
    pub fn apply_rect(self, r: Rect) -> Rect {
        Rect::from_points(self.apply(r.ll()), self.apply(r.ur()))
    }

    /// Maps a die-space point back into master space.
    ///
    /// ```
    /// use pao_geom::{Orient, Point, Transform};
    /// let t = Transform::new(Point::new(10, 20), Orient::E, 100, 50);
    /// let p = Point::new(33, 47);
    /// assert_eq!(t.invert(t.apply(p)), p);
    /// ```
    #[must_use]
    pub fn invert(self, p: Point) -> Point {
        let Point { x, y } = p;
        let (lx, ly) = (self.location.x, self.location.y);
        let (w, h) = (self.width, self.height);
        match self.orient {
            Orient::N => Point::new(x - lx, y - ly),
            Orient::S => Point::new(lx + w - x, ly + h - y),
            Orient::W => Point::new(y - ly, lx + h - x),
            Orient::E => Point::new(ly + w - y, x - lx),
            Orient::FN => Point::new(lx + w - x, y - ly),
            Orient::FS => Point::new(x - lx, ly + h - y),
            Orient::FW => Point::new(y - ly, x - lx),
            Orient::FE => Point::new(ly + w - y, lx + h - x),
        }
    }

    /// Maps a die-space rectangle back into master space.
    #[must_use]
    pub fn invert_rect(self, r: Rect) -> Rect {
        Rect::from_points(self.invert(r.ll()), self.invert(r.ur()))
    }

    /// Maps a master-space direction into die space (axes swap under 90°
    /// rotations).
    #[must_use]
    pub fn apply_dir(self, dir: Dir) -> Dir {
        if self.orient.swaps_axes() {
            dir.perp()
        } else {
            dir
        }
    }

    /// Bounding box of the placed master.
    #[must_use]
    pub fn placed_bbox(self) -> Rect {
        let (w, h) = if self.orient.swaps_axes() {
            (self.height, self.width)
        } else {
            (self.width, self.height)
        };
        Rect::new(
            self.location.x,
            self.location.y,
            self.location.x + w,
            self.location.y + h,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Dbu = 100;
    const H: Dbu = 50;

    fn t(o: Orient) -> Transform {
        Transform::new(Point::new(1000, 2000), o, W, H)
    }

    #[test]
    fn master_bbox_maps_to_placed_bbox() {
        let master = Rect::new(0, 0, W, H);
        for o in Orient::ALL {
            let tr = t(o);
            assert_eq!(tr.apply_rect(master), tr.placed_bbox(), "orient {o}");
        }
    }

    #[test]
    fn axis_swapping_orients_swap_bbox() {
        assert_eq!(
            t(Orient::W).placed_bbox(),
            Rect::new(1000, 2000, 1050, 2100)
        );
        assert_eq!(
            t(Orient::N).placed_bbox(),
            Rect::new(1000, 2000, 1100, 2050)
        );
    }

    #[test]
    fn inverse_roundtrips_all_orients() {
        let pts = [
            Point::new(0, 0),
            Point::new(W, H),
            Point::new(13, 37),
            Point::new(W, 0),
        ];
        for o in Orient::ALL {
            let tr = t(o);
            for p in pts {
                assert_eq!(tr.invert(tr.apply(p)), p, "orient {o}, point {p}");
                let die = tr.apply(p);
                assert_eq!(tr.apply(tr.invert(die)), die, "orient {o}");
            }
        }
    }

    #[test]
    fn rect_roundtrips_all_orients() {
        let r = Rect::new(10, 5, 60, 45);
        for o in Orient::ALL {
            let tr = t(o);
            assert_eq!(tr.invert_rect(tr.apply_rect(r)), r, "orient {o}");
        }
    }

    #[test]
    fn known_corner_mappings() {
        // FS mirrors about x: master LL -> placed UL.
        assert_eq!(
            t(Orient::FS).apply(Point::new(0, 0)),
            Point::new(1000, 2050)
        );
        // FN mirrors about y: master LL -> placed LR.
        assert_eq!(
            t(Orient::FN).apply(Point::new(0, 0)),
            Point::new(1100, 2000)
        );
        // S rotates 180: master LL -> placed UR.
        assert_eq!(t(Orient::S).apply(Point::new(0, 0)), Point::new(1100, 2050));
    }

    #[test]
    fn dir_mapping() {
        assert_eq!(t(Orient::N).apply_dir(Dir::Horizontal), Dir::Horizontal);
        assert_eq!(t(Orient::FS).apply_dir(Dir::Horizontal), Dir::Horizontal);
        assert_eq!(t(Orient::W).apply_dir(Dir::Horizontal), Dir::Vertical);
        assert_eq!(t(Orient::FE).apply_dir(Dir::Vertical), Dir::Horizontal);
    }

    #[test]
    fn interior_points_stay_in_placed_bbox() {
        for o in Orient::ALL {
            let tr = t(o);
            let bbox = tr.placed_bbox();
            for p in [Point::new(1, 1), Point::new(99, 49), Point::new(50, 25)] {
                assert!(bbox.contains(tr.apply(p)), "orient {o}");
            }
        }
    }
}
