//! Reusable workspace buffers for the grid-based union algorithms.
//!
//! [`union_boundaries`](crate::boundary::union_boundaries),
//! [`union_area`](crate::boundary::union_area) and
//! [`max_rects`](crate::max_rects) all coordinate-compress their input and
//! rasterize it onto a cell grid. A [`GridScratch`] owns every buffer those
//! passes need, so the `*_into` / visitor variants run allocation-free once
//! the buffers have grown to the workload's high-water mark. One scratch
//! serves all three algorithms (they run sequentially per DRC probe).

use crate::{Dbu, Point, Rect};

/// Reusable buffers for [`boundary`](crate::boundary) and
/// [`maxrect`](crate::maxrect) computations.
///
/// Create once per worker and pass to
/// [`visit_union_boundaries`](crate::boundary::visit_union_boundaries),
/// [`union_area_with`](crate::boundary::union_area_with) or
/// [`max_rects_into`](crate::maxrect::max_rects_into). Contents between
/// calls are unspecified; the buffers only ever grow.
#[derive(Debug, Default)]
pub struct GridScratch {
    /// Non-degenerate input shapes.
    pub(crate) shapes: Vec<Rect>,
    /// Compressed distinct x coordinates.
    pub(crate) xs: Vec<Dbu>,
    /// Compressed distinct y coordinates.
    pub(crate) ys: Vec<Dbu>,
    /// Cell coverage flags, row-major `[i * ny + j]`.
    pub(crate) covered: Vec<bool>,
    /// 2-D prefix sums over `covered`, `[(i) * (ny + 1) + j]`.
    pub(crate) pre: Vec<u32>,
    /// Directed boundary edges, sorted by source point.
    pub(crate) edges: Vec<(Point, Point)>,
    /// Consumed flags parallel to `edges`.
    pub(crate) used: Vec<bool>,
    /// Vertex path of the loop being stitched.
    pub(crate) path: Vec<Point>,
    /// Collinear-merged loop handed to the visitor.
    pub(crate) merged: Vec<Point>,
}

impl GridScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> GridScratch {
        GridScratch::default()
    }

    /// Total capacity (in elements) across all buffers — the allocation
    /// high-water mark. Steady under a fixed workload once warmed up.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.shapes.capacity()
            + self.xs.capacity()
            + self.ys.capacity()
            + self.covered.capacity()
            + self.pre.capacity()
            + self.edges.capacity()
            + self.used.capacity()
            + self.path.capacity()
            + self.merged.capacity()
    }

    /// Filters degenerate shapes, compresses coordinates and rasterizes
    /// coverage onto the cell grid. Returns the grid dimensions
    /// `(nx, ny)` in cells, or `None` when no non-degenerate shape exists.
    pub(crate) fn compress_and_fill(&mut self, shapes: &[Rect]) -> Option<(usize, usize)> {
        self.shapes.clear();
        self.shapes
            .extend(shapes.iter().copied().filter(|r| !r.is_degenerate()));
        if self.shapes.is_empty() {
            return None;
        }
        self.xs.clear();
        self.ys.clear();
        for r in &self.shapes {
            self.xs.push(r.xlo());
            self.xs.push(r.xhi());
            self.ys.push(r.ylo());
            self.ys.push(r.yhi());
        }
        self.xs.sort_unstable();
        self.xs.dedup();
        self.ys.sort_unstable();
        self.ys.dedup();
        let nx = self.xs.len() - 1;
        let ny = self.ys.len() - 1;
        self.covered.clear();
        self.covered.resize(nx * ny, false);
        for r in &self.shapes {
            // xs/ys contain every shape coordinate by construction; a failed
            // search returns the insertion point, degrading to the nearest
            // cell instead of panicking.
            let i0 = self.xs.binary_search(&r.xlo()).unwrap_or_else(|i| i);
            let i1 = self.xs.binary_search(&r.xhi()).unwrap_or_else(|i| i);
            let j0 = self.ys.binary_search(&r.ylo()).unwrap_or_else(|i| i);
            let j1 = self.ys.binary_search(&r.yhi()).unwrap_or_else(|i| i);
            for i in i0..i1 {
                for cell in &mut self.covered[i * ny + j0..i * ny + j1] {
                    *cell = true;
                }
            }
        }
        Some((nx, ny))
    }
}
