//! A bulk-loaded R-tree for rectangle region queries.
//!
//! The DRC engine and the access-point validator issue millions of "which
//! shapes touch this window?" queries. This module provides a compact
//! Sort-Tile-Recursive (STR) bulk-loaded R-tree plus an overflow buffer for
//! incremental insertion (folded into the tree on [`RTree::rebuild`]).

use crate::Rect;

const NODE_CAPACITY: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bbox: Rect,
        /// Indices into the item arena.
        items: Vec<u32>,
    },
    Inner {
        bbox: Rect,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> Rect {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => *bbox,
        }
    }
}

/// An R-tree mapping rectangles to payloads of type `T`.
///
/// Build with [`RTree::bulk_load`] (or collect from an iterator of
/// `(Rect, T)` pairs), then query with [`RTree::query`]. Items whose closed
/// bounds *touch* the query window are returned — the inclusive semantics
/// spacing checks need.
///
/// ```
/// use pao_geom::{Rect, RTree};
///
/// let tree: RTree<&str> = vec![
///     (Rect::new(0, 0, 10, 10), "a"),
///     (Rect::new(20, 0, 30, 10), "b"),
/// ]
/// .into_iter()
/// .collect();
/// let hits: Vec<&&str> = tree.query(Rect::new(5, 5, 25, 6)).map(|(_, t)| t).collect();
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T> {
    items: Vec<(Rect, T)>,
    root: Option<Node>,
    /// Items inserted after the last (re)build; scanned linearly.
    overflow: Vec<usize>,
}

impl<T> Default for RTree<T> {
    fn default() -> RTree<T> {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> RTree<T> {
        RTree {
            items: Vec::new(),
            root: None,
            overflow: Vec::new(),
        }
    }

    /// Bulk-loads a tree from items using Sort-Tile-Recursive packing.
    #[must_use]
    pub fn bulk_load(items: Vec<(Rect, T)>) -> RTree<T> {
        let mut tree = RTree {
            items,
            root: None,
            overflow: Vec::new(),
        };
        tree.build_root();
        tree
    }

    fn build_root(&mut self) {
        self.overflow.clear();
        if self.items.is_empty() {
            self.root = None;
            return;
        }
        // STR: sort by center x, slice into vertical strips, sort each strip
        // by center y, pack into leaves.
        let mut idx: Vec<u32> = (0..self.items.len() as u32).collect();
        idx.sort_by_key(|&i| {
            let c = self.items[i as usize].0.center();
            (c.x, c.y)
        });
        let n = idx.len();
        let leaves_needed = n.div_ceil(NODE_CAPACITY);
        let strips = (leaves_needed as f64).sqrt().ceil() as usize;
        let strip_len = n.div_ceil(strips);
        let mut leaves: Vec<Node> = Vec::with_capacity(leaves_needed);
        for strip in idx.chunks_mut(strip_len.max(1)) {
            strip.sort_by_key(|&i| {
                let c = self.items[i as usize].0.center();
                (c.y, c.x)
            });
            for leaf in strip.chunks(NODE_CAPACITY) {
                // chunks() never yields an empty slice, so folding from the
                // first item needs no fallible reduce.
                let mut bbox = self.items[leaf[0] as usize].0;
                for &i in &leaf[1..] {
                    bbox = Rect::hull(bbox, self.items[i as usize].0);
                }
                leaves.push(Node::Leaf {
                    bbox,
                    items: leaf.to_vec(),
                });
            }
        }
        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                // peek() guarantees at least one child, so fold from it.
                let children: Vec<Node> = iter.by_ref().take(NODE_CAPACITY).collect();
                let mut bbox = children[0].bbox();
                for c in &children[1..] {
                    bbox = Rect::hull(bbox, c.bbox());
                }
                next.push(Node::Inner { bbox, children });
            }
            level = next;
        }
        self.root = level.pop();
    }

    /// Concatenates pre-packed shard trees into one tree **without**
    /// re-sorting their items: each shard's subtree is kept intact (leaf
    /// indices rebased into the merged arena) and the shard roots are
    /// packed upward into a single root.
    ///
    /// This is the scaling path for whole-design contexts: shards are
    /// bulk-loaded independently (possibly on worker threads), then
    /// stitched in O(items) with no global sort. The resulting tree
    /// structure depends only on the shard partitioning — never on how
    /// many threads packed the shards — so query results and iteration
    /// order are reproducible.
    ///
    /// Spatially disjoint shards (e.g. contiguous placement chunks) keep
    /// query cost near a monolithic pack; fully overlapping shards
    /// degrade toward scanning one subtree per shard.
    #[must_use]
    pub fn from_shards(shards: Vec<RTree<T>>) -> RTree<T> {
        let total: usize = shards.iter().map(RTree::len).sum();
        let mut items: Vec<(Rect, T)> = Vec::with_capacity(total);
        let mut overflow: Vec<usize> = Vec::new();
        let mut roots: Vec<Node> = Vec::new();
        for shard in shards {
            let base = items.len() as u32;
            if let Some(mut root) = shard.root {
                rebase_node(&mut root, base);
                roots.push(root);
            }
            overflow.extend(shard.overflow.iter().map(|&i| i + base as usize));
            items.extend(shard.items);
        }
        // Pack shard roots upward exactly like build_root's level loop.
        let mut level = roots;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node> = iter.by_ref().take(NODE_CAPACITY).collect();
                let mut bbox = children[0].bbox();
                for c in &children[1..] {
                    bbox = Rect::hull(bbox, c.bbox());
                }
                next.push(Node::Inner { bbox, children });
            }
            level = next;
        }
        RTree {
            items,
            root: level.pop(),
            overflow,
        }
    }

    /// Number of stored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the tree holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts an item into the overflow buffer. Queries see it
    /// immediately. When the buffer grows past a threshold the tree
    /// repacks itself automatically, so interleaved insert/query workloads
    /// (the router's occupancy checks) stay near O(log n) per query.
    pub fn insert(&mut self, bounds: Rect, value: T) {
        self.items.push((bounds, value));
        self.overflow.push(self.items.len() - 1);
        if self.overflow.len() >= 128 && self.overflow.len() * 4 >= self.items.len() {
            self.build_root();
        }
    }

    /// Inserts an item into the overflow buffer **without** the automatic
    /// repack of [`RTree::insert`]. Queries still see it (linear overflow
    /// scan), but a bulk fill of `n` items stays O(n) instead of paying
    /// repeated intermediate STR packs; call [`RTree::rebuild`] once when
    /// the fill is complete.
    pub fn defer_insert(&mut self, bounds: Rect, value: T) {
        self.items.push((bounds, value));
        self.overflow.push(self.items.len() - 1);
    }

    /// Repacks the tree so overflow items participate in the index.
    pub fn rebuild(&mut self) {
        self.build_root();
    }

    /// Iterates over all `(bounds, value)` pairs whose closed bounds touch
    /// the closed query window (shared edges count).
    pub fn query(&self, window: Rect) -> Query<'_, T> {
        let mut stack = Vec::new();
        if let Some(root) = &self.root {
            if root.bbox().touches(window) {
                stack.push(root);
            }
        }
        Query {
            tree: self,
            window,
            stack,
            leaf_items: Vec::new(),
            overflow_pos: 0,
        }
    }

    /// Visits every `(bounds, value)` pair whose closed bounds touch the
    /// closed query window, without allocating. The visitor returns `true`
    /// to continue; `visit` returns `false` iff the visitor stopped early.
    ///
    /// This is the zero-overhead form of [`RTree::query`] used by the DRC
    /// hot path: no iterator state, no heap-allocated traversal stack.
    pub fn visit<F: FnMut(Rect, &T) -> bool>(&self, window: Rect, f: &mut F) -> bool {
        if let Some(root) = &self.root {
            if !visit_node(root, &self.items, window, f) {
                return false;
            }
        }
        for &i in &self.overflow {
            let (r, t) = &self.items[i];
            if r.touches(window) && !f(*r, t) {
                return false;
            }
        }
        true
    }

    /// `true` when any stored item touches `window`.
    #[must_use]
    pub fn any_touching(&self, window: Rect) -> bool {
        !self.visit(window, &mut |_, _| false)
    }

    /// Removes all items, keeping allocated capacity where possible.
    pub fn clear(&mut self) {
        self.items.clear();
        self.overflow.clear();
        self.root = None;
    }

    /// Iterates over all stored items.
    pub fn iter(&self) -> std::slice::Iter<'_, (Rect, T)> {
        self.items.iter()
    }
}

/// Shifts every leaf item index by `base` — rebases a shard subtree into
/// the merged arena of [`RTree::from_shards`].
fn rebase_node(node: &mut Node, base: u32) {
    match node {
        Node::Leaf { items, .. } => {
            for i in items {
                *i += base;
            }
        }
        Node::Inner { children, .. } => {
            for c in children {
                rebase_node(c, base);
            }
        }
    }
}

/// Recursive allocation-free traversal behind [`RTree::visit`].
fn visit_node<T, F: FnMut(Rect, &T) -> bool>(
    node: &Node,
    arena: &[(Rect, T)],
    window: Rect,
    f: &mut F,
) -> bool {
    if !node.bbox().touches(window) {
        return true;
    }
    match node {
        Node::Leaf { items, .. } => {
            for &i in items {
                let (r, t) = &arena[i as usize];
                if r.touches(window) && !f(*r, t) {
                    return false;
                }
            }
        }
        Node::Inner { children, .. } => {
            for c in children {
                if !visit_node(c, arena, window, f) {
                    return false;
                }
            }
        }
    }
    true
}

impl<T> FromIterator<(Rect, T)> for RTree<T> {
    fn from_iter<I: IntoIterator<Item = (Rect, T)>>(iter: I) -> RTree<T> {
        RTree::bulk_load(iter.into_iter().collect())
    }
}

impl<T> Extend<(Rect, T)> for RTree<T> {
    fn extend<I: IntoIterator<Item = (Rect, T)>>(&mut self, iter: I) {
        for (r, t) in iter {
            self.insert(r, t);
        }
    }
}

impl<'a, T> IntoIterator for &'a RTree<T> {
    type Item = &'a (Rect, T);
    type IntoIter = std::slice::Iter<'a, (Rect, T)>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over query results; see [`RTree::query`].
#[derive(Debug)]
pub struct Query<'a, T> {
    tree: &'a RTree<T>,
    window: Rect,
    stack: Vec<&'a Node>,
    leaf_items: Vec<u32>,
    overflow_pos: usize,
}

impl<'a, T> Iterator for Query<'a, T> {
    type Item = (Rect, &'a T);

    fn next(&mut self) -> Option<(Rect, &'a T)> {
        loop {
            // Drain pending leaf items first.
            while let Some(i) = self.leaf_items.pop() {
                let (r, t) = &self.tree.items[i as usize];
                if r.touches(self.window) {
                    return Some((*r, t));
                }
            }
            if let Some(node) = self.stack.pop() {
                match node {
                    Node::Leaf { items, .. } => {
                        self.leaf_items.extend_from_slice(items);
                    }
                    Node::Inner { children, .. } => {
                        for c in children {
                            if c.bbox().touches(self.window) {
                                self.stack.push(c);
                            }
                        }
                    }
                }
                continue;
            }
            // Finally, scan the overflow buffer.
            while self.overflow_pos < self.tree.overflow.len() {
                let i = self.tree.overflow[self.overflow_pos];
                self.overflow_pos += 1;
                let (r, t) = &self.tree.items[i];
                if r.touches(self.window) {
                    return Some((*r, t));
                }
            }
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn grid_tree(n: i64) -> RTree<(i64, i64)> {
        let mut items = Vec::new();
        for i in 0..n {
            for j in 0..n {
                items.push((
                    Rect::new(i * 100, j * 100, i * 100 + 60, j * 100 + 60),
                    (i, j),
                ));
            }
        }
        RTree::bulk_load(items)
    }

    fn query_set(tree: &RTree<(i64, i64)>, w: Rect) -> Vec<(i64, i64)> {
        let mut v: Vec<(i64, i64)> = tree.query(w).map(|(_, &t)| t).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.query(Rect::new(0, 0, 100, 100)).count(), 0);
        assert!(!tree.any_touching(Rect::new(0, 0, 1, 1)));
    }

    #[test]
    fn point_query_hits_single_cell() {
        let tree = grid_tree(10);
        assert_eq!(tree.len(), 100);
        assert_eq!(
            query_set(&tree, Rect::new(130, 230, 140, 240)),
            vec![(1, 2)]
        );
    }

    #[test]
    fn window_query_matches_brute_force() {
        let tree = grid_tree(12);
        let windows = [
            Rect::new(0, 0, 1200, 1200),
            Rect::new(50, 50, 350, 150),
            Rect::new(-100, -100, -1, -1),
            Rect::new(60, 60, 100, 100), // touches (0,0) at corner
            Rect::new(555, 0, 565, 1200),
        ];
        for w in windows {
            let brute: Vec<(i64, i64)> = tree
                .iter()
                .filter(|(r, _)| r.touches(w))
                .map(|&(_, t)| t)
                .collect();
            let mut brute = brute;
            brute.sort_unstable();
            assert_eq!(query_set(&tree, w), brute, "window {w}");
        }
    }

    #[test]
    fn touching_semantics_inclusive() {
        let tree: RTree<u8> = std::iter::once((Rect::new(0, 0, 10, 10), 1u8)).collect();
        assert!(tree.any_touching(Rect::new(10, 10, 20, 20)));
        assert!(!tree.any_touching(Rect::new(11, 11, 20, 20)));
    }

    #[test]
    fn incremental_insert_visible_before_rebuild() {
        let mut tree = grid_tree(3);
        tree.insert(Rect::new(1000, 1000, 1010, 1010), (99, 99));
        assert!(tree.any_touching(Rect::new(1005, 1005, 1006, 1006)));
        tree.rebuild();
        assert!(tree.any_touching(Rect::new(1005, 1005, 1006, 1006)));
        assert_eq!(tree.len(), 10);
    }

    #[test]
    fn extend_and_collect() {
        let mut tree: RTree<u8> = RTree::new();
        tree.extend([(Rect::new(0, 0, 1, 1), 1u8), (Rect::new(5, 5, 6, 6), 2u8)]);
        assert_eq!(tree.len(), 2);
        assert!(tree.any_touching(Rect::centered_at(Point::new(5, 5), 1, 1)));
    }

    #[test]
    fn degenerate_item_rects_are_queryable() {
        // Zero-width track segments must still be found.
        let tree: RTree<u8> = vec![(Rect::new(5, 0, 5, 100), 1u8)].into_iter().collect();
        assert!(tree.any_touching(Rect::new(0, 50, 10, 60)));
        assert!(!tree.any_touching(Rect::new(6, 50, 10, 60)));
    }

    #[test]
    fn visit_matches_query_and_early_exits() {
        let mut tree = grid_tree(8);
        tree.insert(Rect::new(45, 45, 55, 55), (77, 77)); // lands in overflow
        let windows = [
            Rect::new(0, 0, 800, 800),
            Rect::new(50, 50, 350, 150),
            Rect::new(-100, -100, -1, -1),
        ];
        for w in windows {
            let mut via_visit: Vec<(i64, i64)> = Vec::new();
            assert!(tree.visit(w, &mut |_, &t| {
                via_visit.push(t);
                true
            }));
            via_visit.sort_unstable();
            let mut via_query: Vec<(i64, i64)> = tree.query(w).map(|(_, &t)| t).collect();
            via_query.sort_unstable();
            assert_eq!(via_visit, via_query, "window {w}");
        }
        // Early exit: stop after the first hit.
        let mut count = 0;
        let stopped = !tree.visit(Rect::new(0, 0, 800, 800), &mut |_, _| {
            count += 1;
            false
        });
        assert!(stopped);
        assert_eq!(count, 1);
    }

    #[test]
    fn clear_empties_but_stays_usable() {
        let mut tree = grid_tree(4);
        tree.insert(Rect::new(0, 0, 5, 5), (9, 9));
        tree.clear();
        assert!(tree.is_empty());
        assert!(!tree.any_touching(Rect::new(0, 0, 1000, 1000)));
        tree.insert(Rect::new(1, 1, 2, 2), (1, 1));
        tree.rebuild();
        assert!(tree.any_touching(Rect::new(0, 0, 3, 3)));
    }

    #[test]
    fn from_shards_matches_monolithic_queries() {
        // Three disjoint placement chunks plus one with overflow inserts.
        let mut all: Vec<(Rect, (i64, i64))> = Vec::new();
        let mut shards: Vec<RTree<(i64, i64)>> = Vec::new();
        for s in 0..3i64 {
            let mut items = Vec::new();
            for i in 0..7 {
                for j in 0..5 {
                    let r = Rect::new(
                        s * 1000 + i * 100,
                        j * 100,
                        s * 1000 + i * 100 + 60,
                        j * 100 + 60,
                    );
                    items.push((r, (s * 100 + i, j)));
                }
            }
            all.extend(items.iter().copied());
            shards.push(RTree::bulk_load(items));
        }
        let mut tail = RTree::new();
        tail.defer_insert(Rect::new(5000, 0, 5010, 10), (999, 0));
        all.push((Rect::new(5000, 0, 5010, 10), (999, 0)));
        shards.push(tail);
        shards.push(RTree::new()); // empty shard is fine
        let merged = RTree::from_shards(shards);
        assert_eq!(merged.len(), all.len());
        let windows = [
            Rect::new(-100, -100, 6000, 1000),
            Rect::new(950, 150, 1250, 450), // straddles a shard boundary
            Rect::new(4990, 0, 5050, 50),   // overflow-only region
            Rect::new(7000, 7000, 7001, 7001),
        ];
        for w in windows {
            let mut expect: Vec<(i64, i64)> = all
                .iter()
                .filter(|(r, _)| r.touches(w))
                .map(|&(_, t)| t)
                .collect();
            expect.sort_unstable();
            assert_eq!(query_set(&merged, w), expect, "window {w}");
        }
    }

    #[test]
    fn from_shards_structure_is_partition_deterministic() {
        // Same partition → same iteration order, regardless of who packs.
        let make = || {
            let shards: Vec<RTree<u32>> = (0..4)
                .map(|s| {
                    RTree::bulk_load(
                        (0..9)
                            .map(|i| {
                                (Rect::new(s * 50 + i, i, s * 50 + i + 3, i + 3), {
                                    (s * 9 + i) as u32
                                })
                            })
                            .collect(),
                    )
                })
                .collect();
            RTree::from_shards(shards)
        };
        let a = make();
        let b = make();
        let seq = |t: &RTree<u32>| -> Vec<u32> {
            let mut v = Vec::new();
            t.visit(Rect::new(-1000, -1000, 1000, 1000), &mut |_, &k| {
                v.push(k);
                true
            });
            v
        };
        assert_eq!(seq(&a), seq(&b));
    }

    #[test]
    fn large_random_matches_brute_force() {
        // Deterministic pseudo-random rectangles via an LCG.
        let mut state: u64 = 0x1234_5678;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let items: Vec<(Rect, usize)> = (0..500)
            .map(|k| {
                let x = rnd() % 10_000;
                let y = rnd() % 10_000;
                let w = rnd() % 300;
                let h = rnd() % 300;
                (Rect::new(x, y, x + w, y + h), k)
            })
            .collect();
        let tree = RTree::bulk_load(items.clone());
        for _ in 0..20 {
            let x = rnd() % 10_000;
            let y = rnd() % 10_000;
            let w = Rect::new(x, y, x + rnd() % 1000, y + rnd() % 1000);
            let mut expect: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.touches(w))
                .map(|&(_, k)| k)
                .collect();
            expect.sort_unstable();
            let mut got: Vec<usize> = tree.query(w).map(|(_, &k)| k).collect();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }
}
