//! Boundary extraction for unions of rectangles.
//!
//! The DRC min-step check walks the boundary of the *merged* metal formed
//! by a pin shape and a via enclosure (paper Fig. 3): short boundary edges
//! are "steps". This module traces the closed boundary loops of a union of
//! rectangles. The allocating [`union_boundaries`] / [`union_area`] entry
//! points are wrappers over the scratch-based [`visit_union_boundaries`] /
//! [`union_area_with`], which run allocation-free against a reusable
//! [`GridScratch`] — the form the DRC hot path uses.

use crate::scratch::GridScratch;
use crate::{Dbu, Point, Rect};

/// Traces the closed boundary loops of the union of `shapes`.
///
/// Each loop is a rectilinear vertex cycle (first vertex not repeated) with
/// collinear runs merged. Outer boundaries wind counter-clockwise, hole
/// boundaries clockwise. Degenerate input rectangles are ignored; returns
/// an empty vector for empty input.
///
/// ```
/// use pao_geom::{boundary::union_boundaries, Rect};
///
/// let loops = union_boundaries(&[Rect::new(0, 0, 10, 10)]);
/// assert_eq!(loops.len(), 1);
/// assert_eq!(loops[0].len(), 4);
/// ```
#[must_use]
pub fn union_boundaries(shapes: &[Rect]) -> Vec<Vec<Point>> {
    let mut ws = GridScratch::new();
    let mut loops = Vec::new();
    visit_union_boundaries(shapes, &mut ws, |loop_| {
        loops.push(loop_.to_vec());
        true
    });
    loops
}

/// Visits every closed boundary loop of the union of `shapes` without
/// allocating (after `ws` warms up).
///
/// The visitor receives each collinear-merged vertex cycle (≥ 4 vertices,
/// first vertex not repeated; outer loops CCW, holes CW) and returns
/// `true` to continue. Returns `false` iff the visitor stopped the walk
/// early. Loop order is deterministic (sorted by starting vertex).
pub fn visit_union_boundaries<F: FnMut(&[Point]) -> bool>(
    shapes: &[Rect],
    ws: &mut GridScratch,
    mut f: F,
) -> bool {
    let Some((nx, ny)) = ws.compress_and_fill(shapes) else {
        return true;
    };
    let cov = |covered: &[bool], i: isize, j: isize| -> bool {
        i >= 0
            && j >= 0
            && (i as usize) < nx
            && (j as usize) < ny
            && covered[i as usize * ny + j as usize]
    };

    // Directed unit boundary edges with interior on the LEFT of the travel
    // direction (outer loops CCW, holes CW).
    ws.edges.clear();
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            if !cov(&ws.covered, i, j) {
                continue;
            }
            let (x0, x1) = (ws.xs[i as usize], ws.xs[i as usize + 1]);
            let (y0, y1) = (ws.ys[j as usize], ws.ys[j as usize + 1]);
            if !cov(&ws.covered, i, j - 1) {
                // Bottom edge: travel east (interior above/left).
                ws.edges.push((Point::new(x0, y0), Point::new(x1, y0)));
            }
            if !cov(&ws.covered, i, j + 1) {
                // Top edge: travel west.
                ws.edges.push((Point::new(x1, y1), Point::new(x0, y1)));
            }
            if !cov(&ws.covered, i - 1, j) {
                // Left edge: travel south.
                ws.edges.push((Point::new(x0, y1), Point::new(x0, y0)));
            }
            if !cov(&ws.covered, i + 1, j) {
                // Right edge: travel north.
                ws.edges.push((Point::new(x1, y0), Point::new(x1, y1)));
            }
        }
    }
    ws.edges
        .sort_unstable_by_key(|&(a, b)| (a.x, a.y, b.x, b.y));
    ws.used.clear();
    ws.used.resize(ws.edges.len(), false);

    // Stitch directed edges into loops; at pinch vertices prefer the
    // leftmost turn so loops stay simple.
    let mut cursor = 0;
    while cursor < ws.edges.len() {
        if ws.used[cursor] {
            cursor += 1;
            continue;
        }
        let (start, first) = ws.edges[cursor];
        ws.used[cursor] = true;
        ws.path.clear();
        ws.path.push(start);
        let mut current = first;
        let mut din = first - start;
        while current != start {
            ws.path.push(current);
            // All outgoing edges from `current` form a contiguous sorted run.
            let lo = ws
                .edges
                .partition_point(|&(a, _)| (a.x, a.y) < (current.x, current.y));
            let hi = ws
                .edges
                .partition_point(|&(a, _)| (a.x, a.y) <= (current.x, current.y));
            // Choose the leftmost turn relative to the incoming direction
            // (cross product maximal) among unconsumed edges.
            let mut best: Option<(usize, Dbu)> = None;
            for k in lo..hi {
                if ws.used[k] {
                    continue;
                }
                let dout = ws.edges[k].1 - current;
                let cross = din.x * dout.y - din.y * dout.x;
                if best.is_none_or(|(_, c)| cross > c) {
                    best = Some((k, cross));
                }
            }
            // The directed edges of a valid merge form closed loops, so an
            // unconsumed outgoing edge always exists; if that invariant is
            // ever violated, abandon this (broken) loop instead of
            // panicking — its partial path is simply skipped below.
            let Some((k, _)) = best else {
                ws.path.clear();
                break;
            };
            ws.used[k] = true;
            let next = ws.edges[k].1;
            din = next - current;
            current = next;
        }
        merge_collinear_into(&ws.path, &mut ws.merged);
        if ws.merged.len() >= 4 && !f(&ws.merged) {
            return false;
        }
    }
    true
}

/// Merges collinear runs of `path` (a closed rectilinear cycle) into `out`.
fn merge_collinear_into(path: &[Point], out: &mut Vec<Point>) {
    out.clear();
    if path.len() < 3 {
        out.extend_from_slice(path);
        return;
    }
    for &p in path {
        while out.len() >= 2 {
            let a = out[out.len() - 2];
            let b = out[out.len() - 1];
            if (a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(p);
    }
    // Seam: first/last may be collinear with neighbours.
    while out.len() >= 3 {
        let n = out.len();
        let (a, b, c) = (out[n - 2], out[n - 1], out[0]);
        if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
            out.pop();
            continue;
        }
        let (a, b, c) = (out[n - 1], out[0], out[1]);
        if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
            out.remove(0);
            continue;
        }
        break;
    }
}

/// Edge lengths around a loop produced by [`union_boundaries`].
#[must_use]
pub fn edge_lengths(loop_: &[Point]) -> Vec<Dbu> {
    let mut out = Vec::with_capacity(loop_.len());
    edge_lengths_into(loop_, &mut out);
    out
}

/// Writes the edge lengths around `loop_` into `out` (cleared first).
pub fn edge_lengths_into(loop_: &[Point], out: &mut Vec<Dbu>) {
    out.clear();
    out.extend((0..loop_.len()).map(|i| {
        let a = loop_[i];
        let b = loop_[(i + 1) % loop_.len()];
        a.manhattan(b)
    }));
}

/// Total area enclosed by the union of `shapes`.
#[must_use]
pub fn union_area(shapes: &[Rect]) -> i128 {
    union_area_with(shapes, &mut GridScratch::new())
}

/// Total area enclosed by the union of `shapes`, computed against a
/// reusable [`GridScratch`] (allocation-free once warmed up).
pub fn union_area_with(shapes: &[Rect], ws: &mut GridScratch) -> i128 {
    let Some((nx, ny)) = ws.compress_and_fill(shapes) else {
        return 0;
    };
    let mut total: i128 = 0;
    for i in 0..nx {
        let w = i128::from(ws.xs[i + 1] - ws.xs[i]);
        for j in 0..ny {
            if ws.covered[i * ny + j] {
                total += w * i128::from(ws.ys[j + 1] - ws.ys[j]);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rect_one_loop() {
        let loops = union_boundaries(&[Rect::new(0, 0, 10, 5)]);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 4);
        let mut lens = edge_lengths(&loops[0]);
        lens.sort_unstable();
        assert_eq!(lens, vec![5, 5, 10, 10]);
    }

    #[test]
    fn abutting_rects_merge_into_one_loop() {
        let loops = union_boundaries(&[Rect::new(0, 0, 10, 10), Rect::new(10, 0, 20, 10)]);
        assert_eq!(loops.len(), 1);
        let mut lens = edge_lengths(&loops[0]);
        lens.sort_unstable();
        assert_eq!(lens, vec![10, 10, 20, 20]);
    }

    #[test]
    fn disjoint_rects_two_loops() {
        let loops = union_boundaries(&[Rect::new(0, 0, 5, 5), Rect::new(100, 100, 105, 105)]);
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn l_shape_has_six_vertices_with_step() {
        // 20×5 bar plus a 5×10 bump → L with two short edges.
        let loops = union_boundaries(&[Rect::new(0, 0, 20, 5), Rect::new(0, 0, 5, 10)]);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 6);
        let lens = edge_lengths(&loops[0]);
        assert_eq!(lens.iter().filter(|&&l| l == 5).count(), 3);
    }

    #[test]
    fn donut_has_outer_and_hole_loops() {
        // Frame of four rects around an empty center.
        let shapes = [
            Rect::new(0, 0, 30, 10),
            Rect::new(0, 20, 30, 30),
            Rect::new(0, 0, 10, 30),
            Rect::new(20, 0, 30, 30),
        ];
        let loops = union_boundaries(&shapes);
        assert_eq!(loops.len(), 2);
        let mut sizes: Vec<usize> = loops.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!(union_area(&shapes), 900 - 100);
    }

    #[test]
    fn union_area_overlapping() {
        assert_eq!(
            union_area(&[Rect::new(0, 0, 10, 10), Rect::new(5, 5, 15, 15)]),
            100 + 100 - 25
        );
        assert_eq!(union_area(&[]), 0);
        assert_eq!(union_area(&[Rect::new(0, 0, 0, 5)]), 0);
    }

    #[test]
    fn via_sticking_out_of_pin_creates_short_edges() {
        // Pin 60 tall, via enclosure 70 tall centered on it → 5-unit steps.
        let pin = Rect::new(0, 0, 400, 60);
        let enc = Rect::new(100, -5, 230, 65);
        let loops = union_boundaries(&[pin, enc]);
        assert_eq!(loops.len(), 1);
        let lens = edge_lengths(&loops[0]);
        assert_eq!(lens.iter().filter(|&&l| l == 5).count(), 4);
    }

    #[test]
    fn visitor_early_exit_stops_walk() {
        let shapes = [Rect::new(0, 0, 5, 5), Rect::new(100, 100, 105, 105)];
        let mut ws = GridScratch::new();
        let mut seen = 0;
        let completed = visit_union_boundaries(&shapes, &mut ws, |_| {
            seen += 1;
            false
        });
        assert!(!completed);
        assert_eq!(seen, 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let cases: Vec<Vec<Rect>> = vec![
            vec![Rect::new(0, 0, 10, 5)],
            vec![Rect::new(0, 0, 20, 5), Rect::new(0, 0, 5, 10)],
            vec![Rect::new(0, 0, 400, 60), Rect::new(100, -5, 230, 65)],
            vec![],
        ];
        let mut ws = GridScratch::new();
        for shapes in &cases {
            let mut loops = Vec::new();
            visit_union_boundaries(shapes, &mut ws, |l| {
                loops.push(l.to_vec());
                true
            });
            let fresh = union_boundaries(shapes);
            assert_eq!(loops.len(), fresh.len());
            let mut got: Vec<Vec<Dbu>> = loops
                .iter()
                .map(|l| {
                    let mut e = edge_lengths(l);
                    e.sort_unstable();
                    e
                })
                .collect();
            let mut want: Vec<Vec<Dbu>> = fresh
                .iter()
                .map(|l| {
                    let mut e = edge_lengths(l);
                    e.sort_unstable();
                    e
                })
                .collect();
            got.sort();
            want.sort();
            assert_eq!(got, want);
            assert_eq!(union_area_with(shapes, &mut ws), union_area(shapes));
        }
    }
}
