//! Boundary extraction for unions of rectangles.
//!
//! The DRC min-step check walks the boundary of the *merged* metal formed
//! by a pin shape and a via enclosure (paper Fig. 3): short boundary edges
//! are "steps". This module traces the closed boundary loops of a union of
//! rectangles.

use crate::{Dbu, Point, Rect};
use std::collections::HashMap;

/// Traces the closed boundary loops of the union of `shapes`.
///
/// Each loop is a rectilinear vertex cycle (first vertex not repeated) with
/// collinear runs merged. Outer boundaries wind counter-clockwise, hole
/// boundaries clockwise. Degenerate input rectangles are ignored; returns
/// an empty vector for empty input.
///
/// ```
/// use pao_geom::{boundary::union_boundaries, Rect};
///
/// let loops = union_boundaries(&[Rect::new(0, 0, 10, 10)]);
/// assert_eq!(loops.len(), 1);
/// assert_eq!(loops[0].len(), 4);
/// ```
#[must_use]
pub fn union_boundaries(shapes: &[Rect]) -> Vec<Vec<Point>> {
    let shapes: Vec<Rect> = shapes
        .iter()
        .copied()
        .filter(|r| !r.is_degenerate())
        .collect();
    if shapes.is_empty() {
        return Vec::new();
    }
    let mut xs: Vec<Dbu> = shapes.iter().flat_map(|r| [r.xlo(), r.xhi()]).collect();
    let mut ys: Vec<Dbu> = shapes.iter().flat_map(|r| [r.ylo(), r.yhi()]).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let nx = xs.len() - 1;
    let ny = ys.len() - 1;
    let mut covered = vec![vec![false; ny]; nx];
    for r in &shapes {
        let i0 = xs.binary_search(&r.xlo()).expect("compressed");
        let i1 = xs.binary_search(&r.xhi()).expect("compressed");
        let j0 = ys.binary_search(&r.ylo()).expect("compressed");
        let j1 = ys.binary_search(&r.yhi()).expect("compressed");
        for col in covered.iter_mut().take(i1).skip(i0) {
            for cell in col.iter_mut().take(j1).skip(j0) {
                *cell = true;
            }
        }
    }
    let cov = |i: isize, j: isize| -> bool {
        i >= 0
            && j >= 0
            && (i as usize) < nx
            && (j as usize) < ny
            && covered[i as usize][j as usize]
    };

    // Directed unit boundary edges with interior on the LEFT of the travel
    // direction (outer loops CCW, holes CW).
    let mut outgoing: HashMap<Point, Vec<Point>> = HashMap::new();
    let mut add = |a: Point, b: Point| outgoing.entry(a).or_default().push(b);
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            if !cov(i, j) {
                continue;
            }
            let (x0, x1) = (xs[i as usize], xs[i as usize + 1]);
            let (y0, y1) = (ys[j as usize], ys[j as usize + 1]);
            if !cov(i, j - 1) {
                // Bottom edge: travel east (interior above/left).
                add(Point::new(x0, y0), Point::new(x1, y0));
            }
            if !cov(i, j + 1) {
                // Top edge: travel west.
                add(Point::new(x1, y1), Point::new(x0, y1));
            }
            if !cov(i - 1, j) {
                // Left edge: travel south (interior to the east/left of
                // southward? interior is right of south; use north travel).
                add(Point::new(x0, y1), Point::new(x0, y0));
            }
            if !cov(i + 1, j) {
                // Right edge: travel north.
                add(Point::new(x1, y0), Point::new(x1, y1));
            }
        }
    }

    // Stitch directed edges into loops; at pinch vertices prefer the
    // leftmost turn so loops stay simple.
    let mut loops = Vec::new();
    while let Some((&start, _)) = outgoing.iter().find(|(_, v)| !v.is_empty()) {
        let mut path = vec![start];
        let mut current = start;
        let mut incoming_dir: Option<Point> = None;
        loop {
            let nexts = outgoing
                .get_mut(&current)
                .expect("boundary edges form loops");
            let next = match (nexts.len(), incoming_dir) {
                (1, _) | (_, None) => nexts.pop().expect("nonempty"),
                (_, Some(din)) => {
                    // Choose the leftmost turn relative to the incoming
                    // direction (cross product maximal).
                    let best = nexts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &n)| {
                            let dout = n - current;
                            din.x * dout.y - din.y * dout.x
                        })
                        .map(|(k, _)| k)
                        .expect("nonempty");
                    nexts.swap_remove(best)
                }
            };
            incoming_dir = Some(next - current);
            if next == start {
                break;
            }
            path.push(next);
            current = next;
        }
        // Merge collinear runs.
        let merged = merge_collinear(path);
        if merged.len() >= 4 {
            loops.push(merged);
        }
    }
    loops
}

fn merge_collinear(mut path: Vec<Point>) -> Vec<Point> {
    if path.len() < 3 {
        return path;
    }
    let mut out: Vec<Point> = Vec::with_capacity(path.len());
    for p in path.drain(..) {
        while out.len() >= 2 {
            let a = out[out.len() - 2];
            let b = out[out.len() - 1];
            if (a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(p);
    }
    // Seam: first/last may be collinear with neighbours.
    while out.len() >= 3 {
        let n = out.len();
        let (a, b, c) = (out[n - 2], out[n - 1], out[0]);
        if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
            out.pop();
            continue;
        }
        let (a, b, c) = (out[n - 1], out[0], out[1]);
        if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
            out.remove(0);
            continue;
        }
        break;
    }
    out
}

/// Edge lengths around a loop produced by [`union_boundaries`].
#[must_use]
pub fn edge_lengths(loop_: &[Point]) -> Vec<Dbu> {
    (0..loop_.len())
        .map(|i| {
            let a = loop_[i];
            let b = loop_[(i + 1) % loop_.len()];
            a.manhattan(b)
        })
        .collect()
}

/// Total area enclosed by the union of `shapes`.
#[must_use]
pub fn union_area(shapes: &[Rect]) -> i128 {
    let shapes: Vec<Rect> = shapes
        .iter()
        .copied()
        .filter(|r| !r.is_degenerate())
        .collect();
    if shapes.is_empty() {
        return 0;
    }
    let mut xs: Vec<Dbu> = shapes.iter().flat_map(|r| [r.xlo(), r.xhi()]).collect();
    let mut ys: Vec<Dbu> = shapes.iter().flat_map(|r| [r.ylo(), r.yhi()]).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut total: i128 = 0;
    for i in 0..xs.len() - 1 {
        for j in 0..ys.len() - 1 {
            let cell = Rect::new(xs[i], ys[j], xs[i + 1], ys[j + 1]);
            if shapes.iter().any(|r| r.contains_rect(cell)) {
                total += i128::from(xs[i + 1] - xs[i]) * i128::from(ys[j + 1] - ys[j]);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rect_one_loop() {
        let loops = union_boundaries(&[Rect::new(0, 0, 10, 5)]);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 4);
        let mut lens = edge_lengths(&loops[0]);
        lens.sort_unstable();
        assert_eq!(lens, vec![5, 5, 10, 10]);
    }

    #[test]
    fn abutting_rects_merge_into_one_loop() {
        let loops = union_boundaries(&[Rect::new(0, 0, 10, 10), Rect::new(10, 0, 20, 10)]);
        assert_eq!(loops.len(), 1);
        let mut lens = edge_lengths(&loops[0]);
        lens.sort_unstable();
        assert_eq!(lens, vec![10, 10, 20, 20]);
    }

    #[test]
    fn disjoint_rects_two_loops() {
        let loops = union_boundaries(&[Rect::new(0, 0, 5, 5), Rect::new(100, 100, 105, 105)]);
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn l_shape_has_six_vertices_with_step() {
        // 20×5 bar plus a 5×10 bump → L with two short edges.
        let loops = union_boundaries(&[Rect::new(0, 0, 20, 5), Rect::new(0, 0, 5, 10)]);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 6);
        let lens = edge_lengths(&loops[0]);
        assert_eq!(lens.iter().filter(|&&l| l == 5).count(), 3);
    }

    #[test]
    fn donut_has_outer_and_hole_loops() {
        // Frame of four rects around an empty center.
        let shapes = [
            Rect::new(0, 0, 30, 10),
            Rect::new(0, 20, 30, 30),
            Rect::new(0, 0, 10, 30),
            Rect::new(20, 0, 30, 30),
        ];
        let loops = union_boundaries(&shapes);
        assert_eq!(loops.len(), 2);
        let mut sizes: Vec<usize> = loops.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!(union_area(&shapes), 900 - 100);
    }

    #[test]
    fn union_area_overlapping() {
        assert_eq!(
            union_area(&[Rect::new(0, 0, 10, 10), Rect::new(5, 5, 15, 15)]),
            100 + 100 - 25
        );
        assert_eq!(union_area(&[]), 0);
        assert_eq!(union_area(&[Rect::new(0, 0, 0, 5)]), 0);
    }

    #[test]
    fn via_sticking_out_of_pin_creates_short_edges() {
        // Pin 60 tall, via enclosure 70 tall centered on it → 5-unit steps.
        let pin = Rect::new(0, 0, 400, 60);
        let enc = Rect::new(100, -5, 230, 65);
        let loops = union_boundaries(&[pin, enc]);
        assert_eq!(loops.len(), 1);
        let lens = edge_lengths(&loops[0]);
        assert_eq!(lens.iter().filter(|&&l| l == 5).count(), 4);
    }
}
