//! DEF placement orientations.

use std::fmt;
use std::str::FromStr;

/// The eight DEF placement orientations.
///
/// Named after DEF keywords: `N` (R0), `S` (R180), `W` (R90), `E` (R270),
/// and their y-axis-mirrored variants `FN` (MY), `FS` (MX), `FW` (MX90),
/// `FE` (MY90). The LEF/DEF reference defines these as the rotation applied
/// to the cell master before placing its (new) lower-left corner at the
/// placement point.
///
/// ```
/// use pao_geom::Orient;
/// assert_eq!("FS".parse::<Orient>().unwrap(), Orient::FS);
/// assert_eq!(Orient::N.to_string(), "N");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Orient {
    /// R0 — no rotation.
    #[default]
    N,
    /// R180.
    S,
    /// R90 (counter-clockwise).
    W,
    /// R270.
    E,
    /// MY — mirrored about the y axis.
    FN,
    /// MX — mirrored about the x axis.
    FS,
    /// MX90.
    FW,
    /// MY90.
    FE,
}

/// Error returned when parsing an unknown orientation keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOrientError(pub String);

impl fmt::Display for ParseOrientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown orientation keyword `{}`", self.0)
    }
}

impl std::error::Error for ParseOrientError {}

impl Orient {
    /// All eight orientations, in DEF enumeration order.
    pub const ALL: [Orient; 8] = [
        Orient::N,
        Orient::W,
        Orient::S,
        Orient::E,
        Orient::FN,
        Orient::FW,
        Orient::FS,
        Orient::FE,
    ];

    /// The four orientations that preserve row alignment for single-height
    /// standard cells (no 90° rotation).
    pub const ROW_ORIENTS: [Orient; 4] = [Orient::N, Orient::S, Orient::FN, Orient::FS];

    /// `true` when the orientation involves a 90°/270° rotation (swaps the
    /// cell's width and height).
    #[must_use]
    pub fn swaps_axes(self) -> bool {
        matches!(self, Orient::W | Orient::E | Orient::FW | Orient::FE)
    }

    /// `true` when the orientation includes a mirror (changes handedness).
    #[must_use]
    pub fn is_mirrored(self) -> bool {
        matches!(self, Orient::FN | Orient::FS | Orient::FW | Orient::FE)
    }

    /// The LEF/DEF keyword for this orientation.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Orient::N => "N",
            Orient::S => "S",
            Orient::W => "W",
            Orient::E => "E",
            Orient::FN => "FN",
            Orient::FS => "FS",
            Orient::FW => "FW",
            Orient::FE => "FE",
        }
    }
}

impl FromStr for Orient {
    type Err = ParseOrientError;

    fn from_str(s: &str) -> Result<Orient, ParseOrientError> {
        Ok(match s {
            "N" | "R0" => Orient::N,
            "S" | "R180" => Orient::S,
            "W" | "R90" => Orient::W,
            "E" | "R270" => Orient::E,
            "FN" | "MY" => Orient::FN,
            "FS" | "MX" => Orient::FS,
            "FW" | "MX90" => Orient::FW,
            "FE" | "MY90" => Orient::FE,
            other => return Err(ParseOrientError(other.to_owned())),
        })
    }
}

impl fmt::Display for Orient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_def_and_lef_spellings() {
        assert_eq!("N".parse::<Orient>().unwrap(), Orient::N);
        assert_eq!("R180".parse::<Orient>().unwrap(), Orient::S);
        assert_eq!("MX".parse::<Orient>().unwrap(), Orient::FS);
        assert_eq!("MY".parse::<Orient>().unwrap(), Orient::FN);
        assert!("Q".parse::<Orient>().is_err());
    }

    #[test]
    fn parse_error_message() {
        let err = "BOGUS".parse::<Orient>().unwrap_err();
        assert_eq!(err.to_string(), "unknown orientation keyword `BOGUS`");
    }

    #[test]
    fn axis_swap_classification() {
        for o in Orient::ALL {
            assert_eq!(
                o.swaps_axes(),
                matches!(o, Orient::W | Orient::E | Orient::FW | Orient::FE)
            );
        }
        for o in Orient::ROW_ORIENTS {
            assert!(!o.swaps_axes());
        }
    }

    #[test]
    fn roundtrip_display_parse() {
        for o in Orient::ALL {
            assert_eq!(o.as_str().parse::<Orient>().unwrap(), o);
        }
    }
}
