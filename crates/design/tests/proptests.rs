//! Property-based tests: DEF round-trips and track-pattern invariants.

use pao_design::{def, Component, Design, IoPin, Net, NetPin, Row, TrackPattern};
use pao_geom::{Dir, Orient, Point, Rect};
use pao_ptest::{check, Rng};
use pao_tech::{Layer, LayerId, Macro, Tech};

fn tech() -> Tech {
    let mut t = Tech::new(1000);
    t.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 70));
    t.add_layer(Layer::cut("V1", 50, 100));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    t.add_site(pao_tech::Site::new("core", 380, 1400));
    let mut m = Macro::new("CELL", 760, 1400);
    m.pins.push(pao_tech::Pin::new(
        "A",
        pao_tech::PinDir::Input,
        vec![pao_tech::Port::rects(
            LayerId(0),
            vec![Rect::new(100, 200, 200, 800)],
        )],
    ));
    m.pins.push(pao_tech::Pin::new(
        "Y",
        pao_tech::PinDir::Output,
        vec![pao_tech::Port::rects(
            LayerId(0),
            vec![Rect::new(500, 200, 600, 800)],
        )],
    ));
    t.add_macro(m);
    t
}

fn arb_design(rng: &mut Rng) -> Design {
    let n_placements = rng.gen_range(1usize..20);
    let placements: Vec<(i64, i64, Orient)> = (0..n_placements)
        .map(|_| {
            (
                rng.gen_range(0i64..50),
                rng.gen_range(0i64..20),
                *rng.pick(&Orient::ALL),
            )
        })
        .collect();
    let n_ios = rng.gen_range(0usize..5);
    let ios: Vec<(i64, i64)> = (0..n_ios)
        .map(|_| (rng.gen_range(0i64..20_000), rng.gen_range(0i64..20_000)))
        .collect();
    let track_count = rng.gen_range(1u32..200);
    let track_start = rng.gen_range(1i64..500);

    let mut d = Design::new("prop", Rect::new(0, 0, 40_000, 40_000));
    d.dbu_per_micron = 1000;
    d.rows.push(Row::new(
        "r0",
        "core",
        Point::new(0, 0),
        Orient::N,
        100,
        380,
        1400,
    ));
    d.tracks.push(TrackPattern::new(
        Dir::Horizontal,
        track_start,
        200,
        track_count,
        vec![LayerId(0)],
    ));
    d.tracks.push(TrackPattern::new(
        Dir::Vertical,
        track_start / 2 + 1,
        200,
        track_count,
        vec![LayerId(2)],
    ));
    let mut comps = Vec::new();
    for (i, (cx, cy, o)) in placements.into_iter().enumerate() {
        comps.push(d.add_component(Component::new(
            format!("u{i}"),
            "CELL",
            Point::new(cx * 760, cy * 1400),
            o,
        )));
    }
    let mut io_indices = Vec::new();
    for (i, (x, y)) in ios.into_iter().enumerate() {
        io_indices.push(d.add_io_pin(IoPin::new(
            format!("io{i}"),
            format!("n{i}"),
            LayerId(2),
            Rect::new(-50, -50, 50, 50),
            Point::new(x, y),
            Orient::N,
        )));
    }
    // Simple nets: chain pairs of components, attach IOs round-robin.
    for (ni, pair) in comps.chunks(2).enumerate() {
        let mut n = Net::new(format!("n{ni}"));
        n.pins.push(NetPin::Comp {
            comp: pair[0],
            pin: "Y".into(),
        });
        if let Some(&b) = pair.get(1) {
            n.pins.push(NetPin::Comp {
                comp: b,
                pin: "A".into(),
            });
        }
        if let Some(&io) = io_indices.get(ni) {
            n.pins.push(NetPin::Io { index: io });
        }
        if n.degree() >= 2 {
            d.add_net(n);
        }
    }
    d
}

#[test]
fn def_roundtrip_preserves_database() {
    check("def_roundtrip_preserves_database", 64, |rng| {
        let d = arb_design(rng);
        let t = tech();
        let text = def::write_def(&d, &t);
        let d2 = def::parse_def(&text, &t).expect("own DEF parses");
        assert_eq!(&d.name, &d2.name);
        assert_eq!(d.die_area, d2.die_area);
        assert_eq!(&d.rows, &d2.rows);
        assert_eq!(&d.tracks, &d2.tracks);
        assert_eq!(d.components(), d2.components());
        assert_eq!(d.io_pins(), d2.io_pins());
        assert_eq!(d.nets(), d2.nets());
    });
}

#[test]
fn track_phase_is_translation_invariant() {
    check("track_phase_is_translation_invariant", 128, |rng| {
        let start = rng.gen_range(-1000i64..1000);
        let step = rng.gen_range(1i64..1000);
        let c = rng.gen_range(-100_000i64..100_000);
        let periods = rng.gen_range(-50i64..50);
        let p = TrackPattern::new(Dir::Horizontal, start, step, 10, vec![]);
        // Shifting by whole periods never changes the phase.
        assert_eq!(p.phase(c), p.phase(c + periods * step));
        // Phases are always in [0, step).
        let ph = p.phase(c);
        assert!((0..step).contains(&ph));
    });
}

#[test]
fn coords_in_matches_filter() {
    check("coords_in_matches_filter", 128, |rng| {
        let start = rng.gen_range(0i64..500);
        let step = rng.gen_range(1i64..400);
        let count = rng.gen_range(1u32..200);
        let lo = rng.gen_range(-1000i64..50_000);
        let span = rng.gen_range(0i64..50_000);
        let p = TrackPattern::new(Dir::Vertical, start, step, count, vec![]);
        let hi = lo + span;
        let got = p.coords_in(lo, hi);
        let expect: Vec<i64> = p.coords().filter(|&c| c >= lo && c <= hi).collect();
        assert_eq!(got, expect);
    });
}
