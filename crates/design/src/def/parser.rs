//! The DEF parser.
//!
//! Parsing streams: the reader works line-by-line over any
//! [`BufRead`](std::io::Read) source with one reusable line buffer and a
//! token table of byte ranges into it, so peak memory is the finished
//! [`Design`], not the DEF text plus a `Vec` of per-token `String`s. Names
//! intern directly to [`Symbol`]s from the in-place slices, and the
//! `COMPONENTS` / `PINS` / `NETS` section count headers pre-size the
//! design tables before the first entry lands.

use crate::component::Component;
use crate::design::Design;
use crate::iopin::IoPin;
use crate::net::{Net, NetPin};
use crate::row::Row;
use crate::tracks::TrackPattern;
use pao_geom::{Dbu, Dir, Orient, Point, Rect};
use pao_tech::{Symbol, Tech};
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Error produced while parsing DEF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line where the error was detected (0 = end of input).
    pub line: u32,
}

impl ParseDefError {
    fn new(message: impl Into<String>, line: u32) -> ParseDefError {
        ParseDefError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDefError {}

type Result<T> = std::result::Result<T, ParseDefError>;

/// Upper bound accepted from a section count header when pre-sizing
/// tables, so a corrupt header cannot trigger a huge up-front
/// allocation. Real entries beyond this still parse; the tables just
/// grow normally.
const MAX_RESERVE: usize = 1 << 24;

struct DefParser<'t, R: BufRead> {
    src: R,
    /// Current line text (comment-stripped), reused across lines.
    buf: String,
    /// Byte ranges of the current line's tokens in `buf`.
    toks: Vec<(u32, u32)>,
    /// Next unconsumed token index in `toks`.
    ti: usize,
    /// 1-based line number of `buf`.
    line_no: u32,
    /// Line of the most recently consumed token (error reporting).
    last_line: u32,
    eof: bool,
    tech: &'t Tech,
    design: Design,
}

impl<'t, R: BufRead> DefParser<'t, R> {
    fn new(src: R, tech: &'t Tech) -> DefParser<'t, R> {
        DefParser {
            src,
            buf: String::new(),
            toks: Vec::new(),
            ti: 0,
            line_no: 0,
            last_line: 0,
            eof: false,
            tech,
            design: Design::new("", Rect::new(0, 0, 0, 0)),
        }
    }

    /// Ensures at least one unconsumed token is available, pulling lines
    /// from the reader as needed. Returns `false` at end of input.
    fn fill(&mut self) -> Result<bool> {
        while self.ti >= self.toks.len() {
            if self.eof {
                return Ok(false);
            }
            self.buf.clear();
            self.toks.clear();
            self.ti = 0;
            let n = self
                .src
                .read_line(&mut self.buf)
                .map_err(|e| ParseDefError::new(format!("read error: {e}"), self.line_no))?;
            if n == 0 {
                self.eof = true;
                return Ok(false);
            }
            self.line_no += 1;
            tokenize_line(&self.buf, &mut self.toks);
        }
        Ok(true)
    }

    /// The next token without consuming it, or `None` at end of input.
    fn peek(&mut self) -> Result<Option<&str>> {
        if !self.fill()? {
            return Ok(None);
        }
        let (a, b) = self.toks[self.ti];
        Ok(Some(&self.buf[a as usize..b as usize]))
    }

    /// Copies the next token into `out` without consuming. Returns
    /// `false` at end of input.
    fn peek_into(&mut self, out: &mut String) -> Result<bool> {
        out.clear();
        match self.peek()? {
            Some(t) => {
                out.push_str(t);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Consumes the current token (which `fill` guaranteed to exist).
    fn bump(&mut self) {
        self.ti += 1;
        self.last_line = self.line_no;
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseDefError::new(msg, self.last_line))
    }

    /// Consumes and returns the next token as an owned string.
    fn next_string(&mut self) -> Result<String> {
        if !self.fill()? {
            return Err(ParseDefError::new("unexpected end of input", 0));
        }
        let (a, b) = self.toks[self.ti];
        let s = self.buf[a as usize..b as usize].to_owned();
        self.bump();
        Ok(s)
    }

    /// Consumes and interns the next token.
    fn next_sym(&mut self) -> Result<Symbol> {
        if !self.fill()? {
            return Err(ParseDefError::new("unexpected end of input", 0));
        }
        let (a, b) = self.toks[self.ti];
        let s = Symbol::intern(&self.buf[a as usize..b as usize]);
        self.bump();
        Ok(s)
    }

    /// `true` and consume when the next token equals `kw`.
    fn eat(&mut self, kw: &str) -> Result<bool> {
        if self.peek()? == Some(kw) {
            self.bump();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect(&mut self, kw: &str) -> Result<()> {
        let t = self.next_string()?;
        if t == kw {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{t}`"))
        }
    }

    /// Consumes tokens up to and including the next `;`.
    fn skip_statement(&mut self) -> Result<()> {
        loop {
            if !self.fill()? {
                return Ok(());
            }
            let (a, b) = self.toks[self.ti];
            let done = &self.buf[a as usize..b as usize] == ";";
            self.bump();
            if done {
                return Ok(());
            }
        }
    }

    /// Consumes tokens until the next token is one of `stops` (left
    /// unconsumed) or input ends.
    fn skip_until(&mut self, stops: &[&str]) -> Result<()> {
        loop {
            match self.peek()? {
                None => return Ok(()),
                Some(t) if stops.contains(&t) => return Ok(()),
                Some(_) => self.bump(),
            }
        }
    }

    fn int(&mut self) -> Result<Dbu> {
        if !self.fill()? {
            return Err(ParseDefError::new("unexpected end of input", 0));
        }
        let (a, b) = self.toks[self.ti];
        let t = &self.buf[a as usize..b as usize];
        match t.parse::<Dbu>() {
            Ok(v) => {
                self.bump();
                Ok(v)
            }
            Err(_) => {
                let msg = format!("expected an integer, found `{t}`");
                self.bump();
                self.err(msg)
            }
        }
    }

    /// Parses `( x y )`.
    fn point(&mut self) -> Result<Point> {
        self.expect("(")?;
        let x = self.int()?;
        let y = self.int()?;
        self.expect(")")?;
        Ok(Point::new(x, y))
    }

    fn orient(&mut self) -> Result<Orient> {
        let t = self.next_string()?;
        t.parse::<Orient>()
            .map_err(|e| ParseDefError::new(e.to_string(), self.last_line))
    }

    fn parse(mut self) -> Result<Design> {
        let mut kw = String::new();
        while self.peek_into(&mut kw)? {
            match kw.as_str() {
                "DESIGN" => {
                    self.bump();
                    self.design.name = self.next_string()?;
                    self.expect(";")?;
                }
                "UNITS" => {
                    self.bump();
                    self.expect("DISTANCE")?;
                    self.expect("MICRONS")?;
                    self.design.dbu_per_micron = self.int()?;
                    self.expect(";")?;
                }
                "DIEAREA" => {
                    self.bump();
                    let a = self.point()?;
                    let b = self.point()?;
                    self.expect(";")?;
                    self.design.die_area = Rect::from_points(a, b);
                }
                "ROW" => self.parse_row()?,
                "TRACKS" => self.parse_tracks()?,
                "COMPONENTS" => self.parse_components()?,
                "PINS" => self.parse_pins()?,
                "NETS" => self.parse_nets()?,
                "END" => {
                    self.bump();
                    let what = self.next_string().unwrap_or_default();
                    if what == "DESIGN" {
                        break;
                    }
                    // END of a skipped section — continue.
                }
                _ => {
                    self.bump();
                    self.skip_statement()?;
                }
            }
        }
        Ok(self.design)
    }

    fn parse_row(&mut self) -> Result<()> {
        self.expect("ROW")?;
        let name = self.next_string()?;
        let site = self.next_string()?;
        let x = self.int()?;
        let y = self.int()?;
        let orient = self.orient()?;
        self.expect("DO")?;
        let nx = self.int()?;
        self.expect("BY")?;
        let ny = self.int()?;
        self.expect("STEP")?;
        let sx = self.int()?;
        let _sy = self.int()?;
        self.expect(";")?;
        if ny != 1 {
            return self.err("only DO n BY 1 rows are supported");
        }
        let height = self.tech.site_by_name(&site).map_or(0, |s| s.height).max(1);
        self.design.rows.push(Row::new(
            name,
            site,
            Point::new(x, y),
            orient,
            nx as u32,
            sx.max(1),
            height,
        ));
        Ok(())
    }

    fn parse_tracks(&mut self) -> Result<()> {
        self.expect("TRACKS")?;
        let axis = self.next_string()?;
        // DEF `TRACKS X` lists x coordinates → vertical wires run on them.
        let dir = match axis.as_str() {
            "X" => Dir::Vertical,
            "Y" => Dir::Horizontal,
            other => return self.err(format!("expected TRACKS X or Y, found `{other}`")),
        };
        let start = self.int()?;
        self.expect("DO")?;
        let count = self.int()?;
        self.expect("STEP")?;
        let step = self.int()?;
        let mut layers = Vec::new();
        if self.eat("LAYER")? {
            loop {
                match self.peek()? {
                    Some(";") => break,
                    Some(_) => {
                        let lname = self.next_sym()?;
                        match self.tech.layer_id_sym(lname) {
                            Some(id) => layers.push(id),
                            None => return self.err(format!("unknown layer `{lname}` in TRACKS")),
                        }
                    }
                    None => return self.err("unterminated TRACKS"),
                }
            }
        }
        self.expect(";")?;
        self.design.tracks.push(TrackPattern::new(
            dir,
            start,
            step.max(1),
            count as u32,
            layers,
        ));
        Ok(())
    }

    fn parse_components(&mut self) -> Result<()> {
        self.expect("COMPONENTS")?;
        let count = self.int()?;
        self.expect(";")?;
        if count > 0 {
            self.design
                .reserve_components((count as usize).min(MAX_RESERVE));
        }
        let mut kw = String::new();
        while self.eat("-")? {
            let name = self.next_sym()?;
            let master = self.next_sym()?;
            let mut comp = Component::new(name, master, Point::ORIGIN, Orient::N);
            comp.is_placed = false; // until a PLACED/FIXED clause appears
            while self.eat("+")? {
                if !self.peek_into(&mut kw)? {
                    return Err(ParseDefError::new("unexpected end of input", 0));
                }
                self.bump();
                match kw.as_str() {
                    "PLACED" | "FIXED" => {
                        comp.location = self.point()?;
                        comp.orient = self.orient()?;
                        comp.is_fixed = kw == "FIXED";
                        comp.is_placed = true;
                    }
                    "UNPLACED" => {
                        comp.is_placed = false;
                    }
                    _ => {
                        // SOURCE, WEIGHT, … skip until the next +, - or ;.
                        self.skip_until(&["+", "-", ";"])?;
                    }
                }
            }
            self.expect(";")?;
            self.design.add_component(comp);
        }
        self.expect("END")?;
        self.expect("COMPONENTS")?;
        Ok(())
    }

    fn parse_pins(&mut self) -> Result<()> {
        self.expect("PINS")?;
        let count = self.int()?;
        self.expect(";")?;
        if count > 0 {
            self.design
                .reserve_io_pins((count as usize).min(MAX_RESERVE));
        }
        let mut kw = String::new();
        while self.eat("-")? {
            let name = self.next_sym()?;
            let mut net = name;
            let mut layer = None;
            let mut rect = Rect::new(0, 0, 0, 0);
            let mut location = Point::ORIGIN;
            let mut orient = Orient::N;
            let mut dir = pao_tech::PinDir::Input;
            let mut use_ = pao_tech::PinUse::Signal;
            while self.eat("+")? {
                if !self.peek_into(&mut kw)? {
                    return Err(ParseDefError::new("unexpected end of input", 0));
                }
                self.bump();
                match kw.as_str() {
                    "NET" => net = self.next_sym()?,
                    "DIRECTION" => {
                        let d = self.next_string()?;
                        dir = d
                            .parse()
                            .map_err(|e: String| ParseDefError::new(e, self.last_line))?;
                    }
                    "USE" => {
                        let u = self.next_string()?;
                        use_ = u
                            .parse()
                            .map_err(|e: String| ParseDefError::new(e, self.last_line))?;
                    }
                    "LAYER" => {
                        let lname = self.next_sym()?;
                        layer = match self.tech.layer_id_sym(lname) {
                            Some(id) => Some(id),
                            None => return self.err(format!("unknown layer `{lname}` in PINS")),
                        };
                        let a = self.point()?;
                        let b = self.point()?;
                        rect = Rect::from_points(a, b);
                    }
                    "PLACED" | "FIXED" => {
                        location = self.point()?;
                        orient = self.orient()?;
                    }
                    _ => {
                        self.skip_until(&["+", "-", ";"])?;
                    }
                }
            }
            self.expect(";")?;
            let Some(layer) = layer else {
                return self.err(format!("pin `{name}` has no LAYER geometry"));
            };
            let mut pin = IoPin::new(name, net, layer, rect, location, orient);
            pin.dir = dir;
            pin.use_ = use_;
            self.design.add_io_pin(pin);
        }
        self.expect("END")?;
        self.expect("PINS")?;
        Ok(())
    }

    fn parse_nets(&mut self) -> Result<()> {
        self.expect("NETS")?;
        let count = self.int()?;
        self.expect(";")?;
        if count > 0 {
            self.design.reserve_nets((count as usize).min(MAX_RESERVE));
        }
        // I/O pins were all declared by the time NETS opens; one map
        // replaces the per-terminal linear scan of the pin list.
        let io_index: HashMap<Symbol, u32> = self
            .design
            .io_pins()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name, i as u32))
            .collect();
        while self.eat("-")? {
            let name = self.next_sym()?;
            let mut net = Net::new(name);
            loop {
                if self.eat("(")? {
                    let a = self.next_sym()?;
                    let b = self.next_sym()?;
                    self.expect(")")?;
                    if a == "PIN" {
                        let idx = io_index.get(&b).copied().ok_or_else(|| {
                            ParseDefError::new(format!("unknown design pin `{b}`"), self.last_line)
                        })?;
                        net.pins.push(NetPin::Io { index: idx });
                    } else {
                        let comp = self.design.component_by_symbol(a).ok_or_else(|| {
                            ParseDefError::new(
                                format!("unknown component `{a}` in net `{name}`"),
                                self.last_line,
                            )
                        })?;
                        net.pins.push(NetPin::Comp { comp, pin: b });
                    }
                } else if self.eat(";")? {
                    break;
                } else if self.eat("+")? {
                    // USE / ROUTED / … — DEF places all terminals before
                    // the first `+` clause, so everything up to the `;`
                    // (including ROUTED coordinates in parentheses) is
                    // skipped.
                    self.skip_until(&[";"])?;
                } else {
                    return self.err("expected `(`, `+` or `;` in NETS entry");
                }
            }
            self.design.add_net(net);
        }
        self.expect("END")?;
        self.expect("NETS")?;
        Ok(())
    }
}

/// Tokenizes one line: whitespace-separated words with `;`, `(` and `)`
/// standalone and `#` starting a line comment — the same rules as the
/// LEF lexer, expressed as byte ranges instead of owned strings.
fn tokenize_line(line: &str, toks: &mut Vec<(u32, u32)>) {
    let bytes = line.as_bytes();
    let end = line.find('#').unwrap_or(bytes.len());
    let mut start: Option<usize> = None;
    for (i, &c) in bytes[..end].iter().enumerate() {
        match c {
            b';' | b'(' | b')' => {
                if let Some(s) = start.take() {
                    toks.push((s as u32, i as u32));
                }
                toks.push((i as u32, (i + 1) as u32));
            }
            c if c.is_ascii_whitespace() => {
                if let Some(s) = start.take() {
                    toks.push((s as u32, i as u32));
                }
            }
            _ => {
                if start.is_none() {
                    start = Some(i);
                }
            }
        }
    }
    if let Some(s) = start {
        toks.push((s as u32, end as u32));
    }
}

/// Parses DEF from any buffered reader into a [`Design`], resolving layer
/// and site names against `tech`. This is the streaming entry point: the
/// source is consumed line-by-line and never materialized whole.
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed input, I/O failure, unknown
/// layers/components referenced by later sections, or unsupported
/// constructs (multi-row `DO n BY m` with `m > 1`). Unknown statements
/// and sections are skipped.
pub fn parse_def_reader<R: BufRead>(
    src: R,
    tech: &Tech,
) -> std::result::Result<Design, ParseDefError> {
    DefParser::new(src, tech).parse()
}

/// Parses a DEF file by streaming it through a [`BufReader`](std::io::BufReader).
///
/// # Errors
///
/// As [`parse_def_reader`]; failure to open the file reports as a
/// [`ParseDefError`] at line 0.
pub fn parse_def_file(path: &Path, tech: &Tech) -> std::result::Result<Design, ParseDefError> {
    let file = std::fs::File::open(path)
        .map_err(|e| ParseDefError::new(format!("cannot open `{}`: {e}", path.display()), 0))?;
    parse_def_reader(std::io::BufReader::new(file), tech)
}

/// Parses DEF source into a [`Design`], resolving layer and site names
/// against `tech`.
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed input, unknown layers/components
/// referenced by later sections, or unsupported constructs (multi-row `DO n
/// BY m` with `m > 1`). Unknown statements and sections are skipped.
pub fn parse_def(src: &str, tech: &Tech) -> std::result::Result<Design, ParseDefError> {
    parse_def_reader(src.as_bytes(), tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_tech::{Layer, Macro, Site};

    fn tech() -> Tech {
        let mut t = Tech::new(2000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 280, 120, 120));
        t.add_layer(Layer::cut("V1", 100, 160));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 380, 120, 120));
        t.add_site(Site::new("core", 380, 2800));
        t.add_macro(Macro::new("INVX1", 760, 2800));
        t.add_macro(Macro::new("NAND2X1", 1140, 2800));
        t
    }

    const SAMPLE: &str = r#"
VERSION 5.8 ;
DIVIDERCHAR "/" ;
DESIGN top ;
UNITS DISTANCE MICRONS 2000 ;
DIEAREA ( 0 0 ) ( 40000 38000 ) ;
ROW row_0 core 0 0 FS DO 100 BY 1 STEP 380 0 ;
ROW row_1 core 0 2800 N DO 100 BY 1 STEP 380 0 ;
TRACKS Y 140 DO 135 STEP 280 LAYER M1 ;
TRACKS X 190 DO 105 STEP 380 LAYER M1 M2 ;
COMPONENTS 2 ;
 - u1 INVX1 + PLACED ( 380 0 ) FS ;
 - u2 NAND2X1 + SOURCE DIST + FIXED ( 1140 0 ) FS ;
END COMPONENTS
PINS 1 ;
 - clk + NET clk + DIRECTION INPUT + USE SIGNAL
   + LAYER M2 ( -35 -35 ) ( 35 35 )
   + PLACED ( 0 19000 ) N ;
END PINS
NETS 2 ;
 - n1 ( u1 A ) ( u2 Y ) + USE SIGNAL ;
 - clk ( PIN clk ) ( u2 B ) ;
END NETS
END DESIGN
"#;

    #[test]
    fn parses_full_sample() {
        let t = tech();
        let d = parse_def(SAMPLE, &t).unwrap();
        assert_eq!(d.name, "top");
        assert_eq!(d.dbu_per_micron, 2000);
        assert_eq!(d.die_area, Rect::new(0, 0, 40000, 38000));
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[0].orient, Orient::FS);
        assert_eq!(d.rows[0].height, 2800);
        assert_eq!(d.tracks.len(), 2);
        assert_eq!(d.tracks[0].dir, Dir::Horizontal);
        assert_eq!(d.tracks[0].start, 140);
        assert_eq!(d.tracks[1].dir, Dir::Vertical);
        assert_eq!(d.tracks[1].layers.len(), 2);
        assert_eq!(d.components().len(), 2);
        let u2 = d.component(d.component_by_name("u2").unwrap());
        assert!(u2.is_fixed);
        assert_eq!(u2.location, Point::new(1140, 0));
        assert_eq!(d.io_pins().len(), 1);
        assert_eq!(d.io_pins()[0].location, Point::new(0, 19000));
        assert_eq!(d.nets().len(), 2);
        let clk = d.net(d.net_by_name("clk").unwrap());
        assert_eq!(clk.degree(), 2);
        assert!(matches!(clk.pins[0], NetPin::Io { index: 0 }));
        assert_eq!(d.connected_pin_count(), 3);
    }

    #[test]
    fn reader_entry_point_matches_str_parse() {
        let t = tech();
        let via_str = parse_def(SAMPLE, &t).unwrap();
        let via_reader =
            parse_def_reader(std::io::BufReader::with_capacity(17, SAMPLE.as_bytes()), &t).unwrap();
        // A tiny buffer forces many refills; results must be identical.
        assert_eq!(via_str.components(), via_reader.components());
        assert_eq!(via_str.nets(), via_reader.nets());
        assert_eq!(via_str.io_pins(), via_reader.io_pins());
        assert_eq!(via_str.rows, via_reader.rows);
        assert_eq!(via_str.tracks, via_reader.tracks);
    }

    #[test]
    fn error_on_unknown_component_in_net() {
        let t = tech();
        let src = "\
DESIGN x ;\nCOMPONENTS 0 ;\nEND COMPONENTS\nNETS 1 ;\n - n ( ghost A ) ;\nEND NETS\nEND DESIGN";
        let err = parse_def(src, &t).unwrap_err();
        assert!(err.message.contains("unknown component"));
        assert!(err.line > 0);
    }

    #[test]
    fn error_on_unknown_layer_in_tracks() {
        let t = tech();
        let src = "DESIGN x ;\nTRACKS X 0 DO 10 STEP 100 LAYER M9 ;\nEND DESIGN";
        let err = parse_def(src, &t).unwrap_err();
        assert!(err.message.contains("unknown layer"));
    }

    #[test]
    fn skips_unknown_sections() {
        let t = tech();
        let src = "\
DESIGN x ;\nGCELLGRID X 0 DO 10 STEP 3000 ;\nVIAS 0 ;\nEND VIAS\nEND DESIGN";
        let d = parse_def(src, &t).unwrap();
        assert_eq!(d.name, "x");
    }

    #[test]
    fn rejects_multi_height_rows() {
        let t = tech();
        let src = "DESIGN x ;\nROW r core 0 0 N DO 5 BY 2 STEP 380 2800 ;\nEND DESIGN";
        assert!(parse_def(src, &t).is_err());
    }

    #[test]
    fn truncated_input_reports_error_not_panic() {
        let t = tech();
        // Cut the sample at every line boundary: each prefix must either
        // parse (possibly to a partial design) or fail cleanly.
        let lines: Vec<&str> = SAMPLE.lines().collect();
        for n in 0..lines.len() {
            let prefix = lines[..n].join("\n");
            let _ = parse_def(&prefix, &t);
        }
        // A truncation mid-COMPONENTS must be an error, not a silent
        // half-design.
        let cut = SAMPLE.split("END COMPONENTS").next().unwrap();
        let err = parse_def(cut, &t).unwrap_err();
        assert!(err.message.contains("unexpected end of input"));
    }

    #[test]
    fn garbage_reports_error_not_panic() {
        let t = tech();
        for src in [
            "COMPONENTS x ;",
            "COMPONENTS 1 ; - u1 ;",
            "NETS 1 ; - n ( ;",
            "TRACKS Z 0 DO 1 STEP 1 ;",
            "ROW r core a b N DO 1 BY 1 STEP 1 0 ;",
            "PINS 1 ; - p + LAYER M9 ( 0 0 ) ( 1 1 ) ;",
            "PINS 1 ; - p + PLACED ( 0 0 ) N ;\nEND PINS",
            "NETS 1 ; - n [ ;",
        ] {
            assert!(parse_def(src, &t).is_err(), "`{src}` must not parse");
        }
    }

    #[test]
    fn header_counts_presize_without_trusting_garbage() {
        let t = tech();
        // A count header far larger than the actual entries (and larger
        // than the reserve cap) must not blow up the parse.
        let src = "DESIGN x ;\nCOMPONENTS 99999999 ;\n - u1 INVX1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN";
        let d = parse_def(src, &t).unwrap();
        assert_eq!(d.components().len(), 1);
    }
}
