//! The DEF parser.

use crate::component::Component;
use crate::design::Design;
use crate::iopin::IoPin;
use crate::net::{Net, NetPin};
use crate::row::Row;
use crate::tracks::TrackPattern;
use pao_geom::{Dbu, Dir, Orient, Point, Rect};
use pao_tech::lef::{Lexer, Token};
use pao_tech::Tech;
use std::fmt;

/// Error produced while parsing DEF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line where the error was detected (0 = end of input).
    pub line: u32,
}

impl ParseDefError {
    fn new(message: impl Into<String>, line: u32) -> ParseDefError {
        ParseDefError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDefError {}

type Result<T> = std::result::Result<T, ParseDefError>;

struct DefParser<'t> {
    tokens: Vec<Token>,
    pos: usize,
    tech: &'t Tech,
    design: Design,
}

impl<'t> DefParser<'t> {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(|t| t.text.as_str())
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map_or(0, |t| t.line)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseDefError::new(msg, self.line()))
    }

    fn next_word(&mut self) -> Result<String> {
        match self.tokens.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t.text.clone())
            }
            None => Err(ParseDefError::new("unexpected end of input", 0)),
        }
    }

    fn eat(&mut self, kw: &str) -> bool {
        if self.peek() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kw: &str) -> Result<()> {
        let t = self.next_word()?;
        if t == kw {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{t}`"))
        }
    }

    fn skip_statement(&mut self) {
        while let Ok(t) = self.next_word() {
            if t == ";" {
                break;
            }
        }
    }

    fn int(&mut self) -> Result<Dbu> {
        let t = self.next_word()?;
        t.parse::<Dbu>().map_err(|_| {
            ParseDefError::new(format!("expected an integer, found `{t}`"), self.line())
        })
    }

    /// Parses `( x y )`.
    fn point(&mut self) -> Result<Point> {
        self.expect("(")?;
        let x = self.int()?;
        let y = self.int()?;
        self.expect(")")?;
        Ok(Point::new(x, y))
    }

    fn orient(&mut self) -> Result<Orient> {
        let t = self.next_word()?;
        t.parse::<Orient>()
            .map_err(|e| ParseDefError::new(e.to_string(), self.line()))
    }

    fn parse(mut self) -> Result<Design> {
        while let Some(kw) = self.peek() {
            match kw {
                "DESIGN" => {
                    self.pos += 1;
                    self.design.name = self.next_word()?;
                    self.expect(";")?;
                }
                "UNITS" => {
                    self.pos += 1;
                    self.expect("DISTANCE")?;
                    self.expect("MICRONS")?;
                    self.design.dbu_per_micron = self.int()?;
                    self.expect(";")?;
                }
                "DIEAREA" => {
                    self.pos += 1;
                    let a = self.point()?;
                    let b = self.point()?;
                    self.expect(";")?;
                    self.design.die_area = Rect::from_points(a, b);
                }
                "ROW" => self.parse_row()?,
                "TRACKS" => self.parse_tracks()?,
                "COMPONENTS" => self.parse_components()?,
                "PINS" => self.parse_pins()?,
                "NETS" => self.parse_nets()?,
                "END" => {
                    self.pos += 1;
                    let what = self.next_word().unwrap_or_default();
                    if what == "DESIGN" {
                        break;
                    }
                    // END of a skipped section — continue.
                }
                _ => {
                    self.pos += 1;
                    self.skip_statement();
                }
            }
        }
        Ok(self.design)
    }

    fn parse_row(&mut self) -> Result<()> {
        self.expect("ROW")?;
        let name = self.next_word()?;
        let site = self.next_word()?;
        let x = self.int()?;
        let y = self.int()?;
        let orient = self.orient()?;
        self.expect("DO")?;
        let nx = self.int()?;
        self.expect("BY")?;
        let ny = self.int()?;
        self.expect("STEP")?;
        let sx = self.int()?;
        let _sy = self.int()?;
        self.expect(";")?;
        if ny != 1 {
            return self.err("only DO n BY 1 rows are supported");
        }
        let height = self.tech.site_by_name(&site).map_or(0, |s| s.height).max(1);
        self.design.rows.push(Row::new(
            name,
            site,
            Point::new(x, y),
            orient,
            nx as u32,
            sx.max(1),
            height,
        ));
        Ok(())
    }

    fn parse_tracks(&mut self) -> Result<()> {
        self.expect("TRACKS")?;
        let axis = self.next_word()?;
        // DEF `TRACKS X` lists x coordinates → vertical wires run on them.
        let dir = match axis.as_str() {
            "X" => Dir::Vertical,
            "Y" => Dir::Horizontal,
            other => return self.err(format!("expected TRACKS X or Y, found `{other}`")),
        };
        let start = self.int()?;
        self.expect("DO")?;
        let count = self.int()?;
        self.expect("STEP")?;
        let step = self.int()?;
        let mut layers = Vec::new();
        if self.eat("LAYER") {
            loop {
                match self.peek() {
                    Some(";") => break,
                    Some(_) => {
                        let lname = self.next_word()?;
                        match self.tech.layer_id(&lname) {
                            Some(id) => layers.push(id),
                            None => return self.err(format!("unknown layer `{lname}` in TRACKS")),
                        }
                    }
                    None => return self.err("unterminated TRACKS"),
                }
            }
        }
        self.expect(";")?;
        self.design.tracks.push(TrackPattern::new(
            dir,
            start,
            step.max(1),
            count as u32,
            layers,
        ));
        Ok(())
    }

    fn parse_components(&mut self) -> Result<()> {
        self.expect("COMPONENTS")?;
        let _count = self.int()?;
        self.expect(";")?;
        while self.eat("-") {
            let name = self.next_word()?;
            let master = self.next_word()?;
            let mut comp = Component::new(name, master, Point::ORIGIN, Orient::N);
            comp.is_placed = false; // until a PLACED/FIXED clause appears
            while self.eat("+") {
                let kw = self.next_word()?;
                match kw.as_str() {
                    "PLACED" | "FIXED" => {
                        comp.location = self.point()?;
                        comp.orient = self.orient()?;
                        comp.is_fixed = kw == "FIXED";
                        comp.is_placed = true;
                    }
                    "UNPLACED" => {
                        comp.is_placed = false;
                    }
                    _ => {
                        // SOURCE, WEIGHT, … skip until the next +, - or ;.
                        while !matches!(self.peek(), Some("+" | "-" | ";") | None) {
                            self.pos += 1;
                        }
                    }
                }
            }
            self.expect(";")?;
            self.design.add_component(comp);
        }
        self.expect("END")?;
        self.expect("COMPONENTS")?;
        Ok(())
    }

    fn parse_pins(&mut self) -> Result<()> {
        self.expect("PINS")?;
        let _count = self.int()?;
        self.expect(";")?;
        while self.eat("-") {
            let name = self.next_word()?;
            let mut net = name.clone();
            let mut layer = None;
            let mut rect = Rect::new(0, 0, 0, 0);
            let mut location = Point::ORIGIN;
            let mut orient = Orient::N;
            let mut dir = pao_tech::PinDir::Input;
            let mut use_ = pao_tech::PinUse::Signal;
            while self.eat("+") {
                let kw = self.next_word()?;
                match kw.as_str() {
                    "NET" => net = self.next_word()?,
                    "DIRECTION" => {
                        let d = self.next_word()?;
                        dir = d
                            .parse()
                            .map_err(|e: String| ParseDefError::new(e, self.line()))?;
                    }
                    "USE" => {
                        let u = self.next_word()?;
                        use_ = u
                            .parse()
                            .map_err(|e: String| ParseDefError::new(e, self.line()))?;
                    }
                    "LAYER" => {
                        let lname = self.next_word()?;
                        layer = match self.tech.layer_id(&lname) {
                            Some(id) => Some(id),
                            None => return self.err(format!("unknown layer `{lname}` in PINS")),
                        };
                        let a = self.point()?;
                        let b = self.point()?;
                        rect = Rect::from_points(a, b);
                    }
                    "PLACED" | "FIXED" => {
                        location = self.point()?;
                        orient = self.orient()?;
                    }
                    _ => {
                        while !matches!(self.peek(), Some("+" | "-" | ";") | None) {
                            self.pos += 1;
                        }
                    }
                }
            }
            self.expect(";")?;
            let Some(layer) = layer else {
                return self.err(format!("pin `{name}` has no LAYER geometry"));
            };
            let mut pin = IoPin::new(name, net, layer, rect, location, orient);
            pin.dir = dir;
            pin.use_ = use_;
            self.design.add_io_pin(pin);
        }
        self.expect("END")?;
        self.expect("PINS")?;
        Ok(())
    }

    fn parse_nets(&mut self) -> Result<()> {
        self.expect("NETS")?;
        let _count = self.int()?;
        self.expect(";")?;
        while self.eat("-") {
            let name = self.next_word()?;
            let mut net = Net::new(name.clone());
            loop {
                if self.eat("(") {
                    let a = self.next_word()?;
                    let b = self.next_word()?;
                    self.expect(")")?;
                    if a == "PIN" {
                        let idx = self
                            .design
                            .io_pins()
                            .iter()
                            .position(|p| p.name == b)
                            .ok_or_else(|| {
                                ParseDefError::new(format!("unknown design pin `{b}`"), self.line())
                            })?;
                        net.pins.push(NetPin::Io { index: idx as u32 });
                    } else {
                        let comp = self.design.component_by_name(&a).ok_or_else(|| {
                            ParseDefError::new(
                                format!("unknown component `{a}` in net `{name}`"),
                                self.line(),
                            )
                        })?;
                        net.pins.push(NetPin::Comp { comp, pin: b });
                    }
                } else if self.eat(";") {
                    break;
                } else if self.eat("+") {
                    // USE / ROUTED / … — DEF places all terminals before
                    // the first `+` clause, so everything up to the `;`
                    // (including ROUTED coordinates in parentheses) is
                    // skipped.
                    while !matches!(self.peek(), Some(";") | None) {
                        self.pos += 1;
                    }
                } else {
                    return self.err("expected `(`, `+` or `;` in NETS entry");
                }
            }
            self.design.add_net(net);
        }
        self.expect("END")?;
        self.expect("NETS")?;
        Ok(())
    }
}

/// Parses DEF source into a [`Design`], resolving layer and site names
/// against `tech`.
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed input, unknown layers/components
/// referenced by later sections, or unsupported constructs (multi-row `DO n
/// BY m` with `m > 1`). Unknown statements and sections are skipped.
pub fn parse_def(src: &str, tech: &Tech) -> std::result::Result<Design, ParseDefError> {
    DefParser {
        tokens: Lexer::tokenize(src),
        pos: 0,
        tech,
        design: Design::new("", Rect::new(0, 0, 0, 0)),
    }
    .parse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_tech::{Layer, Macro, Site};

    fn tech() -> Tech {
        let mut t = Tech::new(2000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 280, 120, 120));
        t.add_layer(Layer::cut("V1", 100, 160));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 380, 120, 120));
        t.add_site(Site::new("core", 380, 2800));
        t.add_macro(Macro::new("INVX1", 760, 2800));
        t.add_macro(Macro::new("NAND2X1", 1140, 2800));
        t
    }

    const SAMPLE: &str = r#"
VERSION 5.8 ;
DIVIDERCHAR "/" ;
DESIGN top ;
UNITS DISTANCE MICRONS 2000 ;
DIEAREA ( 0 0 ) ( 40000 38000 ) ;
ROW row_0 core 0 0 FS DO 100 BY 1 STEP 380 0 ;
ROW row_1 core 0 2800 N DO 100 BY 1 STEP 380 0 ;
TRACKS Y 140 DO 135 STEP 280 LAYER M1 ;
TRACKS X 190 DO 105 STEP 380 LAYER M1 M2 ;
COMPONENTS 2 ;
 - u1 INVX1 + PLACED ( 380 0 ) FS ;
 - u2 NAND2X1 + SOURCE DIST + FIXED ( 1140 0 ) FS ;
END COMPONENTS
PINS 1 ;
 - clk + NET clk + DIRECTION INPUT + USE SIGNAL
   + LAYER M2 ( -35 -35 ) ( 35 35 )
   + PLACED ( 0 19000 ) N ;
END PINS
NETS 2 ;
 - n1 ( u1 A ) ( u2 Y ) + USE SIGNAL ;
 - clk ( PIN clk ) ( u2 B ) ;
END NETS
END DESIGN
"#;

    #[test]
    fn parses_full_sample() {
        let t = tech();
        let d = parse_def(SAMPLE, &t).unwrap();
        assert_eq!(d.name, "top");
        assert_eq!(d.dbu_per_micron, 2000);
        assert_eq!(d.die_area, Rect::new(0, 0, 40000, 38000));
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[0].orient, Orient::FS);
        assert_eq!(d.rows[0].height, 2800);
        assert_eq!(d.tracks.len(), 2);
        assert_eq!(d.tracks[0].dir, Dir::Horizontal);
        assert_eq!(d.tracks[0].start, 140);
        assert_eq!(d.tracks[1].dir, Dir::Vertical);
        assert_eq!(d.tracks[1].layers.len(), 2);
        assert_eq!(d.components().len(), 2);
        let u2 = d.component(d.component_by_name("u2").unwrap());
        assert!(u2.is_fixed);
        assert_eq!(u2.location, Point::new(1140, 0));
        assert_eq!(d.io_pins().len(), 1);
        assert_eq!(d.io_pins()[0].location, Point::new(0, 19000));
        assert_eq!(d.nets().len(), 2);
        let clk = d.net(d.net_by_name("clk").unwrap());
        assert_eq!(clk.degree(), 2);
        assert!(matches!(clk.pins[0], NetPin::Io { index: 0 }));
        assert_eq!(d.connected_pin_count(), 3);
    }

    #[test]
    fn error_on_unknown_component_in_net() {
        let t = tech();
        let src = "\
DESIGN x ;\nCOMPONENTS 0 ;\nEND COMPONENTS\nNETS 1 ;\n - n ( ghost A ) ;\nEND NETS\nEND DESIGN";
        let err = parse_def(src, &t).unwrap_err();
        assert!(err.message.contains("unknown component"));
        assert!(err.line > 0);
    }

    #[test]
    fn error_on_unknown_layer_in_tracks() {
        let t = tech();
        let src = "DESIGN x ;\nTRACKS X 0 DO 10 STEP 100 LAYER M9 ;\nEND DESIGN";
        let err = parse_def(src, &t).unwrap_err();
        assert!(err.message.contains("unknown layer"));
    }

    #[test]
    fn skips_unknown_sections() {
        let t = tech();
        let src = "\
DESIGN x ;\nGCELLGRID X 0 DO 10 STEP 3000 ;\nVIAS 0 ;\nEND VIAS\nEND DESIGN";
        let d = parse_def(src, &t).unwrap();
        assert_eq!(d.name, "x");
    }

    #[test]
    fn rejects_multi_height_rows() {
        let t = tech();
        let src = "DESIGN x ;\nROW r core 0 0 N DO 5 BY 2 STEP 380 2800 ;\nEND DESIGN";
        assert!(parse_def(src, &t).is_err());
    }
}
