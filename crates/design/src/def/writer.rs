//! The DEF writer.

use crate::design::Design;
use crate::net::NetPin;
use pao_geom::Dir;
use pao_tech::Tech;
use std::io::{self, Write};

/// Streams a [`Design`] as DEF text to any writer.
///
/// This is the scaling entry point: a million-component design writes
/// through an `O(1)` buffer instead of materializing the full text.
/// [`write_def`] wraps this for callers that want a `String`; both paths
/// produce byte-identical output.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_def_to<W: Write>(design: &Design, tech: &Tech, out: &mut W) -> io::Result<()> {
    writeln!(out, "VERSION 5.8 ;")?;
    writeln!(out, "DESIGN {} ;", design.name)?;
    writeln!(out, "UNITS DISTANCE MICRONS {} ;", design.dbu_per_micron)?;
    let d = design.die_area;
    writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        d.xlo(),
        d.ylo(),
        d.xhi(),
        d.yhi()
    )?;
    for row in &design.rows {
        writeln!(
            out,
            "ROW {} {} {} {} {} DO {} BY 1 STEP {} 0 ;",
            row.name, row.site, row.origin.x, row.origin.y, row.orient, row.num_sites, row.step
        )?;
    }
    for t in &design.tracks {
        let axis = if t.dir == Dir::Vertical { "X" } else { "Y" };
        write!(
            out,
            "TRACKS {axis} {} DO {} STEP {}",
            t.start, t.count, t.step
        )?;
        if !t.layers.is_empty() {
            write!(out, " LAYER")?;
            for &l in &t.layers {
                write!(out, " {}", tech.layer(l).name)?;
            }
        }
        writeln!(out, " ;")?;
    }
    writeln!(out, "COMPONENTS {} ;", design.components().len())?;
    for c in design.components() {
        if !c.is_placed {
            writeln!(out, " - {} {} + UNPLACED ;", c.name, c.master)?;
            continue;
        }
        let kw = if c.is_fixed { "FIXED" } else { "PLACED" };
        writeln!(
            out,
            " - {} {} + {kw} ( {} {} ) {} ;",
            c.name, c.master, c.location.x, c.location.y, c.orient
        )?;
    }
    writeln!(out, "END COMPONENTS")?;
    writeln!(out, "PINS {} ;", design.io_pins().len())?;
    for p in design.io_pins() {
        writeln!(
            out,
            " - {} + NET {} + DIRECTION {} + USE {}",
            p.name,
            p.net,
            p.dir.as_str(),
            p.use_.as_str()
        )?;
        writeln!(
            out,
            "   + LAYER {} ( {} {} ) ( {} {} )",
            tech.layer(p.layer).name,
            p.rect.xlo(),
            p.rect.ylo(),
            p.rect.xhi(),
            p.rect.yhi()
        )?;
        writeln!(
            out,
            "   + PLACED ( {} {} ) {} ;",
            p.location.x, p.location.y, p.orient
        )?;
    }
    writeln!(out, "END PINS")?;
    writeln!(out, "NETS {} ;", design.nets().len())?;
    for n in design.nets() {
        write!(out, " - {}", n.name)?;
        for pin in &n.pins {
            match pin {
                NetPin::Comp { comp, pin } => {
                    write!(out, " ( {} {} )", design.component(*comp).name, pin)?;
                }
                NetPin::Io { index } => {
                    write!(out, " ( PIN {} )", design.io_pins()[*index as usize].name)?;
                }
            }
        }
        writeln!(out, " ;")?;
    }
    writeln!(out, "END NETS")?;
    writeln!(out, "END DESIGN")?;
    Ok(())
}

/// Serializes a [`Design`] back to DEF text.
///
/// The output is a normal form of the supported subset;
/// `parse_def(write_def(d, t), t)` reproduces the same database.
#[must_use]
pub fn write_def(design: &Design, tech: &Tech) -> String {
    let mut out = Vec::new();
    // Writing into a Vec<u8> cannot fail.
    let _ = write_def_to(design, tech, &mut out);
    String::from_utf8(out).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_def;
    use super::*;
    use pao_geom::{Orient, Point, Rect};
    use pao_tech::{Layer, LayerId, Macro, PinUse, Site};

    fn tech() -> Tech {
        let mut t = Tech::new(2000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 280, 120, 120));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 380, 120, 120));
        t.add_site(Site::new("core", 380, 2800));
        t.add_macro(Macro::new("INVX1", 760, 2800));
        t
    }

    #[test]
    fn roundtrip_preserves_database() {
        let tech = tech();
        let mut d = crate::Design::new("top", Rect::new(0, 0, 40_000, 38_000));
        d.dbu_per_micron = 2000;
        d.rows.push(crate::Row::new(
            "row_0",
            "core",
            Point::new(0, 0),
            Orient::FS,
            100,
            380,
            2800,
        ));
        d.tracks.push(crate::TrackPattern::new(
            Dir::Horizontal,
            140,
            280,
            135,
            vec![LayerId(0)],
        ));
        let u1 = d.add_component(crate::Component::new(
            "u1",
            "INVX1",
            Point::new(380, 0),
            Orient::FS,
        ));
        let mut fixed = crate::Component::new("u2", "INVX1", Point::new(1140, 0), Orient::N);
        fixed.is_fixed = true;
        let u2 = d.add_component(fixed);
        let mut io = crate::IoPin::new(
            "clk",
            "clk",
            LayerId(1),
            Rect::new(-35, -35, 35, 35),
            Point::new(0, 19_000),
            Orient::N,
        );
        io.use_ = PinUse::Clock;
        d.add_io_pin(io);
        let mut n = crate::Net::new("clk");
        n.pins.push(NetPin::Io { index: 0 });
        n.pins.push(NetPin::Comp {
            comp: u1,
            pin: "A".into(),
        });
        n.pins.push(NetPin::Comp {
            comp: u2,
            pin: "A".into(),
        });
        d.add_net(n);

        let text = write_def(&d, &tech);
        let d2 = parse_def(&text, &tech).unwrap();
        assert_eq!(d.name, d2.name);
        assert_eq!(d.die_area, d2.die_area);
        assert_eq!(d.rows, d2.rows);
        assert_eq!(d.tracks, d2.tracks);
        assert_eq!(d.components(), d2.components());
        assert_eq!(d.io_pins(), d2.io_pins());
        assert_eq!(d.nets(), d2.nets());
    }

    #[test]
    fn streamed_output_matches_string_output() {
        let tech = tech();
        let mut d = crate::Design::new("top", Rect::new(0, 0, 1000, 1000));
        d.add_component(crate::Component::new(
            "u1",
            "INVX1",
            Point::new(0, 0),
            Orient::N,
        ));
        let mut buf = Vec::new();
        write_def_to(&d, &tech, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), write_def(&d, &tech));
    }
}
