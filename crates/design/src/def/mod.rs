//! DEF reading and writing.
//!
//! Supports the DEF 5.8 subset pin access analysis needs: design name,
//! units, die area, rows, tracks, components, pins and nets. Unknown
//! sections (`VIAS`, `SPECIALNETS`, `GCELLGRID`, …) are skipped.
//!
//! ```
//! use pao_design::def;
//!
//! let src = "\
//! DESIGN top ;
//! UNITS DISTANCE MICRONS 1000 ;
//! DIEAREA ( 0 0 ) ( 1000 1000 ) ;
//! END DESIGN
//! ";
//! // Tech with the layers the DEF refers to (none needed here).
//! let tech = pao_tech::Tech::new(1000);
//! let design = def::parse_def(src, &tech)?;
//! assert_eq!(design.name, "top");
//! # Ok::<(), def::ParseDefError>(())
//! ```

mod parser;
mod writer;

pub use parser::{parse_def, parse_def_file, parse_def_reader, ParseDefError};
pub use writer::{write_def, write_def_to};
