//! Placement rows.

use pao_geom::{Dbu, Orient, Point, Rect};

/// A DEF `ROW`: a horizontal strip of placement sites.
///
/// ```
/// use pao_design::Row;
/// use pao_geom::{Orient, Point};
///
/// let row = Row::new("row0", "core", Point::new(0, 0), Orient::N, 100, 380, 2800);
/// assert_eq!(row.site_x(3), 1140);
/// assert_eq!(row.site_index_at(1140), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Row name, e.g. `"row0"`.
    pub name: String,
    /// Site name from the technology.
    pub site: String,
    /// Origin (lower-left of the first site).
    pub origin: Point,
    /// Orientation of cells in this row (`N` or `FS` in single-height
    /// designs).
    pub orient: Orient,
    /// Number of sites along x.
    pub num_sites: u32,
    /// Site-to-site step along x (the site width in packed rows).
    pub step: Dbu,
    /// Row (site) height.
    pub height: Dbu,
}

impl Row {
    /// Creates a row.
    ///
    /// # Panics
    ///
    /// Panics when `step` or `height` is not positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        site: impl Into<String>,
        origin: Point,
        orient: Orient,
        num_sites: u32,
        step: Dbu,
        height: Dbu,
    ) -> Row {
        assert!(
            step > 0 && height > 0,
            "row step and height must be positive"
        );
        Row {
            name: name.into(),
            site: site.into(),
            origin,
            orient,
            num_sites,
            step,
            height,
        }
    }

    /// x coordinate of site `i`'s left edge.
    #[must_use]
    pub fn site_x(&self, i: u32) -> Dbu {
        self.origin.x + Dbu::from(i) * self.step
    }

    /// The site index whose left edge is exactly `x`, if `x` is on the site
    /// grid and within the row.
    #[must_use]
    pub fn site_index_at(&self, x: Dbu) -> Option<u32> {
        if x < self.origin.x {
            return None;
        }
        let d = x - self.origin.x;
        if d % self.step != 0 {
            return None;
        }
        let i = d / self.step;
        (i < Dbu::from(self.num_sites)).then_some(i as u32)
    }

    /// Bounding box of the whole row.
    #[must_use]
    pub fn bbox(&self) -> Rect {
        Rect::new(
            self.origin.x,
            self.origin.y,
            self.origin.x + Dbu::from(self.num_sites) * self.step,
            self.origin.y + self.height,
        )
    }

    /// `true` when a cell placed at `x` with the given width (an integer
    /// number of sites) fits inside the row.
    #[must_use]
    pub fn fits(&self, x: Dbu, width: Dbu) -> bool {
        self.site_index_at(x).is_some() && x + width <= self.bbox().xhi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(
            "row0",
            "core",
            Point::new(1000, 2800),
            Orient::FS,
            50,
            380,
            2800,
        )
    }

    #[test]
    fn site_grid() {
        let r = row();
        assert_eq!(r.site_x(0), 1000);
        assert_eq!(r.site_x(10), 1000 + 3800);
        assert_eq!(r.site_index_at(1000), Some(0));
        assert_eq!(r.site_index_at(1380), Some(1));
        assert_eq!(r.site_index_at(999), None);
        assert_eq!(r.site_index_at(1001), None);
        // Past the end of the row.
        assert_eq!(r.site_index_at(1000 + 380 * 50), None);
    }

    #[test]
    fn bbox_and_fit() {
        let r = row();
        assert_eq!(r.bbox(), Rect::new(1000, 2800, 1000 + 50 * 380, 5600));
        assert!(r.fits(1000, 380 * 3));
        assert!(r.fits(1000 + 380 * 47, 380 * 3));
        assert!(!r.fits(1000 + 380 * 48, 380 * 3));
        assert!(!r.fits(1010, 380));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_step() {
        let _ = Row::new("r", "core", Point::ORIGIN, Orient::N, 1, 0, 2800);
    }
}
