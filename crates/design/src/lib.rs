#![warn(missing_docs)]

//! Design database (DEF model) for the PAAF pin access framework.
//!
//! Models the subset of DEF that pin access analysis and detailed routing
//! consume:
//!
//! * the die area, placement [`Row`]s and routing [`TrackPattern`]s,
//! * placed [`Component`]s (instances of [`Macro`](pao_tech::Macro)s),
//! * design [`IoPin`]s and signal [`Net`]s, and
//! * a [DEF parser](def) and writer.
//!
//! A [`Design`] holds ids into the companion
//! [`Tech`](pao_tech::Tech); helpers resolve instance transforms and
//! flatten master geometry into die coordinates.
//!
//! # Examples
//!
//! ```
//! use pao_design::{Component, Design};
//! use pao_geom::{Orient, Point, Rect};
//!
//! let mut design = Design::new("demo", Rect::new(0, 0, 10_000, 10_000));
//! design.add_component(Component::new("u1", "INVX1", Point::new(380, 0), Orient::N));
//! assert_eq!(design.components().len(), 1);
//! ```

pub mod component;
pub mod def;
pub mod design;
pub mod iopin;
pub mod net;
pub mod row;
pub mod tracks;

pub use component::{CompId, Component};
pub use design::Design;
pub use iopin::IoPin;
pub use net::{Net, NetId, NetPin};
pub use row::Row;
pub use tracks::TrackPattern;
