//! Placed component instances.

use pao_geom::{Orient, Point, Rect, Transform};
use pao_tech::{Macro, Symbol, Tech};
use std::fmt;

/// Index of a component in its [`Design`](crate::Design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

impl CompId {
    /// The component index as a `usize` for direct slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A placed instance of a cell master (a DEF `COMPONENTS` entry).
///
/// ```
/// use pao_design::Component;
/// use pao_geom::{Orient, Point};
///
/// let c = Component::new("u42", "NAND2X1", Point::new(3800, 2800), Orient::FS);
/// assert_eq!(c.master, "NAND2X1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Instance name, e.g. `"u42"` (interned).
    pub name: Symbol,
    /// Master (macro) name resolved against the technology (interned).
    pub master: Symbol,
    /// Placement location (lower-left of the placed bounding box).
    pub location: Point,
    /// Placement orientation.
    pub orient: Orient,
    /// `true` when the placement is fixed (DEF `FIXED`).
    pub is_fixed: bool,
    /// `false` for DEF `UNPLACED` components (excluded from analysis).
    pub is_placed: bool,
}

impl Component {
    /// Creates a placed component.
    #[must_use]
    pub fn new(
        name: impl Into<Symbol>,
        master: impl Into<Symbol>,
        location: Point,
        orient: Orient,
    ) -> Component {
        Component {
            name: name.into(),
            master: master.into(),
            location,
            orient,
            is_fixed: false,
            is_placed: true,
        }
    }

    /// Resolves this component's master in `tech`.
    #[must_use]
    pub fn master_in<'t>(&self, tech: &'t Tech) -> Option<&'t Macro> {
        tech.macro_by_symbol(self.master)
    }

    /// The master-to-die [`Transform`] for this placement.
    ///
    /// # Panics
    ///
    /// Panics when the master is not found in `tech`.
    #[must_use]
    pub fn transform(&self, tech: &Tech) -> Transform {
        let m = self.master_in(tech).unwrap_or_else(|| {
            panic!(
                "unknown master `{}` for component `{}`",
                self.master, self.name
            )
        });
        Transform::new(self.location, self.orient, m.width, m.height)
    }

    /// Bounding box of the placed instance in die coordinates.
    ///
    /// # Panics
    ///
    /// Panics when the master is not found in `tech`.
    #[must_use]
    pub fn bbox(&self, tech: &Tech) -> Rect {
        self.transform(tech).placed_bbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::Dir;
    use pao_tech::{Layer, Macro};

    fn tech() -> Tech {
        let mut t = Tech::new(2000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 280, 120, 120));
        t.add_macro(Macro::new("NAND2X1", 1140, 2800));
        t
    }

    #[test]
    fn transform_and_bbox() {
        let t = tech();
        let c = Component::new("u1", "NAND2X1", Point::new(3800, 2800), Orient::FS);
        assert_eq!(c.bbox(&t), Rect::new(3800, 2800, 3800 + 1140, 5600));
        // FS mirrors master (0,0) to the top edge.
        assert_eq!(c.transform(&t).apply(Point::ORIGIN), Point::new(3800, 5600));
    }

    #[test]
    fn master_resolution() {
        let t = tech();
        let c = Component::new("u1", "NAND2X1", Point::ORIGIN, Orient::N);
        assert!(c.master_in(&t).is_some());
        let bad = Component::new("u2", "BOGUS", Point::ORIGIN, Orient::N);
        assert!(bad.master_in(&t).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown master")]
    fn transform_panics_on_unknown_master() {
        let t = tech();
        let bad = Component::new("u2", "BOGUS", Point::ORIGIN, Orient::N);
        let _ = bad.transform(&t);
    }
}
