//! The design database.

use crate::component::{CompId, Component};
use crate::iopin::IoPin;
use crate::net::{Net, NetId};
use crate::row::Row;
use crate::tracks::TrackPattern;
use pao_geom::{Dbu, Rect};
use pao_tech::{LayerId, Symbol, Tech};
use std::collections::HashMap;

/// A placed design (the contents of a DEF file), resolved against a
/// companion [`Tech`].
///
/// ```
/// use pao_design::{Component, Design};
/// use pao_geom::{Orient, Point, Rect};
///
/// let mut d = Design::new("top", Rect::new(0, 0, 100_000, 100_000));
/// let u1 = d.add_component(Component::new("u1", "INVX1", Point::new(0, 0), Orient::N));
/// assert_eq!(d.component(u1).name, "u1");
/// assert_eq!(d.component_by_name("u1"), Some(u1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Database units per micron (DEF `UNITS DISTANCE MICRONS`).
    pub dbu_per_micron: Dbu,
    /// The die area.
    pub die_area: Rect,
    /// Placement rows.
    pub rows: Vec<Row>,
    /// Track patterns in declaration order.
    pub tracks: Vec<TrackPattern>,
    components: Vec<Component>,
    comp_names: HashMap<Symbol, CompId>,
    io_pins: Vec<IoPin>,
    nets: Vec<Net>,
    net_names: HashMap<Symbol, NetId>,
}

impl Design {
    /// Creates an empty design with the given die area.
    #[must_use]
    pub fn new(name: impl Into<String>, die_area: Rect) -> Design {
        Design {
            name: name.into(),
            dbu_per_micron: 1000,
            die_area,
            ..Design::default()
        }
    }

    /// Pre-sizes the component table and name map (streaming parsers feed
    /// the DEF section count header through here before the first add).
    pub fn reserve_components(&mut self, n: usize) {
        self.components.reserve(n);
        self.comp_names.reserve(n);
    }

    /// Pre-sizes the net table and name map.
    pub fn reserve_nets(&mut self, n: usize) {
        self.nets.reserve(n);
        self.net_names.reserve(n);
    }

    /// Pre-sizes the I/O pin table.
    pub fn reserve_io_pins(&mut self, n: usize) {
        self.io_pins.reserve(n);
    }

    /// Adds a component and returns its id.
    pub fn add_component(&mut self, c: Component) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.comp_names.insert(c.name, id);
        self.components.push(c);
        id
    }

    /// Adds an I/O pin and returns its index.
    pub fn add_io_pin(&mut self, p: IoPin) -> u32 {
        self.io_pins.push(p);
        (self.io_pins.len() - 1) as u32
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, n: Net) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.net_names.insert(n.name, id);
        self.nets.push(n);
        id
    }

    /// All components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn component(&self, id: CompId) -> &Component {
        &self.components[id.index()]
    }

    /// Mutable access to a component.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn component_mut(&mut self, id: CompId) -> &mut Component {
        &mut self.components[id.index()]
    }

    /// Looks up a component by instance name.
    #[must_use]
    pub fn component_by_name(&self, name: &str) -> Option<CompId> {
        let sym = Symbol::lookup(name)?;
        self.comp_names.get(&sym).copied()
    }

    /// Looks up a component by interned instance name.
    #[must_use]
    pub fn component_by_symbol(&self, name: Symbol) -> Option<CompId> {
        self.comp_names.get(&name).copied()
    }

    /// All I/O pins.
    #[must_use]
    pub fn io_pins(&self) -> &[IoPin] {
        &self.io_pins
    }

    /// All nets.
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a net by name.
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        let sym = Symbol::lookup(name)?;
        self.net_names.get(&sym).copied()
    }

    /// Track patterns governing wires of direction `dir` on `layer`
    /// (i.e. patterns that list the layer and run in `dir`).
    #[must_use]
    pub fn track_patterns_for(&self, layer: LayerId, dir: pao_geom::Dir) -> Vec<&TrackPattern> {
        self.tracks
            .iter()
            .filter(|t| t.dir == dir && t.layers.contains(&layer))
            .collect()
    }

    /// The phases of a component's origin against every track pattern, in
    /// pattern declaration order — the third element of the paper's
    /// unique-instance signature.
    #[must_use]
    pub fn track_phases(&self, comp: &Component) -> Vec<Dbu> {
        self.tracks
            .iter()
            .map(|t| match t.dir {
                pao_geom::Dir::Horizontal => t.phase(comp.location.y),
                pao_geom::Dir::Vertical => t.phase(comp.location.x),
            })
            .collect()
    }

    /// Flattened pin geometry of a component in die coordinates:
    /// `(pin index in master, layer, rect)` triples. Supply pins are
    /// included; callers filter by use when needed.
    ///
    /// # Panics
    ///
    /// Panics when the component's master is not in `tech`.
    #[must_use]
    pub fn placed_pin_shapes(&self, tech: &Tech, id: CompId) -> Vec<(usize, LayerId, Rect)> {
        let comp = self.component(id);
        let master = comp
            .master_in(tech)
            .unwrap_or_else(|| panic!("unknown master `{}`", comp.master));
        let t = comp.transform(tech);
        let mut out = Vec::new();
        for (pi, pin) in master.pins.iter().enumerate() {
            for port in &pin.ports {
                for r in port.flat_rects() {
                    out.push((pi, port.layer, t.apply_rect(r)));
                }
            }
        }
        out
    }

    /// Allocation-free form of [`Self::placed_pin_shapes`]: calls `f` for
    /// each `(pin index, layer, rect)` triple instead of building a `Vec`.
    /// The spatial-index build visits every component once; at a million
    /// instances the per-component `Vec` becomes the bottleneck.
    ///
    /// Polygon ports still decompose through an internal buffer; the
    /// common all-rect port walks straight through.
    ///
    /// # Panics
    ///
    /// Panics when the component's master is not in `tech`.
    pub fn for_each_placed_pin_shape(
        &self,
        tech: &Tech,
        id: CompId,
        mut f: impl FnMut(usize, LayerId, Rect),
    ) {
        let comp = self.component(id);
        let master = comp
            .master_in(tech)
            .unwrap_or_else(|| panic!("unknown master `{}`", comp.master));
        let t = comp.transform(tech);
        for (pi, pin) in master.pins.iter().enumerate() {
            for port in &pin.ports {
                for &r in &port.rects {
                    f(pi, port.layer, t.apply_rect(r));
                }
                for p in &port.polygons {
                    for r in p.to_rects() {
                        f(pi, port.layer, t.apply_rect(r));
                    }
                }
            }
        }
    }

    /// Allocation-free form of [`Self::placed_obs_shapes`].
    ///
    /// # Panics
    ///
    /// Panics when the component's master is not in `tech`.
    pub fn for_each_placed_obs_shape(
        &self,
        tech: &Tech,
        id: CompId,
        mut f: impl FnMut(LayerId, Rect),
    ) {
        let comp = self.component(id);
        let master = comp
            .master_in(tech)
            .unwrap_or_else(|| panic!("unknown master `{}`", comp.master));
        let t = comp.transform(tech);
        for &(layer, r) in &master.obs {
            f(layer, t.apply_rect(r));
        }
    }

    /// Flattened obstruction geometry of a component in die coordinates.
    ///
    /// # Panics
    ///
    /// Panics when the component's master is not in `tech`.
    #[must_use]
    pub fn placed_obs_shapes(&self, tech: &Tech, id: CompId) -> Vec<(LayerId, Rect)> {
        let comp = self.component(id);
        let master = comp
            .master_in(tech)
            .unwrap_or_else(|| panic!("unknown master `{}`", comp.master));
        let t = comp.transform(tech);
        master
            .obs
            .iter()
            .map(|&(layer, r)| (layer, t.apply_rect(r)))
            .collect()
    }

    /// Total number of component-pin net terminals (the "total #pins (with
    /// net attached)" of the paper's Table III).
    #[must_use]
    pub fn connected_pin_count(&self) -> usize {
        self.nets.iter().map(|n| n.comp_pins().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetPin;
    use pao_geom::{Dir, Orient, Point};
    use pao_tech::{Layer, Macro, Pin, PinDir, Port};

    fn tech() -> Tech {
        let mut t = Tech::new(2000);
        let m1 = t.add_layer(Layer::routing("M1", Dir::Horizontal, 280, 120, 120));
        let mut inv = Macro::new("INVX1", 760, 2800);
        inv.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(m1, vec![Rect::new(100, 400, 220, 1000)])],
        ));
        inv.obs.push((m1, Rect::new(500, 0, 600, 2800)));
        t.add_macro(inv);
        t
    }

    fn design() -> Design {
        let mut d = Design::new("top", Rect::new(0, 0, 20_000, 20_000));
        d.tracks.push(TrackPattern::new(
            Dir::Horizontal,
            140,
            280,
            70,
            vec![LayerId(0)],
        ));
        d.tracks.push(TrackPattern::new(
            Dir::Vertical,
            190,
            380,
            50,
            vec![LayerId(0)],
        ));
        d
    }

    #[test]
    fn component_registry() {
        let mut d = design();
        let id = d.add_component(Component::new("u1", "INVX1", Point::new(380, 0), Orient::N));
        assert_eq!(d.component_by_name("u1"), Some(id));
        assert_eq!(d.component_by_name("nope"), None);
        d.component_mut(id).is_fixed = true;
        assert!(d.component(id).is_fixed);
    }

    #[test]
    fn track_phases_follow_location() {
        let mut d = design();
        let a = d.add_component(Component::new("a", "INVX1", Point::new(380, 0), Orient::N));
        let b = d.add_component(Component::new("b", "INVX1", Point::new(760, 0), Orient::N));
        let c = d.add_component(Component::new(
            "c",
            "INVX1",
            Point::new(380 + 380, 280),
            Orient::N,
        ));
        let pa = d.track_phases(d.component(a));
        let pb = d.track_phases(d.component(b));
        let pc = d.track_phases(d.component(c));
        // a and b differ in x by one M1 vertical pitch → same phases.
        assert_eq!(pa, pb);
        // c is shifted in y by one horizontal pitch → same phases again.
        assert_eq!(pb, pc);
        // A half-pitch shift changes the horizontal phase.
        let e = d.add_component(Component::new(
            "e",
            "INVX1",
            Point::new(380, 140),
            Orient::N,
        ));
        assert_ne!(pa, d.track_phases(d.component(e)));
    }

    #[test]
    fn placed_shapes_transform() {
        let t = tech();
        let mut d = design();
        let id = d.add_component(Component::new(
            "u1",
            "INVX1",
            Point::new(1000, 2800),
            Orient::N,
        ));
        let pins = d.placed_pin_shapes(&t, id);
        assert_eq!(pins.len(), 1);
        assert_eq!(pins[0], (0, LayerId(0), Rect::new(1100, 3200, 1220, 3800)));
        let obs = d.placed_obs_shapes(&t, id);
        assert_eq!(obs, vec![(LayerId(0), Rect::new(1500, 2800, 1600, 5600))]);
    }

    #[test]
    fn net_registry_and_pin_count() {
        let mut d = design();
        let u1 = d.add_component(Component::new("u1", "INVX1", Point::ORIGIN, Orient::N));
        let u2 = d.add_component(Component::new("u2", "INVX1", Point::new(760, 0), Orient::N));
        let mut n = Net::new("n1");
        n.pins.push(NetPin::Comp {
            comp: u1,
            pin: "A".into(),
        });
        n.pins.push(NetPin::Comp {
            comp: u2,
            pin: "A".into(),
        });
        n.pins.push(NetPin::Io { index: 0 });
        let id = d.add_net(n);
        assert_eq!(d.net_by_name("n1"), Some(id));
        assert_eq!(d.net(id).degree(), 3);
        assert_eq!(d.connected_pin_count(), 2);
    }

    #[test]
    fn track_pattern_filter() {
        let d = design();
        assert_eq!(d.track_patterns_for(LayerId(0), Dir::Horizontal).len(), 1);
        assert_eq!(d.track_patterns_for(LayerId(1), Dir::Horizontal).len(), 0);
    }
}
