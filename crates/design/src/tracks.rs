//! Routing track patterns.

use pao_geom::{Dbu, Dir};
use pao_tech::LayerId;

/// A DEF `TRACKS` statement: an arithmetic progression of routing track
/// coordinates on one or more layers.
///
/// `dir` is the direction wires on these tracks run: horizontal tracks sit
/// at *y* coordinates (DEF `TRACKS Y`), vertical tracks at *x* coordinates
/// (DEF `TRACKS X`).
///
/// ```
/// use pao_design::TrackPattern;
/// use pao_geom::Dir;
/// use pao_tech::LayerId;
///
/// let t = TrackPattern::new(Dir::Horizontal, 140, 280, 100, vec![LayerId(0)]);
/// assert_eq!(t.coord(0), 140);
/// assert_eq!(t.coord(1), 420);
/// assert!(t.is_on_track(420));
/// assert!(!t.is_on_track(421));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackPattern {
    /// Direction wires on these tracks run.
    pub dir: Dir,
    /// Coordinate of the first track.
    pub start: Dbu,
    /// Spacing between consecutive tracks (> 0).
    pub step: Dbu,
    /// Number of tracks.
    pub count: u32,
    /// Layers the tracks apply to.
    pub layers: Vec<LayerId>,
}

impl TrackPattern {
    /// Creates a track pattern.
    ///
    /// # Panics
    ///
    /// Panics when `step` is not positive.
    #[must_use]
    pub fn new(dir: Dir, start: Dbu, step: Dbu, count: u32, layers: Vec<LayerId>) -> TrackPattern {
        assert!(step > 0, "track step must be positive");
        TrackPattern {
            dir,
            start,
            step,
            count,
            layers,
        }
    }

    /// The coordinate of track `i`.
    #[must_use]
    pub fn coord(&self, i: u32) -> Dbu {
        self.start + Dbu::from(i) * self.step
    }

    /// The coordinate of the last track.
    #[must_use]
    pub fn last_coord(&self) -> Dbu {
        self.coord(self.count.saturating_sub(1))
    }

    /// Iterates over all track coordinates.
    pub fn coords(&self) -> impl Iterator<Item = Dbu> + '_ {
        (0..self.count).map(move |i| self.coord(i))
    }

    /// `true` when `c` lies exactly on one of the tracks.
    #[must_use]
    pub fn is_on_track(&self, c: Dbu) -> bool {
        if self.count == 0 || c < self.start || c > self.last_coord() {
            return false;
        }
        (c - self.start) % self.step == 0
    }

    /// The phase of `c` relative to the pattern: `(c - start).rem_euclid(step)`.
    ///
    /// Two placements whose origins have the same phase w.r.t. every track
    /// pattern see identical on-/off-track conditions — this is the "offset
    /// to track patterns" component of the paper's unique-instance
    /// signature.
    #[must_use]
    pub fn phase(&self, c: Dbu) -> Dbu {
        (c - self.start).rem_euclid(self.step)
    }

    /// Track coordinates within the closed interval `[lo, hi]`.
    #[must_use]
    pub fn coords_in(&self, lo: Dbu, hi: Dbu) -> Vec<Dbu> {
        if self.count == 0 || hi < self.start || lo > self.last_coord() {
            return Vec::new();
        }
        let first = if lo <= self.start {
            0
        } else {
            ((lo - self.start) + self.step - 1) / self.step
        };
        let last = if hi >= self.last_coord() {
            Dbu::from(self.count) - 1
        } else {
            (hi - self.start) / self.step
        };
        (first..=last).map(|i| self.start + i * self.step).collect()
    }

    /// Midpoints between consecutive tracks within `[lo, hi]` — the
    /// *half-track* coordinates of the paper.
    #[must_use]
    pub fn half_track_coords_in(&self, lo: Dbu, hi: Dbu) -> Vec<Dbu> {
        if self.count < 2 {
            return Vec::new();
        }
        let half = TrackPattern {
            dir: self.dir,
            start: self.start + self.step / 2,
            step: self.step,
            count: self.count - 1,
            layers: self.layers.clone(),
        };
        half.coords_in(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat() -> TrackPattern {
        TrackPattern::new(Dir::Horizontal, 140, 280, 10, vec![LayerId(0)])
    }

    #[test]
    fn coords_arithmetic() {
        let t = pat();
        assert_eq!(t.coord(0), 140);
        assert_eq!(t.coord(9), 140 + 9 * 280);
        assert_eq!(t.last_coord(), 2660);
        assert_eq!(t.coords().count(), 10);
    }

    #[test]
    fn on_track_checks_range_and_phase() {
        let t = pat();
        assert!(t.is_on_track(140));
        assert!(t.is_on_track(2660));
        assert!(!t.is_on_track(140 - 280)); // before first track
        assert!(!t.is_on_track(2660 + 280)); // past last track
        assert!(!t.is_on_track(141));
    }

    #[test]
    fn phase_is_origin_offset() {
        let t = pat();
        assert_eq!(t.phase(140), 0);
        assert_eq!(t.phase(150), 10);
        assert_eq!(t.phase(130), 270); // rem_euclid keeps it non-negative
        assert_eq!(t.phase(140 + 280 * 5 + 17), 17);
    }

    #[test]
    fn coords_in_window() {
        let t = pat();
        assert_eq!(t.coords_in(0, 139), Vec::<Dbu>::new());
        assert_eq!(t.coords_in(0, 140), vec![140]);
        assert_eq!(t.coords_in(141, 699), vec![420]);
        assert_eq!(t.coords_in(400, 1000), vec![420, 700, 980]);
        assert_eq!(t.coords_in(2661, 99_999), Vec::<Dbu>::new());
        // Full range.
        assert_eq!(t.coords_in(Dbu::MIN / 2, Dbu::MAX / 2).len(), 10);
    }

    #[test]
    fn half_tracks_are_midpoints() {
        let t = pat();
        let halves = t.half_track_coords_in(0, 1000);
        assert_eq!(halves, vec![280, 560, 840]);
        // A single-track pattern has no half-tracks.
        let single = TrackPattern::new(Dir::Vertical, 0, 100, 1, vec![]);
        assert!(single.half_track_coords_in(-1000, 1000).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_step() {
        let _ = TrackPattern::new(Dir::Horizontal, 0, 0, 1, vec![]);
    }
}
