//! Design I/O pins.

use pao_geom::{Orient, Point, Rect, Transform};
use pao_tech::{LayerId, PinDir, PinUse, Symbol};

/// A design-level I/O pin (a DEF `PINS` entry): a single rectangle on a
/// routing layer placed at a location/orientation.
///
/// ```
/// use pao_design::IoPin;
/// use pao_geom::{Orient, Point, Rect};
/// use pao_tech::LayerId;
///
/// let p = IoPin::new("clk", "clk", LayerId(2), Rect::new(-35, -35, 35, 35),
///                    Point::new(0, 5000), Orient::N);
/// assert_eq!(p.placed_rect(), Rect::new(-35, 4965, 35, 5035));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoPin {
    /// Pin name (interned).
    pub name: Symbol,
    /// Net this pin belongs to (interned).
    pub net: Symbol,
    /// Layer of the pin shape.
    pub layer: LayerId,
    /// Pin shape relative to the pin location.
    pub rect: Rect,
    /// Placement location.
    pub location: Point,
    /// Placement orientation.
    pub orient: Orient,
    /// Signal direction.
    pub dir: PinDir,
    /// Electrical use.
    pub use_: PinUse,
}

impl IoPin {
    /// Creates a signal I/O pin.
    #[must_use]
    pub fn new(
        name: impl Into<Symbol>,
        net: impl Into<Symbol>,
        layer: LayerId,
        rect: Rect,
        location: Point,
        orient: Orient,
    ) -> IoPin {
        IoPin {
            name: name.into(),
            net: net.into(),
            layer,
            rect,
            location,
            orient,
            dir: PinDir::Input,
            use_: PinUse::Signal,
        }
    }

    /// The pin shape in die coordinates.
    #[must_use]
    pub fn placed_rect(&self) -> Rect {
        // DEF pin geometry is relative to the pin location; the orientation
        // rotates the shape about that location.
        let t = Transform::new(self.location, self.orient, 0, 0);
        t.apply_rect(self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placed_rect_translates() {
        let p = IoPin::new(
            "in0",
            "n1",
            LayerId(2),
            Rect::new(-35, -35, 35, 35),
            Point::new(1000, 2000),
            Orient::N,
        );
        assert_eq!(p.placed_rect(), Rect::new(965, 1965, 1035, 2035));
    }

    #[test]
    fn orientation_rotates_about_location() {
        let p = IoPin::new(
            "in0",
            "n1",
            LayerId(2),
            Rect::new(0, -10, 50, 10),
            Point::new(100, 100),
            Orient::S,
        );
        // S = 180° about the location (size 0 master).
        assert_eq!(p.placed_rect(), Rect::new(50, 90, 100, 110));
    }
}
