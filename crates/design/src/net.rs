//! Signal nets.

use crate::component::CompId;
use pao_tech::Symbol;
use std::fmt;

/// Index of a net in its [`Design`](crate::Design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The net index as a `usize` for direct slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A terminal of a net: either a component pin or a design I/O pin.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NetPin {
    /// A pin of a placed component, by component id and pin name.
    Comp {
        /// The component.
        comp: CompId,
        /// The master pin name (interned).
        pin: Symbol,
    },
    /// A design I/O pin, by index into the design's I/O pin list.
    Io {
        /// Index into [`Design::io_pins`](crate::Design::io_pins).
        index: u32,
    },
}

/// A signal net connecting component pins and I/O pins (a DEF `NETS`
/// entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name (interned).
    pub name: Symbol,
    /// Terminals in declaration order.
    pub pins: Vec<NetPin>,
}

impl Net {
    /// Creates a net with no terminals.
    #[must_use]
    pub fn new(name: impl Into<Symbol>) -> Net {
        Net {
            name: name.into(),
            pins: Vec::new(),
        }
    }

    /// Number of terminals.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Component terminals only.
    pub fn comp_pins(&self) -> impl Iterator<Item = (CompId, Symbol)> + '_ {
        self.pins.iter().filter_map(|p| match p {
            NetPin::Comp { comp, pin } => Some((*comp, *pin)),
            NetPin::Io { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_terminals() {
        let mut n = Net::new("n1");
        n.pins.push(NetPin::Comp {
            comp: CompId(0),
            pin: "A".into(),
        });
        n.pins.push(NetPin::Io { index: 3 });
        n.pins.push(NetPin::Comp {
            comp: CompId(7),
            pin: "Y".into(),
        });
        assert_eq!(n.degree(), 3);
        let comps: Vec<(CompId, Symbol)> = n.comp_pins().collect();
        assert_eq!(
            comps,
            vec![(CompId(0), "A".into()), (CompId(7), "Y".into())]
        );
    }
}
