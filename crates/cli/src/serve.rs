//! `pao serve` — the resident pin access oracle daemon — and `pao call`,
//! its scriptable line-oriented client.
//!
//! The daemon loads LEF/DEF once, analyzes the design into an
//! [`OracleService`] and then answers queries over a Unix domain socket
//! (`--socket PATH`) or TCP (`--tcp ADDR`). The wire protocol is
//! line-delimited JSON-RPC: one request object per line in, one response
//! object per line out, parsed and validated with the in-repo JSON
//! parser (`pao_obs::json`) — no external dependency.
//!
//! ```text
//! -> {"id":1,"method":"get_pin_access","params":{"inst":"u17","pin":"A"}}
//! <- {"id":1,"result":{"inst":"u17","pin":"A","selected":{...},...}}
//! ```
//!
//! Methods: `get_pin_access`, `get_instance_patterns`,
//! `get_cluster_selection`, `eco_update`, `dump_selection`, `stats`,
//! `batch` (params = array of requests, fanned onto the work-stealing
//! executor) and `shutdown`. Queries are pure reads over the service's
//! immutable snapshots, so concurrent connections get byte-identical
//! answers at any thread count; `eco_update` swaps the snapshots
//! copy-on-write behind a write lock.
//!
//! # Hardening (DESIGN.md §17)
//!
//! The wire layer trusts nothing: frames are read through a bounded
//! scanner (`--max-frame-bytes`, oversized input is drained and rejected
//! with `-32002` without ever being buffered), connections are capped
//! (`--max-conns`, excess is shed with `-32001` + a `retry_after_ms`
//! hint), each connection is bounded in requests (`--max-requests` →
//! `-32003`) and lifetime (`--idle-ms`), and concurrently dispatching
//! requests are capped (`--max-inflight` → `-32001`). ECO durability
//! comes from a write-ahead journal (`--checkpoint DIR` or `--journal
//! FILE`): accepted batches are fsynced *before* analysis and replayed
//! with `--resume`, so a `kill -9` restarts bit-identical to a daemon
//! that never died. An ECO whose re-analysis degrades (deadline,
//! watchdog stall, quarantined fault) keeps the previous snapshot
//! serving and answers `-32004` with the degrade breakdown. All of it is
//! counted in the `serve` object of `stats` and summarized at shutdown.

use crate::args::Args;
use crate::{load_world, open_checkpoint, parse_budget_flags, CliError};
use pao_core::{
    EcoJournal, EcoMove, EcoTarget, OracleService, PaoConfig, RunBudget, ServiceError, Watchdog,
};
use pao_geom::Point;
use pao_obs::json::{self, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// JSON-RPC error codes: the standard ones, `1` for typed service errors
/// like "unknown instance" that are the *request's* fault, and the
/// implementation-defined `-32xxx` admission/degradation codes.
const PARSE_ERROR: i64 = -32700;
const INVALID_REQUEST: i64 = -32600;
const METHOD_NOT_FOUND: i64 = -32601;
const INVALID_PARAMS: i64 = -32602;
const INTERNAL_ERROR: i64 = -32603;
const SERVICE_ERROR: i64 = 1;
/// Load shed: too many connections or in-flight requests. The error's
/// `data.retry_after_ms` tells the client when to try again.
const OVERLOADED: i64 = -32001;
/// The request frame exceeded `--max-frame-bytes`; it was drained and
/// discarded, the connection stays usable.
const FRAME_TOO_LARGE: i64 = -32002;
/// The connection served its `--max-requests` budget and is closed.
const REQUEST_CAP: i64 = -32003;
/// An `eco_update` degraded (deadline/watchdog/fault); the previous
/// snapshot is still serving. `data` carries the breakdown.
const DEADLINE_EXCEEDED: i64 = -32004;

/// How long a shed client should wait before retrying, reported in the
/// `-32001` error's `data.retry_after_ms`.
const RETRY_AFTER_MS: u64 = 200;

/// A typed JSON-RPC error: code, message, optional `data` payload
/// (already-serialized JSON).
type RpcError = (i64, String, Option<String>);

fn rpc_err(code: i64, message: impl Into<String>) -> RpcError {
    (code, message.into(), None)
}

/// Admission limits, parsed once from flags (see module docs).
#[derive(Clone, Copy)]
struct Limits {
    max_frame_bytes: usize,
    max_conns: u64,
    max_requests: u64,
    idle: Option<Duration>,
    max_inflight: u64,
}

/// Wire/admission counters. Plain atomics (not `pao_obs` counters)
/// because connection threads outlive any metrics flush point — the
/// `stats` method must read exact values at any instant. Mirrored into
/// `pao_obs` counters as they happen for trace/profile tooling.
#[derive(Default)]
struct ServeCounters {
    requests: AtomicU64,
    active_conns: AtomicU64,
    shed_conns: AtomicU64,
    shed_requests: AtomicU64,
    oversized: AtomicU64,
    request_capped: AtomicU64,
    idle_closed: AtomicU64,
    inflight: AtomicU64,
    inflight_peak: AtomicU64,
    eco_degraded: AtomicU64,
    journal_replayed: AtomicU64,
}

impl ServeCounters {
    fn bump(counter: &AtomicU64, obs_name: &'static str) {
        counter.fetch_add(1, Ordering::SeqCst);
        pao_obs::counter_add(obs_name, 1);
    }
}

/// The daemon's listening endpoint. The Unix variant remembers its path
/// so shutdown can unlink the socket file.
enum Listener {
    Unix(UnixListener, String),
    Tcp(TcpListener),
}

/// One accepted (or client-side connected) connection.
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    fn endpoint(&self) -> String {
        match self {
            Listener::Unix(_, path) => format!("unix:{path}"),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:?".to_owned(),
            },
        }
    }
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(t),
            Stream::Tcp(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    service: RwLock<OracleService>,
    shutdown: AtomicBool,
    threads: usize,
    /// Default deadline applied to `eco_update` requests that carry no
    /// `deadline_ms` of their own (from `--deadline-ms`).
    eco_deadline: Option<Duration>,
    /// Watchdog armed on ECO re-analyses (stall detection).
    eco_watchdog: Option<Watchdog>,
    limits: Limits,
    counters: ServeCounters,
}

impl Shared {
    /// Read access to the service, recovering from a poisoned lock (a
    /// panicking request must not take the daemon down — snapshots are
    /// swapped atomically, so the state is always consistent).
    fn read(&self) -> RwLockReadGuard<'_, OracleService> {
        match self.service.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, OracleService> {
        match self.service.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Serializes the request's `id` for echoing back (number or string;
/// anything else degrades to `null`).
fn id_token(req: &Value) -> String {
    match req.get("id") {
        Some(Value::Num(_)) => match req.get("id").and_then(Value::as_i64) {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        },
        Some(Value::Str(s)) => json::quote(s),
        _ => "null".to_owned(),
    }
}

fn ok_resp(id: &str, result: &str) -> String {
    format!("{{\"id\":{id},\"result\":{result}}}")
}

fn err_resp(id: &str, code: i64, message: &str) -> String {
    err_resp_data(id, code, message, None)
}

/// Error response with an optional structured `data` member (`data` must
/// already be serialized JSON).
fn err_resp_data(id: &str, code: i64, message: &str, data: Option<&str>) -> String {
    match data {
        Some(d) => format!(
            "{{\"id\":{id},\"error\":{{\"code\":{code},\"message\":{},\"data\":{d}}}}}",
            json::quote(message)
        ),
        None => format!(
            "{{\"id\":{id},\"error\":{{\"code\":{code},\"message\":{}}}}}",
            json::quote(message)
        ),
    }
}

/// The `-32001` shed response with its retry-after hint.
fn overloaded_resp(id: &str, what: &str) -> String {
    err_resp_data(
        id,
        OVERLOADED,
        &format!("overloaded: {what}"),
        Some(&format!("{{\"retry_after_ms\":{RETRY_AFTER_MS}}}")),
    )
}

/// A required string parameter.
fn str_param<'a>(req: &'a Value, key: &str) -> Result<&'a str, RpcError> {
    req.get("params")
        .and_then(|p| p.get(key))
        .and_then(Value::as_str)
        .ok_or_else(|| rpc_err(INVALID_PARAMS, format!("missing string param `{key}`")))
}

fn svc_err(e: &ServiceError) -> RpcError {
    rpc_err(SERVICE_ERROR, e.to_string())
}

/// One access point as a JSON object (die-frame coordinates, layer by
/// name, coordinate types by their display labels).
fn ap_json(tech: &pao_tech::Tech, ap: &pao_core::AccessPoint) -> String {
    format!(
        "{{\"x\":{},\"y\":{},\"layer\":{},\"pref\":{},\"nonpref\":{},\"vias\":{}}}",
        ap.pos.x,
        ap.pos.y,
        json::quote(&tech.layer(ap.layer).name),
        json::quote(&ap.pref_type.to_string()),
        json::quote(&ap.nonpref_type.to_string()),
        ap.vias.len(),
    )
}

fn usize_list(items: &[usize]) -> String {
    let strs: Vec<String> = items.iter().map(ToString::to_string).collect();
    strs.join(",")
}

/// Parses the `moves` array of an `eco_update` request: each entry names
/// an instance and either an absolute target (`x` + `y`) or a relative
/// one (`dx` / `dy`).
fn parse_moves(req: &Value) -> Result<Vec<EcoMove>, RpcError> {
    let bad = |m: String| rpc_err(INVALID_PARAMS, m);
    let items = req
        .get("params")
        .and_then(|p| p.get("moves"))
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing `moves` array".to_owned()))?;
    let mut moves = Vec::with_capacity(items.len());
    for item in items {
        let inst = item
            .get("inst")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("move missing string `inst`".to_owned()))?
            .to_owned();
        let coord = |key: &str| item.get(key).and_then(Value::as_i64);
        let (x, y) = (coord("x"), coord("y"));
        let (dx, dy) = (coord("dx"), coord("dy"));
        let target = match (x, y, dx.or(dy)) {
            (Some(x), Some(y), None) => EcoTarget::Abs(Point { x, y }),
            (None, None, Some(_)) => EcoTarget::Delta(Point {
                x: dx.unwrap_or(0),
                y: dy.unwrap_or(0),
            }),
            _ => return Err(bad(format!("move for `{inst}` needs either x+y or dx/dy"))),
        };
        moves.push(EcoMove { inst, target });
    }
    Ok(moves)
}

/// The `serve` counters object embedded in `stats` responses.
fn serve_json(shared: &Shared) -> String {
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::SeqCst);
    let (journal_entries, degraded_ecos) = {
        let svc = shared.read();
        (
            svc.journal().map_or(0, pao_core::EcoJournal::entries),
            svc.degraded_ecos(),
        )
    };
    format!(
        concat!(
            "{{\"requests\":{},\"active_conns\":{},\"shed_conns\":{},",
            "\"shed_requests\":{},\"oversized\":{},\"request_capped\":{},",
            "\"idle_closed\":{},\"inflight\":{},\"inflight_peak\":{},",
            "\"eco_degraded\":{},\"journal_replayed\":{},\"journal_entries\":{}}}"
        ),
        get(&c.requests),
        get(&c.active_conns),
        get(&c.shed_conns),
        get(&c.shed_requests),
        get(&c.oversized),
        get(&c.request_capped),
        get(&c.idle_closed),
        get(&c.inflight),
        get(&c.inflight_peak),
        get(&c.eco_degraded).max(degraded_ecos),
        get(&c.journal_replayed),
        journal_entries,
    )
}

/// Runs one method and returns its `result` payload.
fn method_result(method: &str, req: &Value, shared: &Shared) -> Result<String, RpcError> {
    match method {
        "get_pin_access" => {
            let inst = str_param(req, "inst")?;
            let pin = str_param(req, "pin")?;
            let svc = shared.read();
            let r = svc.pin_access(inst, pin).map_err(|e| svc_err(&e))?;
            let tech = svc.tech();
            let selected = r
                .selected
                .as_ref()
                .map_or_else(|| "null".to_owned(), |ap| ap_json(tech, ap));
            let candidates: Vec<String> = r.candidates.iter().map(|ap| ap_json(tech, ap)).collect();
            let rejects: Vec<String> = r
                .rejects
                .iter()
                .map(|rc| {
                    format!(
                        "{{\"rule\":{},\"count\":{}}}",
                        json::quote(&rc.rule),
                        rc.count
                    )
                })
                .collect();
            Ok(format!(
                "{{\"inst\":{},\"pin\":{},\"selected\":{},\"from_override\":{},\"candidates\":[{}],\"rejects\":[{}]}}",
                json::quote(&r.inst),
                json::quote(&r.pin),
                selected,
                r.from_override,
                candidates.join(","),
                rejects.join(","),
            ))
        }
        "get_instance_patterns" => {
            let inst = str_param(req, "inst")?;
            let svc = shared.read();
            let r = svc.instance_patterns(inst).map_err(|e| svc_err(&e))?;
            let patterns: Vec<String> = r
                .patterns
                .iter()
                .map(|p| {
                    format!(
                        "{{\"cost\":{},\"validated\":{},\"choice\":[{}]}}",
                        p.cost,
                        p.validated,
                        usize_list(&p.choice),
                    )
                })
                .collect();
            Ok(format!(
                "{{\"inst\":{},\"master\":{},\"unique_index\":{},\"members\":{},\"pin_order\":[{}],\"patterns\":[{}]}}",
                json::quote(&r.inst),
                json::quote(&r.master),
                r.unique_index,
                r.members,
                usize_list(&r.pin_order),
                patterns.join(","),
            ))
        }
        "get_cluster_selection" => {
            let inst = str_param(req, "inst")?;
            let svc = shared.read();
            let r = svc.cluster_selection(inst).map_err(|e| svc_err(&e))?;
            let tech = svc.tech();
            let pattern = r
                .pattern
                .map_or_else(|| "null".to_owned(), |p| p.to_string());
            let overrides: Vec<String> = r
                .overrides
                .iter()
                .map(|(pin, ap)| format!("{{\"pin\":{pin},\"ap\":{}}}", ap_json(tech, ap)))
                .collect();
            Ok(format!(
                "{{\"inst\":{},\"pattern\":{},\"overrides\":[{}]}}",
                json::quote(&r.inst),
                pattern,
                overrides.join(","),
            ))
        }
        "dump_selection" => {
            let svc = shared.read();
            Ok(format!(
                "{{\"dump\":{}}}",
                json::quote(&svc.selection_dump())
            ))
        }
        "stats" => {
            let serve = serve_json(shared);
            let svc = shared.read();
            let (hits, misses) = svc.cache_stats();
            let sym = pao_tech::symbol_stats();
            pao_obs::gauge_max("symbol.interned", sym.interned as u64);
            pao_obs::gauge_max("symbol.arena_bytes", sym.arena_bytes as u64);
            let stats = &svc.result().stats;
            let fr = svc.fractions().snapshot().0;
            let fr_strs: Vec<String> = fr.iter().map(|f| format!("{f:.4}")).collect();
            Ok(format!(
                concat!(
                    "{{\"design\":{},\"components\":{},\"nets\":{},",
                    "\"unique_instances\":{},\"total_aps\":{},\"failed_pins\":{},",
                    "\"eco_updates\":{},\"cache\":{{\"hits\":{},\"misses\":{}}},",
                    "\"symbol\":{{\"interned\":{},\"arena_bytes\":{}}},",
                    "\"server\":{{\"requests\":{}}},\"serve\":{},\"fractions\":[{}]}}"
                ),
                json::quote(&svc.design().name),
                svc.design().components().len(),
                svc.design().nets().len(),
                stats.unique_instances,
                stats.total_aps,
                stats.failed_pins,
                svc.eco_updates(),
                hits,
                misses,
                sym.interned,
                sym.arena_bytes,
                shared.counters.requests.load(Ordering::SeqCst),
                serve,
                fr_strs.join(","),
            ))
        }
        "eco_update" => {
            let moves = parse_moves(req)?;
            let deadline = req
                .get("params")
                .and_then(|p| p.get("deadline_ms"))
                .and_then(Value::as_i64)
                .map(|ms| Duration::from_millis(ms.max(0) as u64))
                .or(shared.eco_deadline);
            let mut svc = shared.write();
            match svc.eco_update(&moves, deadline, shared.eco_watchdog) {
                Ok(r) => Ok(format!(
                    concat!(
                        "{{\"moved\":{},\"cache_hits\":{},\"cache_misses\":{},",
                        "\"full_reanalysis\":{},\"failed_pins\":{},\"eco_seq\":{}}}"
                    ),
                    r.moved,
                    r.cache_hits,
                    r.cache_misses,
                    r.full_reanalysis,
                    r.failed_pins,
                    r.eco_seq,
                )),
                Err(
                    e @ ServiceError::EcoDegraded {
                        quarantined,
                        skipped,
                        stalls,
                    },
                ) => {
                    ServeCounters::bump(&shared.counters.eco_degraded, "serve.eco_degraded");
                    pao_obs::warn_limited("serve.eco_degraded", Duration::from_secs(5), || {
                        format!("pao serve: {e}")
                    });
                    Ok(String::new()).and(Err((
                        DEADLINE_EXCEEDED,
                        e.to_string(),
                        Some(format!(
                            "{{\"quarantined\":{quarantined},\"skipped\":{skipped},\"stalls\":{stalls}}}"
                        )),
                    )))
                }
                Err(e @ ServiceError::Journal(_)) => Err(rpc_err(INTERNAL_ERROR, e.to_string())),
                Err(e) => Err(svc_err(&e)),
            }
        }
        _ => Err(rpc_err(
            METHOD_NOT_FOUND,
            format!("unknown method `{method}`"),
        )),
    }
}

/// Handles a `batch` request: params is an array of request objects.
/// Read-only batches fan out onto the work-stealing executor (responses
/// come back in input order — the executor preserves it); a batch
/// containing `eco_update` runs sequentially in order, because an ECO
/// must observe the queries before it and be observed by those after.
fn handle_batch(id: &str, req: &Value, shared: &Shared) -> String {
    let Some(items) = req.get("params").and_then(Value::as_array) else {
        return err_resp(
            id,
            INVALID_PARAMS,
            "batch params must be an array of requests",
        );
    };
    pao_obs::hist_record("server.batch_size", items.len() as u64);
    let has_eco = items
        .iter()
        .any(|r| r.get("method").and_then(Value::as_str) == Some("eco_update"));
    let responses: Vec<String> = if has_eco {
        items
            .iter()
            .map(|r| dispatch_request(r, shared, false).0)
            .collect()
    } else {
        let refs: Vec<&Value> = items.iter().collect();
        pao_core::parallel::parallel_map(shared.threads, refs, |r| {
            dispatch_request(r, shared, false).0
        })
    };
    ok_resp(id, &format!("[{}]", responses.join(",")))
}

/// Dispatches one parsed request. Returns the response line and whether
/// the daemon should shut down *after* the response is flushed.
/// `allow_control` is false inside a batch: nested `batch`/`shutdown`
/// are rejected there.
fn dispatch_request(req: &Value, shared: &Shared, allow_control: bool) -> (String, bool) {
    let _span = pao_obs::span("server.request");
    pao_obs::counter_add("server.requests", 1);
    shared.counters.requests.fetch_add(1, Ordering::SeqCst);
    let id = id_token(req);
    let Some(method) = req.get("method").and_then(Value::as_str) else {
        return (
            err_resp(&id, INVALID_REQUEST, "request needs a string `method`"),
            false,
        );
    };
    match method {
        "shutdown" if allow_control => (ok_resp(&id, "{\"ok\":true}"), true),
        "batch" if allow_control => (handle_batch(&id, req, shared), false),
        "shutdown" | "batch" => (
            err_resp(
                &id,
                INVALID_REQUEST,
                "control methods are not allowed in a batch",
            ),
            false,
        ),
        _ => match method_result(method, req, shared) {
            Ok(result) => (ok_resp(&id, &result), false),
            Err((code, message, data)) => {
                (err_resp_data(&id, code, &message, data.as_deref()), false)
            }
        },
    }
}

/// Parses and dispatches one request line.
fn dispatch_line(line: &str, shared: &Shared) -> (String, bool) {
    match json::parse(line) {
        Ok(req) => dispatch_request(&req, shared, true),
        Err(e) => (
            err_resp("null", PARSE_ERROR, &format!("parse error: {e}")),
            false,
        ),
    }
}

/// One bounded frame read (see [`read_frame`]).
enum Frame {
    /// A complete newline-terminated line, lossily decoded (binary
    /// garbage becomes U+FFFD and fails JSON parsing — a request error,
    /// never a dead connection).
    Line(String),
    /// The frame exceeded the size limit; its bytes were drained and
    /// discarded without being buffered.
    Oversized,
    /// No bytes arrived within the idle window.
    Idle,
    /// Peer closed (or the transport failed).
    Eof,
}

/// Reads one `\n`-terminated frame with a hard size cap. Accumulation
/// stops at `max` bytes: the rest of an oversized line is consumed and
/// dropped, so a hostile client cannot grow daemon memory past
/// `max + BufReader` capacity per connection.
fn read_frame(reader: &mut BufReader<Stream>, max: usize) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropping = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return Frame::Eof,
            Ok(c) => c,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Frame::Idle;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Frame::Eof,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let oversized = dropping || buf.len() + pos > max;
                if !oversized {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                if oversized {
                    return Frame::Oversized;
                }
                return Frame::Line(String::from_utf8_lossy(&buf).into_owned());
            }
            None => {
                let len = chunk.len();
                if !dropping {
                    if buf.len() + len > max {
                        dropping = true;
                        buf = Vec::new();
                    } else {
                        buf.extend_from_slice(chunk);
                    }
                }
                reader.consume(len);
            }
        }
    }
}

/// Serves one connection: read a frame, answer a line, until EOF, idle
/// timeout, request cap, or shutdown. Every outgoing line is
/// re-validated with the in-repo JSON parser — an invalid response is a
/// `pao` bug and is reported as one.
fn handle_conn(stream: Stream, shared: &Shared) {
    /// Decrements `active_conns` however the thread exits (including a
    /// request panic unwinding through the dispatch).
    struct ConnGuard<'a>(&'a ServeCounters);
    impl Drop for ConnGuard<'_> {
        fn drop(&mut self) {
            self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let c = &shared.counters;
    let _guard = ConnGuard(c); // incremented by the accept loop
    let _ = stream.set_read_timeout(shared.limits.idle);
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(reader_half);
    let mut served: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let (mut resp, shutdown_after, close_after) =
            match read_frame(&mut reader, shared.limits.max_frame_bytes) {
                Frame::Eof => break,
                Frame::Idle => {
                    ServeCounters::bump(&c.idle_closed, "serve.idle_closed");
                    break;
                }
                Frame::Oversized => {
                    ServeCounters::bump(&c.oversized, "serve.oversized");
                    pao_obs::warn_limited("serve.oversized", Duration::from_secs(5), || {
                        format!(
                            "pao serve: oversized frame rejected (limit {} bytes)",
                            shared.limits.max_frame_bytes
                        )
                    });
                    (
                        err_resp(
                            "null",
                            FRAME_TOO_LARGE,
                            &format!(
                                "frame exceeds {} bytes and was discarded",
                                shared.limits.max_frame_bytes
                            ),
                        ),
                        false,
                        false,
                    )
                }
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    served += 1;
                    if served > shared.limits.max_requests {
                        ServeCounters::bump(&c.request_capped, "serve.request_capped");
                        (
                            err_resp(
                                "null",
                                REQUEST_CAP,
                                &format!(
                                    "connection served its {} request budget",
                                    shared.limits.max_requests
                                ),
                            ),
                            false,
                            true,
                        )
                    } else {
                        // In-flight admission: bound the number of requests
                        // dispatching concurrently across all connections.
                        let inflight = c.inflight.fetch_add(1, Ordering::SeqCst) + 1;
                        c.inflight_peak.fetch_max(inflight, Ordering::SeqCst);
                        let out = if inflight > shared.limits.max_inflight {
                            ServeCounters::bump(&c.shed_requests, "serve.shed_requests");
                            pao_obs::warn_limited(
                                "serve.shed_requests",
                                Duration::from_secs(5),
                                || "pao serve: shedding requests (inflight cap)".to_owned(),
                            );
                            let id = json::parse(&line)
                                .map_or_else(|_| "null".to_owned(), |r| id_token(&r));
                            (overloaded_resp(&id, "too many in-flight requests"), false)
                        } else {
                            dispatch_line(&line, shared)
                        };
                        c.inflight.fetch_sub(1, Ordering::SeqCst);
                        (out.0, out.1, false)
                    }
                }
            };
        if let Err(e) = json::validate(&resp) {
            resp = err_resp(
                "null",
                INTERNAL_ERROR,
                &format!("invalid response generated: {e}"),
            );
        }
        resp.push('\n');
        // An accepted shutdown is latched *before* the response write: a
        // client that hangs up without reading the reply must not cancel
        // the shutdown it requested.
        if shutdown_after {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        if writer
            .write_all(resp.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown_after {
            break;
        }
        if close_after || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Binds the requested endpoint (exactly one of `--socket`/`--tcp`).
/// An existing Unix socket file is probe-connected first: a live daemon
/// answers, so the bind is refused; a dead one leaves a stale file,
/// which is unlinked and reclaimed.
fn bind(args: &Args) -> Result<Listener, CliError> {
    match (args.value("--socket"), args.value("--tcp")) {
        (Some(path), None) => {
            if Path::new(path).exists() {
                match UnixStream::connect(path) {
                    Ok(_) => {
                        return Err(CliError::input(format!(
                            "socket `{path}` is in use by a live daemon (connect it, or remove the file if that is wrong)"
                        )));
                    }
                    Err(_) => {
                        // Stale socket from a killed daemon: reclaim it.
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
            UnixListener::bind(path)
                .map(|l| Listener::Unix(l, path.to_owned()))
                .map_err(|e| CliError::input(format!("cannot bind `{path}`: {e}")))
        }
        (None, Some(addr)) => TcpListener::bind(addr)
            .map(Listener::Tcp)
            .map_err(|e| CliError::input(format!("cannot bind `{addr}`: {e}"))),
        _ => Err(CliError::usage(
            "serve requires exactly one of --socket PATH or --tcp ADDR",
        )),
    }
}

/// Parses one `--name N` numeric flag with a default.
pub(crate) fn flag_u64(args: &Args, name: &str, default: u64) -> Result<u64, CliError> {
    match args.value(name) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("{name} expects a number"))),
        None => Ok(default),
    }
}

/// Parses the admission-control flags into [`Limits`].
fn parse_limits(args: &Args) -> Result<Limits, CliError> {
    let idle_ms = flag_u64(args, "--idle-ms", 300_000)?;
    Ok(Limits {
        max_frame_bytes: flag_u64(args, "--max-frame-bytes", 1 << 20)?.max(1) as usize,
        max_conns: flag_u64(args, "--max-conns", 64)?.max(1),
        max_requests: flag_u64(args, "--max-requests", 1_000_000)?.max(1),
        idle: (idle_ms > 0).then(|| Duration::from_millis(idle_ms)),
        max_inflight: flag_u64(args, "--max-inflight", 256)?.max(1),
    })
}

/// Creates or resumes the ECO write-ahead journal. The path comes from
/// `--journal FILE` or defaults to `<checkpoint-dir>/eco.journal`; with
/// neither flag the daemon runs journal-less (ECOs are not durable).
/// Returns the replayed-entry count.
fn setup_journal(args: &Args, service: &mut OracleService) -> Result<u64, CliError> {
    let path: Option<std::path::PathBuf> = match args.value("--journal") {
        Some(p) => Some(p.into()),
        None => args
            .value("--checkpoint")
            .map(|dir| Path::new(dir).join("eco.journal")),
    };
    let Some(path) = path else {
        return Ok(0);
    };
    if args.flag("--resume") {
        let (journal, entries, warn) = EcoJournal::resume(&path).map_err(|e| {
            CliError::input(format!("cannot resume journal `{}`: {e}", path.display()))
        })?;
        if let Some(w) = warn {
            eprintln!("warning: {}", pao_core::PaoError::from(w));
        }
        let replayed = if entries.is_empty() {
            0
        } else {
            eprintln!(
                "pao serve: replaying {} journaled ECO batch(es) …",
                entries.len()
            );
            service
                .replay(&entries)
                .map_err(|e| CliError::input(format!("journal replay failed: {e}")))?
        };
        service.attach_journal(journal);
        Ok(replayed)
    } else {
        let journal = EcoJournal::create(&path).map_err(|e| {
            CliError::input(format!("cannot create journal `{}`: {e}", path.display()))
        })?;
        service.attach_journal(journal);
        Ok(0)
    }
}

/// `pao serve <tech.lef> <design.def> (--socket PATH | --tcp ADDR) …`
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    for name in [
        "--socket",
        "--tcp",
        "--threads",
        "--max-frame-bytes",
        "--max-conns",
        "--max-requests",
        "--idle-ms",
        "--max-inflight",
        "--journal",
    ] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    // Endpoint usage errors must fire before the (potentially long)
    // load + analysis; `bind` re-checks when it actually binds.
    if usize::from(args.value("--socket").is_some()) + usize::from(args.value("--tcp").is_some())
        != 1
    {
        return Err(CliError::usage(
            "serve requires exactly one of --socket PATH or --tcp ADDR",
        ));
    }
    let limits = parse_limits(args)?;
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    pao_obs::enable_metrics();
    let mut cfg = PaoConfig::default();
    if let Some(t) = args.value("--threads") {
        cfg.threads = t
            .parse()
            .map_err(|_| CliError::usage("--threads expects a number"))?;
    }
    let (deadline, watchdog) = parse_budget_flags(args)?;
    // `parse_budget_flags` arms `--inject-stall` immediately; injection
    // on the daemon targets the *first ECO*, not the load — disarm now
    // and re-arm once the service is resident.
    pao_core::fault::disarm();
    let mut store = open_checkpoint(args)?;
    let fractions = store
        .as_ref()
        .and_then(pao_core::CheckpointStore::fractions)
        .unwrap_or_default();
    let budget = RunBudget {
        deadline: None, // the load is not deadline-cut; --deadline-ms bounds ECOs
        fractions,
        watchdog,
        checkpoint: store.as_mut(),
    };
    let collect_rejects = !args.flag("--no-ledger");
    eprintln!(
        "pao serve: loading `{}` ({} components) …",
        design.name,
        design.components().len()
    );
    let threads = cfg.threads.max(1);
    let mut service = OracleService::start(tech, design, cfg, budget, collect_rejects);
    let replayed = setup_journal(args, &mut service)?;
    // Chaos arms: deterministic fault/stall injection against the first
    // ECO re-analysis (the load above ran clean).
    if let Some(spec) = args.value("--inject-fault") {
        crate::arm_injected_fault(spec)?;
    }
    if let Some(spec) = args.value("--inject-stall") {
        crate::arm_injected_stall(spec)?;
    }
    let sym = pao_tech::symbol_stats();
    pao_obs::gauge_max("symbol.interned", sym.interned as u64);
    pao_obs::gauge_max("symbol.arena_bytes", sym.arena_bytes as u64);
    let listener = bind(args)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Internal(format!("cannot poll listener: {e}")))?;
    eprintln!(
        "pao serve: listening on {} ({} unique instances, {} failed pins)",
        listener.endpoint(),
        service.result().stats.unique_instances,
        service.result().stats.failed_pins,
    );
    let counters = ServeCounters::default();
    counters.journal_replayed.store(replayed, Ordering::SeqCst);
    pao_obs::counter_add("serve.journal_replayed", replayed);
    let shared = Arc::new(Shared {
        service: RwLock::new(service),
        shutdown: AtomicBool::new(false),
        threads,
        eco_deadline: deadline,
        eco_watchdog: watchdog,
        limits,
        counters,
    });
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                // Accepted sockets inherit the listener's non-blocking
                // flag on some platforms; request handling is blocking.
                let _ = stream.set_nonblocking(false);
                let active = shared.counters.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
                if active > shared.limits.max_conns {
                    // Connection-level shed: decline with the typed
                    // overloaded error. The write gets a short timeout so
                    // a client that never reads cannot stall the accept
                    // loop; dropping the stream closes it either way.
                    shared.counters.active_conns.fetch_sub(1, Ordering::SeqCst);
                    ServeCounters::bump(&shared.counters.shed_conns, "serve.shed_conns");
                    pao_obs::warn_limited("serve.shed_conns", Duration::from_secs(5), || {
                        format!(
                            "pao serve: shedding connections (cap {})",
                            shared.limits.max_conns
                        )
                    });
                    let mut s = stream;
                    let _ = s.set_write_timeout(Some(Duration::from_millis(100)));
                    let mut resp = overloaded_resp("null", "too many connections");
                    resp.push('\n');
                    let _ = s.write_all(resp.as_bytes());
                } else {
                    let conn_shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_conn(stream, &conn_shared));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("pao serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::SeqCst);
    eprintln!(
        "pao serve: shutdown ({} requests; shed {} conns + {} requests; {} oversized, {} idle-closed, {} request-capped; {} degraded ECOs; {} journal replays)",
        get(&c.requests),
        get(&c.shed_conns),
        get(&c.shed_requests),
        get(&c.oversized),
        get(&c.idle_closed),
        get(&c.request_capped),
        get(&c.eco_degraded),
        get(&c.journal_replayed),
    );
    Ok(())
}

/// The `--timeout-ms` client budget (connect retries *and* each response
/// read), default 15 s.
pub(crate) fn parse_timeout(args: &Args) -> Result<Duration, CliError> {
    Ok(Duration::from_millis(flag_u64(
        args,
        "--timeout-ms",
        15_000,
    )?))
}

/// The endpoint as a display string (also the jitter seed — every client
/// of one endpoint gets the same deterministic backoff schedule, a
/// different endpoint a different one; no wall-clock entropy).
fn endpoint_label(args: &Args) -> String {
    match (args.value("--socket"), args.value("--tcp")) {
        (Some(p), None) => format!("unix:{p}"),
        (None, Some(a)) => format!("tcp:{a}"),
        _ => String::new(),
    }
}

/// Connects to a running daemon, retrying with bounded exponential
/// backoff (10 ms doubling to 500 ms, deterministic seeded jitter, no
/// `rand`) until `--timeout-ms` expires — the daemon may still be
/// loading when the client starts.
pub(crate) fn connect(args: &Args, timeout: Duration) -> Result<Stream, CliError> {
    let attempt = || -> std::io::Result<Stream> {
        match (args.value("--socket"), args.value("--tcp")) {
            (Some(path), None) => UnixStream::connect(path).map(Stream::Unix),
            (None, Some(addr)) => TcpStream::connect(addr).map(Stream::Tcp),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "call requires exactly one of --socket PATH or --tcp ADDR",
            )),
        }
    };
    if usize::from(args.value("--socket").is_some()) + usize::from(args.value("--tcp").is_some())
        != 1
    {
        return Err(CliError::usage(
            "call requires exactly one of --socket PATH or --tcp ADDR",
        ));
    }
    let label = endpoint_label(args);
    let deadline = Instant::now() + timeout;
    let mut rng = pao_ptest::Rng::new(pao_ptest::case_seed(&label, 0));
    let mut backoff_ms: u64 = 10;
    loop {
        match attempt() {
            Ok(s) => return Ok(s),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(CliError::Transport(format!(
                        "cannot connect to {label} within {} ms: {e}",
                        timeout.as_millis()
                    )));
                }
                let jitter = rng.gen_range(0..=backoff_ms / 4);
                let sleep = Duration::from_millis(backoff_ms + jitter).min(deadline - now);
                std::thread::sleep(sleep);
                backoff_ms = (backoff_ms * 2).min(500);
            }
        }
    }
}

/// `pao call (--socket PATH | --tcp ADDR) [REQUEST …]`: sends each
/// request line (positionals, or stdin lines when none are given) and
/// prints the response lines. The scripting end of the serve smoke gate.
///
/// Transport failures — connect timeout, response-read timeout, the
/// server closing mid-exchange — exit 7, distinct from in-band JSON-RPC
/// errors (which print normally and exit 0: the *transport* worked).
pub fn cmd_call(args: &Args) -> Result<(), CliError> {
    for name in ["--socket", "--tcp", "--timeout-ms"] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    let timeout = parse_timeout(args)?;
    let mut stream = connect(args, timeout)?;
    // Per-response read budget: a daemon that accepts a request but
    // never answers must not hang the client.
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| CliError::Transport(format!("cannot set read timeout: {e}")))?;
    let reader_half = stream
        .try_clone()
        .map_err(|e| CliError::Transport(format!("cannot clone connection: {e}")))?;
    let mut reader = BufReader::new(reader_half);
    let mut requests: Vec<String> = Vec::new();
    let mut i = 1;
    while let Ok(p) = args.positional(i) {
        requests.push(p.to_owned());
        i += 1;
    }
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| CliError::input(format!("cannot read stdin: {e}")))?;
            requests.push(line);
        }
    }
    for req in requests {
        if req.trim().is_empty() {
            continue;
        }
        stream
            .write_all(req.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .map_err(|e| CliError::Transport(format!("cannot send request: {e}")))?;
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                CliError::Transport(format!("no response within {} ms", timeout.as_millis()))
            } else {
                CliError::Transport(format!("cannot read response: {e}"))
            }
        })?;
        if n == 0 {
            return Err(CliError::Transport(
                "server closed the connection".to_owned(),
            ));
        }
        print!("{resp}");
    }
    Ok(())
}

/// `pao profile (--socket PATH | --tcp ADDR)`: queries a *live* daemon's
/// `stats` method and renders its serve counters as a profile section —
/// the observability end of the hardening contract.
pub fn cmd_profile_serve(args: &Args) -> Result<(), CliError> {
    let timeout = parse_timeout(args)?;
    let mut stream = connect(args, timeout)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| CliError::Transport(format!("cannot set read timeout: {e}")))?;
    let reader_half = stream
        .try_clone()
        .map_err(|e| CliError::Transport(format!("cannot clone connection: {e}")))?;
    let mut reader = BufReader::new(reader_half);
    stream
        .write_all(b"{\"id\":1,\"method\":\"stats\"}\n")
        .and_then(|()| stream.flush())
        .map_err(|e| CliError::Transport(format!("cannot send stats request: {e}")))?;
    let mut resp = String::new();
    let n = reader
        .read_line(&mut resp)
        .map_err(|e| CliError::Transport(format!("cannot read stats response: {e}")))?;
    if n == 0 {
        return Err(CliError::Transport(
            "server closed the connection".to_owned(),
        ));
    }
    let v = json::parse(&resp)
        .map_err(|e| CliError::Internal(format!("daemon sent invalid JSON: {e}")))?;
    let result = v
        .get("result")
        .ok_or_else(|| CliError::Internal(format!("stats request failed: {}", resp.trim())))?;
    let as_i64 = |key: &str| result.get(key).and_then(Value::as_i64).unwrap_or(0);
    let design = result
        .get("design")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_owned();
    let mut out = String::new();
    out.push_str(&format!(
        "profile: live daemon at {} (`{design}`, {} components)\n\n",
        endpoint_label(args),
        as_i64("components"),
    ));
    out.push_str(&format!(
        "eco updates   {:>10}\nfailed pins   {:>10}\ncache hits    {:>10}\ncache misses  {:>10}\n",
        as_i64("eco_updates"),
        as_i64("failed_pins"),
        result
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Value::as_i64)
            .unwrap_or(0),
        result
            .get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(Value::as_i64)
            .unwrap_or(0),
    ));
    if let Some(Value::Obj(members)) = result.get("serve") {
        out.push_str("\nserve counters:\n");
        for (k, val) in members {
            if let Some(n) = val.as_i64() {
                out.push_str(&format!("  serve.{k:<18} {n:>10}\n"));
            }
        }
    }
    print!("{out}");
    Ok(())
}
