//! `pao serve` — the resident pin access oracle daemon — and `pao call`,
//! its scriptable line-oriented client.
//!
//! The daemon loads LEF/DEF once, analyzes the design into an
//! [`OracleService`] and then answers queries over a Unix domain socket
//! (`--socket PATH`) or TCP (`--tcp ADDR`). The wire protocol is
//! line-delimited JSON-RPC: one request object per line in, one response
//! object per line out, parsed and validated with the in-repo JSON
//! parser (`pao_obs::json`) — no external dependency.
//!
//! ```text
//! -> {"id":1,"method":"get_pin_access","params":{"inst":"u17","pin":"A"}}
//! <- {"id":1,"result":{"inst":"u17","pin":"A","selected":{...},...}}
//! ```
//!
//! Methods: `get_pin_access`, `get_instance_patterns`,
//! `get_cluster_selection`, `eco_update`, `dump_selection`, `stats`,
//! `batch` (params = array of requests, fanned onto the work-stealing
//! executor) and `shutdown`. Queries are pure reads over the service's
//! immutable snapshots, so concurrent connections get byte-identical
//! answers at any thread count; `eco_update` swaps the snapshots
//! copy-on-write behind a write lock.

use crate::args::Args;
use crate::{load_world, open_checkpoint, parse_budget_flags, CliError};
use pao_core::{EcoMove, EcoTarget, OracleService, PaoConfig, RunBudget, ServiceError};
use pao_geom::Point;
use pao_obs::json::{self, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// JSON-RPC error codes (the standard ones, plus `1` for typed service
/// errors like "unknown instance" that are the *request's* fault).
const PARSE_ERROR: i64 = -32700;
const INVALID_REQUEST: i64 = -32600;
const METHOD_NOT_FOUND: i64 = -32601;
const INVALID_PARAMS: i64 = -32602;
const INTERNAL_ERROR: i64 = -32603;
const SERVICE_ERROR: i64 = 1;

/// The daemon's listening endpoint. The Unix variant remembers its path
/// so shutdown can unlink the socket file.
enum Listener {
    Unix(UnixListener, String),
    Tcp(TcpListener),
}

/// One accepted (or client-side connected) connection.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    fn endpoint(&self) -> String {
        match self {
            Listener::Unix(_, path) => format!("unix:{path}"),
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:?".to_owned(),
            },
        }
    }
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    service: RwLock<OracleService>,
    shutdown: AtomicBool,
    threads: usize,
    /// Default deadline applied to `eco_update` requests that carry no
    /// `deadline_ms` of their own (from `--deadline-ms`).
    eco_deadline: Option<Duration>,
}

impl Shared {
    /// Read access to the service, recovering from a poisoned lock (a
    /// panicking request must not take the daemon down — snapshots are
    /// swapped atomically, so the state is always consistent).
    fn read(&self) -> RwLockReadGuard<'_, OracleService> {
        match self.service.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, OracleService> {
        match self.service.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Serializes the request's `id` for echoing back (number or string;
/// anything else degrades to `null`).
fn id_token(req: &Value) -> String {
    match req.get("id") {
        Some(Value::Num(_)) => match req.get("id").and_then(Value::as_i64) {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        },
        Some(Value::Str(s)) => json::quote(s),
        _ => "null".to_owned(),
    }
}

fn ok_resp(id: &str, result: &str) -> String {
    format!("{{\"id\":{id},\"result\":{result}}}")
}

fn err_resp(id: &str, code: i64, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"error\":{{\"code\":{code},\"message\":{}}}}}",
        json::quote(message)
    )
}

/// A required string parameter.
fn str_param<'a>(req: &'a Value, key: &str) -> Result<&'a str, (i64, String)> {
    req.get("params")
        .and_then(|p| p.get(key))
        .and_then(Value::as_str)
        .ok_or_else(|| (INVALID_PARAMS, format!("missing string param `{key}`")))
}

fn svc_err(e: &ServiceError) -> (i64, String) {
    (SERVICE_ERROR, e.to_string())
}

/// One access point as a JSON object (die-frame coordinates, layer by
/// name, coordinate types by their display labels).
fn ap_json(tech: &pao_tech::Tech, ap: &pao_core::AccessPoint) -> String {
    format!(
        "{{\"x\":{},\"y\":{},\"layer\":{},\"pref\":{},\"nonpref\":{},\"vias\":{}}}",
        ap.pos.x,
        ap.pos.y,
        json::quote(&tech.layer(ap.layer).name),
        json::quote(&ap.pref_type.to_string()),
        json::quote(&ap.nonpref_type.to_string()),
        ap.vias.len(),
    )
}

fn usize_list(items: &[usize]) -> String {
    let strs: Vec<String> = items.iter().map(ToString::to_string).collect();
    strs.join(",")
}

/// Parses the `moves` array of an `eco_update` request: each entry names
/// an instance and either an absolute target (`x` + `y`) or a relative
/// one (`dx` / `dy`).
fn parse_moves(req: &Value) -> Result<Vec<EcoMove>, (i64, String)> {
    let bad = |m: String| (INVALID_PARAMS, m);
    let items = req
        .get("params")
        .and_then(|p| p.get("moves"))
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing `moves` array".to_owned()))?;
    let mut moves = Vec::with_capacity(items.len());
    for item in items {
        let inst = item
            .get("inst")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("move missing string `inst`".to_owned()))?
            .to_owned();
        let coord = |key: &str| item.get(key).and_then(Value::as_i64);
        let (x, y) = (coord("x"), coord("y"));
        let (dx, dy) = (coord("dx"), coord("dy"));
        let target = match (x, y, dx.or(dy)) {
            (Some(x), Some(y), None) => EcoTarget::Abs(Point { x, y }),
            (None, None, Some(_)) => EcoTarget::Delta(Point {
                x: dx.unwrap_or(0),
                y: dy.unwrap_or(0),
            }),
            _ => return Err(bad(format!("move for `{inst}` needs either x+y or dx/dy"))),
        };
        moves.push(EcoMove { inst, target });
    }
    Ok(moves)
}

/// Runs one method and returns its `result` payload.
fn method_result(method: &str, req: &Value, shared: &Shared) -> Result<String, (i64, String)> {
    match method {
        "get_pin_access" => {
            let inst = str_param(req, "inst")?;
            let pin = str_param(req, "pin")?;
            let svc = shared.read();
            let r = svc.pin_access(inst, pin).map_err(|e| svc_err(&e))?;
            let tech = svc.tech();
            let selected = r
                .selected
                .as_ref()
                .map_or_else(|| "null".to_owned(), |ap| ap_json(tech, ap));
            let candidates: Vec<String> = r.candidates.iter().map(|ap| ap_json(tech, ap)).collect();
            let rejects: Vec<String> = r
                .rejects
                .iter()
                .map(|rc| {
                    format!(
                        "{{\"rule\":{},\"count\":{}}}",
                        json::quote(&rc.rule),
                        rc.count
                    )
                })
                .collect();
            Ok(format!(
                "{{\"inst\":{},\"pin\":{},\"selected\":{},\"from_override\":{},\"candidates\":[{}],\"rejects\":[{}]}}",
                json::quote(&r.inst),
                json::quote(&r.pin),
                selected,
                r.from_override,
                candidates.join(","),
                rejects.join(","),
            ))
        }
        "get_instance_patterns" => {
            let inst = str_param(req, "inst")?;
            let svc = shared.read();
            let r = svc.instance_patterns(inst).map_err(|e| svc_err(&e))?;
            let patterns: Vec<String> = r
                .patterns
                .iter()
                .map(|p| {
                    format!(
                        "{{\"cost\":{},\"validated\":{},\"choice\":[{}]}}",
                        p.cost,
                        p.validated,
                        usize_list(&p.choice),
                    )
                })
                .collect();
            Ok(format!(
                "{{\"inst\":{},\"master\":{},\"unique_index\":{},\"members\":{},\"pin_order\":[{}],\"patterns\":[{}]}}",
                json::quote(&r.inst),
                json::quote(&r.master),
                r.unique_index,
                r.members,
                usize_list(&r.pin_order),
                patterns.join(","),
            ))
        }
        "get_cluster_selection" => {
            let inst = str_param(req, "inst")?;
            let svc = shared.read();
            let r = svc.cluster_selection(inst).map_err(|e| svc_err(&e))?;
            let tech = svc.tech();
            let pattern = r
                .pattern
                .map_or_else(|| "null".to_owned(), |p| p.to_string());
            let overrides: Vec<String> = r
                .overrides
                .iter()
                .map(|(pin, ap)| format!("{{\"pin\":{pin},\"ap\":{}}}", ap_json(tech, ap)))
                .collect();
            Ok(format!(
                "{{\"inst\":{},\"pattern\":{},\"overrides\":[{}]}}",
                json::quote(&r.inst),
                pattern,
                overrides.join(","),
            ))
        }
        "dump_selection" => {
            let svc = shared.read();
            Ok(format!(
                "{{\"dump\":{}}}",
                json::quote(&svc.selection_dump())
            ))
        }
        "stats" => {
            let svc = shared.read();
            let (hits, misses) = svc.cache_stats();
            let sym = pao_tech::symbol_stats();
            pao_obs::gauge_max("symbol.interned", sym.interned as u64);
            pao_obs::gauge_max("symbol.arena_bytes", sym.arena_bytes as u64);
            let stats = &svc.result().stats;
            let fr = svc.fractions().snapshot().0;
            let fr_strs: Vec<String> = fr.iter().map(|f| format!("{f:.4}")).collect();
            Ok(format!(
                concat!(
                    "{{\"design\":{},\"components\":{},\"nets\":{},",
                    "\"unique_instances\":{},\"total_aps\":{},\"failed_pins\":{},",
                    "\"eco_updates\":{},\"cache\":{{\"hits\":{},\"misses\":{}}},",
                    "\"symbol\":{{\"interned\":{},\"arena_bytes\":{}}},",
                    "\"server\":{{\"requests\":{}}},\"fractions\":[{}]}}"
                ),
                json::quote(&svc.design().name),
                svc.design().components().len(),
                svc.design().nets().len(),
                stats.unique_instances,
                stats.total_aps,
                stats.failed_pins,
                svc.eco_updates(),
                hits,
                misses,
                sym.interned,
                sym.arena_bytes,
                pao_obs::snapshot().counter("server.requests"),
                fr_strs.join(","),
            ))
        }
        "eco_update" => {
            let moves = parse_moves(req)?;
            let deadline = req
                .get("params")
                .and_then(|p| p.get("deadline_ms"))
                .and_then(Value::as_i64)
                .map(|ms| Duration::from_millis(ms.max(0) as u64))
                .or(shared.eco_deadline);
            let mut svc = shared.write();
            let r = svc
                .eco_update(&moves, deadline, None)
                .map_err(|e| svc_err(&e))?;
            Ok(format!(
                concat!(
                    "{{\"moved\":{},\"cache_hits\":{},\"cache_misses\":{},",
                    "\"full_reanalysis\":{},\"failed_pins\":{},\"eco_seq\":{}}}"
                ),
                r.moved, r.cache_hits, r.cache_misses, r.full_reanalysis, r.failed_pins, r.eco_seq,
            ))
        }
        _ => Err((METHOD_NOT_FOUND, format!("unknown method `{method}`"))),
    }
}

/// Handles a `batch` request: params is an array of request objects.
/// Read-only batches fan out onto the work-stealing executor (responses
/// come back in input order — the executor preserves it); a batch
/// containing `eco_update` runs sequentially in order, because an ECO
/// must observe the queries before it and be observed by those after.
fn handle_batch(id: &str, req: &Value, shared: &Shared) -> String {
    let Some(items) = req.get("params").and_then(Value::as_array) else {
        return err_resp(
            id,
            INVALID_PARAMS,
            "batch params must be an array of requests",
        );
    };
    pao_obs::hist_record("server.batch_size", items.len() as u64);
    let has_eco = items
        .iter()
        .any(|r| r.get("method").and_then(Value::as_str) == Some("eco_update"));
    let responses: Vec<String> = if has_eco {
        items
            .iter()
            .map(|r| dispatch_request(r, shared, false).0)
            .collect()
    } else {
        let refs: Vec<&Value> = items.iter().collect();
        pao_core::parallel::parallel_map(shared.threads, refs, |r| {
            dispatch_request(r, shared, false).0
        })
    };
    ok_resp(id, &format!("[{}]", responses.join(",")))
}

/// Dispatches one parsed request. Returns the response line and whether
/// the daemon should shut down *after* the response is flushed.
/// `allow_control` is false inside a batch: nested `batch`/`shutdown`
/// are rejected there.
fn dispatch_request(req: &Value, shared: &Shared, allow_control: bool) -> (String, bool) {
    let _span = pao_obs::span("server.request");
    pao_obs::counter_add("server.requests", 1);
    let id = id_token(req);
    let Some(method) = req.get("method").and_then(Value::as_str) else {
        return (
            err_resp(&id, INVALID_REQUEST, "request needs a string `method`"),
            false,
        );
    };
    match method {
        "shutdown" if allow_control => (ok_resp(&id, "{\"ok\":true}"), true),
        "batch" if allow_control => (handle_batch(&id, req, shared), false),
        "shutdown" | "batch" => (
            err_resp(
                &id,
                INVALID_REQUEST,
                "control methods are not allowed in a batch",
            ),
            false,
        ),
        _ => match method_result(method, req, shared) {
            Ok(result) => (ok_resp(&id, &result), false),
            Err((code, message)) => (err_resp(&id, code, &message), false),
        },
    }
}

/// Parses and dispatches one request line.
fn dispatch_line(line: &str, shared: &Shared) -> (String, bool) {
    match json::parse(line) {
        Ok(req) => dispatch_request(&req, shared, true),
        Err(e) => (
            err_resp("null", PARSE_ERROR, &format!("parse error: {e}")),
            false,
        ),
    }
}

/// Serves one connection: read a line, answer a line, until EOF or
/// shutdown. Every outgoing line is re-validated with the in-repo JSON
/// parser — an invalid response is a `pao` bug and is reported as one.
fn handle_conn(stream: Stream, shared: &Shared) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(reader_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (mut resp, shutdown_after) = dispatch_line(&line, shared);
        if let Err(e) = json::validate(&resp) {
            resp = err_resp(
                "null",
                INTERNAL_ERROR,
                &format!("invalid response generated: {e}"),
            );
        }
        resp.push('\n');
        if writer
            .write_all(resp.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown_after {
            shared.shutdown.store(true, Ordering::SeqCst);
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Binds the requested endpoint (exactly one of `--socket`/`--tcp`).
fn bind(args: &Args) -> Result<Listener, CliError> {
    match (args.value("--socket"), args.value("--tcp")) {
        (Some(path), None) => {
            // A stale socket file from a killed daemon would fail the
            // bind; it is dead weight either way.
            let _ = std::fs::remove_file(path);
            UnixListener::bind(path)
                .map(|l| Listener::Unix(l, path.to_owned()))
                .map_err(|e| CliError::input(format!("cannot bind `{path}`: {e}")))
        }
        (None, Some(addr)) => TcpListener::bind(addr)
            .map(Listener::Tcp)
            .map_err(|e| CliError::input(format!("cannot bind `{addr}`: {e}"))),
        _ => Err(CliError::usage(
            "serve requires exactly one of --socket PATH or --tcp ADDR",
        )),
    }
}

/// `pao serve <tech.lef> <design.def> (--socket PATH | --tcp ADDR) …`
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    for name in ["--socket", "--tcp", "--threads"] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    // Endpoint usage errors must fire before the (potentially long)
    // load + analysis; `bind` re-checks when it actually binds.
    if usize::from(args.value("--socket").is_some()) + usize::from(args.value("--tcp").is_some())
        != 1
    {
        return Err(CliError::usage(
            "serve requires exactly one of --socket PATH or --tcp ADDR",
        ));
    }
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    pao_obs::enable_metrics();
    let mut cfg = PaoConfig::default();
    if let Some(t) = args.value("--threads") {
        cfg.threads = t
            .parse()
            .map_err(|_| CliError::usage("--threads expects a number"))?;
    }
    let (deadline, watchdog) = parse_budget_flags(args)?;
    let mut store = open_checkpoint(args)?;
    let fractions = store
        .as_ref()
        .and_then(pao_core::CheckpointStore::fractions)
        .unwrap_or_default();
    let budget = RunBudget {
        deadline: None, // the load is not deadline-cut; --deadline-ms bounds ECOs
        fractions,
        watchdog,
        checkpoint: store.as_mut(),
    };
    let collect_rejects = !args.flag("--no-ledger");
    eprintln!(
        "pao serve: loading `{}` ({} components) …",
        design.name,
        design.components().len()
    );
    let threads = cfg.threads.max(1);
    let service = OracleService::start(tech, design, cfg, budget, collect_rejects);
    let sym = pao_tech::symbol_stats();
    pao_obs::gauge_max("symbol.interned", sym.interned as u64);
    pao_obs::gauge_max("symbol.arena_bytes", sym.arena_bytes as u64);
    let listener = bind(args)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Internal(format!("cannot poll listener: {e}")))?;
    eprintln!(
        "pao serve: listening on {} ({} unique instances, {} failed pins)",
        listener.endpoint(),
        service.result().stats.unique_instances,
        service.result().stats.failed_pins,
    );
    let shared = Arc::new(Shared {
        service: RwLock::new(service),
        shutdown: AtomicBool::new(false),
        threads,
        eco_deadline: deadline,
    });
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                // Accepted sockets inherit the listener's non-blocking
                // flag on some platforms; request handling is blocking.
                let _ = stream.set_nonblocking(false);
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_conn(stream, &conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("pao serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("pao serve: shutdown");
    Ok(())
}

/// Connects to a running daemon, retrying while it is still loading
/// (the socket may not exist yet right after the daemon was spawned).
fn connect(args: &Args) -> Result<Stream, CliError> {
    let attempt = || -> std::io::Result<Stream> {
        match (args.value("--socket"), args.value("--tcp")) {
            (Some(path), None) => UnixStream::connect(path).map(Stream::Unix),
            (None, Some(addr)) => TcpStream::connect(addr).map(Stream::Tcp),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "call requires exactly one of --socket PATH or --tcp ADDR",
            )),
        }
    };
    if args.value("--socket").is_none() && args.value("--tcp").is_none() {
        return Err(CliError::usage(
            "call requires exactly one of --socket PATH or --tcp ADDR",
        ));
    }
    let mut last = None;
    for _ in 0..60 {
        match attempt() {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
    Err(CliError::input(format!(
        "cannot connect: {}",
        last.map_or_else(|| "no endpoint".to_owned(), |e| e.to_string())
    )))
}

/// `pao call (--socket PATH | --tcp ADDR) [REQUEST …]`: sends each
/// request line (positionals, or stdin lines when none are given) and
/// prints the response lines. The scripting end of the serve smoke gate.
pub fn cmd_call(args: &Args) -> Result<(), CliError> {
    for name in ["--socket", "--tcp"] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    let mut stream = connect(args)?;
    let reader_half = stream
        .try_clone()
        .map_err(|e| CliError::input(format!("cannot clone connection: {e}")))?;
    let mut reader = BufReader::new(reader_half);
    let mut requests: Vec<String> = Vec::new();
    let mut i = 1;
    while let Ok(p) = args.positional(i) {
        requests.push(p.to_owned());
        i += 1;
    }
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| CliError::input(format!("cannot read stdin: {e}")))?;
            requests.push(line);
        }
    }
    for req in requests {
        if req.trim().is_empty() {
            continue;
        }
        stream
            .write_all(req.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .map_err(|e| CliError::input(format!("cannot send request: {e}")))?;
        let mut resp = String::new();
        let n = reader
            .read_line(&mut resp)
            .map_err(|e| CliError::input(format!("cannot read response: {e}")))?;
        if n == 0 {
            return Err(CliError::input("server closed the connection"));
        }
        print!("{resp}");
    }
    Ok(())
}
