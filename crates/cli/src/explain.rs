//! `pao explain` and `pao report` — the decision-ledger consumers.
//!
//! Both commands re-run the analysis with the ledger enabled and present
//! the resulting attribution stream: `explain` as one instance's causal
//! chain (candidate → reject reason → surviving APs → chosen pattern →
//! boundary conflicts → repair), `report` as deterministic JSONL
//! aggregates plus an optional reject-density heatmap. Everything here is
//! a pure function of the canonical ledger dump and the design, so the
//! output is byte-identical across `--threads` values.

use crate::args::Args;
use crate::{emit, load_world, parse_threads, CliError};
use pao_core::{PaoConfig, PaoResult, PinAccessOracle};
use pao_design::{CompId, Design};
use pao_drc::{RuleKind, SubCheck};
use pao_geom::Point;
use pao_obs::{LedgerDump, LedgerEvent};
use pao_tech::Tech;
use std::collections::BTreeMap;

/// Runs one ledger-enabled analysis. The ledger is process-global, so
/// the switch is scoped tightly: reset → enable → analyze → disable →
/// drain, leaving nothing armed for later commands in this process.
fn ledger_analyze(tech: &Tech, design: &Design, threads: usize) -> (PaoResult, LedgerDump) {
    pao_obs::reset();
    pao_obs::enable_ledger();
    let cfg = PaoConfig {
        threads,
        ..PaoConfig::default()
    };
    let result = PinAccessOracle::with_config(cfg).analyze(tech, design);
    pao_obs::disable_all();
    let dump = pao_obs::take_ledger();
    if dump.dropped > 0 {
        eprintln!(
            "warning: ledger dropped {} records (sink full) — counts below are incomplete",
            dump.dropped
        );
    }
    (result, dump)
}

/// Presentation name for a record's reject attribution. Undecodable
/// codes (the `NO_CODE` sentinel) mean no via candidate existed at all,
/// so there was no rule to blame.
fn reject_label(rule: u8, subcheck: u8) -> String {
    match (RuleKind::from_code(rule), SubCheck::from_code(subcheck)) {
        (Some(r), Some(s)) => format!("{r} ({s})"),
        (Some(r), None) => r.to_string(),
        _ => "no via candidate".to_owned(),
    }
}

/// Layer name for a record's `aux` layer index, or a stable fallback.
fn layer_name(tech: &Tech, idx: u32) -> String {
    tech.layers()
        .get(idx as usize)
        .map_or_else(|| format!("layer{idx}"), |l| l.name.to_string())
}

/// Minimal JSON string encoder. Names come from LEF/DEF identifiers and
/// are almost always plain, but escape defensively anyway.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `pao explain <lef> <def> (--pin INSTANCE/PIN | --inst INSTANCE)`:
/// one instance's decision chain, reconstructed from the ledger.
pub(crate) fn cmd_explain(args: &Args) -> Result<(), CliError> {
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    for name in ["--pin", "--inst"] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    let threads = parse_threads(args)?;
    let lookup = |inst: &str| {
        design
            .component_by_name(inst)
            .ok_or_else(|| CliError::input(format!("unknown instance `{inst}`")))
    };
    let (comp, pin_filter) = match (args.value("--pin"), args.value("--inst")) {
        (Some(spec), None) => {
            let (inst, pin) = spec
                .split_once('/')
                .ok_or_else(|| CliError::usage("--pin expects INSTANCE/PIN"))?;
            let comp = lookup(inst)?;
            let master = design.component(comp).master_in(&tech).ok_or_else(|| {
                CliError::input(format!("instance `{inst}` has an unknown master"))
            })?;
            let pi = master
                .pins
                .iter()
                .position(|p| p.name == pin)
                .ok_or_else(|| {
                    CliError::input(format!("master `{}` has no pin `{pin}`", master.name))
                })?;
            (comp, Some(pi))
        }
        (None, Some(inst)) => (lookup(inst)?, None),
        _ => {
            return Err(CliError::usage(
                "explain requires exactly one of --pin INSTANCE/PIN or --inst INSTANCE",
            ))
        }
    };
    let (result, dump) = ledger_analyze(&tech, &design, threads);
    let ui = result
        .comp_uniq
        .get(comp.index())
        .copied()
        .flatten()
        .ok_or_else(|| {
            CliError::input(format!(
                "instance `{}` was not analyzed (unplaced or unknown master)",
                design.component(comp).name
            ))
        })?;
    let ua = &result.unique[ui.index()];
    let comp_name = &design.component(comp).name;
    let base = (ui.index() as u64) << 16;
    let mut out = String::new();
    out.push_str(&format!(
        "explain: {comp_name} (master {}, unique instance {}, {} member(s), representative {})\n",
        ua.info.master,
        ui.index(),
        ua.info.members.len(),
        design.component(ua.info.rep).name,
    ));
    out.push_str(&format!(
        "ledger : {} records, {} dropped\n",
        dump.records.len(),
        dump.dropped
    ));

    let pins: Vec<usize> = match pin_filter {
        Some(pi) => vec![pi],
        None => (0..ua.pin_aps.len()).collect(),
    };
    for pi in pins {
        let pin_name = design
            .component(comp)
            .master_in(&tech)
            .and_then(|m| m.pins.get(pi))
            .map_or_else(|| format!("pin{pi}"), |p| p.name.to_string());
        out.push_str(&format!("\npin {comp_name}/{pin_name}\n"));
        let entity = base | pi as u64;
        // Step 1: every candidate tried, with its verdict.
        let mut accepted = 0u64;
        let mut reasons: BTreeMap<(u8, u8), u64> = BTreeMap::new();
        let mut survivors = String::new();
        for r in &dump.records {
            if r.entity != entity {
                continue;
            }
            match r.decode_event() {
                Some(LedgerEvent::ApAccept) => {
                    accepted += 1;
                    survivors.push_str(&format!(
                        "    #{:<3} layer {} at ({}, {})\n",
                        r.candidate,
                        layer_name(&tech, r.aux),
                        r.x,
                        r.y
                    ));
                }
                Some(LedgerEvent::ApReject) => {
                    *reasons.entry((r.rule, r.subcheck)).or_default() += 1;
                }
                _ => {}
            }
        }
        let rejected: u64 = reasons.values().sum();
        if accepted + rejected == 0 {
            out.push_str("  apgen: no candidates recorded (supply pin or no pin geometry)\n");
            continue;
        }
        out.push_str(&format!(
            "  apgen: {} candidate(s) tried -> {accepted} accepted, {rejected} rejected\n",
            accepted + rejected
        ));
        for ((rule, sub), n) in &reasons {
            out.push_str(&format!("    {:<28} {n}\n", reject_label(*rule, *sub)));
        }
        if !survivors.is_empty() {
            out.push_str("  surviving access points:\n");
            out.push_str(&survivors);
        }
        // Step 2: pattern-DP penalties that touched this pin's choices.
        let (mut drc_e, mut hist_e, mut bca_l, mut bca_r) = (0u64, 0u64, 0u64, 0u64);
        for r in &dump.records {
            if r.entity != entity {
                continue;
            }
            match r.decode_event() {
                Some(LedgerEvent::PatEdgeDrc) => drc_e += 1,
                Some(LedgerEvent::PatEdgeHistory) => hist_e += 1,
                Some(LedgerEvent::PatEdgeBca) if r.aux == 0 => bca_l += 1,
                Some(LedgerEvent::PatEdgeBca) => bca_r += 1,
                _ => {}
            }
        }
        if drc_e + hist_e + bca_l + bca_r > 0 {
            out.push_str(&format!(
                "  pattern DP penalties: {drc_e} drc-dirty edge(s), {hist_e} history pair(s), boundary-conflict {bca_l} left / {bca_r} right\n"
            ));
        }
        // Final verdict for this pin after selection + repair.
        match result.access_point(&design, comp, pi) {
            Some(ap) => out.push_str(&format!(
                "  final access: layer {} at ({}, {}){}\n",
                layer_name(&tech, ap.layer.0),
                ap.pos.x,
                ap.pos.y,
                if result.overrides.contains_key(&(comp, pi)) {
                    " [repair override]"
                } else {
                    ""
                },
            )),
            None => out.push_str("  final access: FAILED (no clean access point)\n"),
        }
        // Repair history (die frame — specific to this component).
        let rent = (u64::from(comp.0) << 16) | pi as u64;
        for r in &dump.records {
            if r.entity != rent {
                continue;
            }
            match r.decode_event() {
                Some(LedgerEvent::RepairDirty) => {
                    out.push_str(&format!("  repair round {}: pin probed dirty\n", r.aux))
                }
                Some(LedgerEvent::RepairReplaced) => out.push_str(&format!(
                    "  repair round {}: replaced with candidate #{} at ({}, {})\n",
                    r.aux, r.candidate, r.x, r.y
                )),
                Some(LedgerEvent::RepairStuck) => out.push_str(&format!(
                    "  repair round {}: no clean alternative (stuck)\n",
                    r.aux
                )),
                _ => {}
            }
        }
    }

    // Instance-level chain: pattern audits, the selected pattern, and
    // boundary edges that probed dirty against neighbors.
    out.push_str("\ninstance:\n");
    let (mut audited, mut clean_n) = (0u64, 0u64);
    let mut fallback = None;
    for r in &dump.records {
        if r.entity != base {
            continue;
        }
        match r.decode_event() {
            Some(LedgerEvent::PatternValidated) => {
                audited += 1;
                clean_n += u64::from(r.aux);
            }
            Some(LedgerEvent::PatternFallback) => fallback = Some(r.x),
            _ => {}
        }
    }
    if audited > 0 {
        out.push_str(&format!(
            "  patterns audited : {audited} ({clean_n} clean)\n"
        ));
    }
    if let Some(cost) = fallback {
        out.push_str(&format!(
            "  pattern fallback : no clean pattern; kept best dirty (cost {cost})\n"
        ));
    }
    match result.selection.get(comp.index()).copied().flatten() {
        Some(p) => out.push_str(&format!(
            "  selected pattern : {p} (of {} generated)\n",
            ua.patterns.len()
        )),
        None => out.push_str("  selected pattern : none\n"),
    }
    let mut neighbors: BTreeMap<u32, u64> = BTreeMap::new();
    for r in &dump.records {
        if r.decode_event() != Some(LedgerEvent::SelectEdgeDirty) {
            continue;
        }
        let (l, rr) = ((r.entity >> 32) as u32, (r.entity & 0xFFFF_FFFF) as u32);
        if l == comp.0 {
            *neighbors.entry(rr).or_default() += 1;
        } else if rr == comp.0 {
            *neighbors.entry(l).or_default() += 1;
        }
    }
    for (n, edges) in &neighbors {
        out.push_str(&format!(
            "  boundary dirty   : {edges} selection edge(s) vs neighbor {}\n",
            design.component(CompId(*n)).name
        ));
    }
    emit(args.value("--report"), &out)
}

/// `pao report <lef> <def> [--out FILE] [--top N] [--heatmap FILE]`:
/// deterministic JSONL aggregates of one ledger-enabled analysis.
pub(crate) fn cmd_report(args: &Args) -> Result<(), CliError> {
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    for name in ["--out", "--top", "--heatmap"] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    let threads = parse_threads(args)?;
    let top: usize = args
        .value("--top")
        .map_or(Ok(10), str::parse)
        .map_err(|_| CliError::usage("--top expects a count"))?;
    let (result, dump) = ledger_analyze(&tech, &design, threads);

    // One pass over the canonical stream: per-(unique-instance, pin)
    // accept/reject tallies, the reject histogram, and the per-layer
    // reject positions feeding the heatmap.
    let mut per_pin: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    let mut rejects: BTreeMap<(u8, u8), u64> = BTreeMap::new();
    let mut heat: BTreeMap<u32, Vec<Point>> = BTreeMap::new();
    for r in &dump.records {
        let key = ((r.entity >> 16) as u32, (r.entity & 0xFFFF) as u32);
        match r.decode_event() {
            Some(LedgerEvent::ApAccept) => per_pin.entry(key).or_default().0 += 1,
            Some(LedgerEvent::ApReject) => {
                per_pin.entry(key).or_default().1 += 1;
                *rejects.entry((r.rule, r.subcheck)).or_default() += 1;
                heat.entry(r.aux).or_default().push(Point::new(r.x, r.y));
            }
            _ => {}
        }
    }

    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        concat!(
            "{{\"kind\": \"summary\", \"design\": {}, \"components\": {}, ",
            "\"unique_instances\": {}, \"records\": {}, \"dropped\": {}, ",
            "\"total_aps\": {}, \"failed_pins\": {}}}"
        ),
        json_str(&design.name),
        design.components().len(),
        result.unique.len(),
        dump.records.len(),
        dump.dropped,
        result.stats.total_aps,
        result.stats.failed_pins,
    ));
    // Reject histogram by rule and sub-check, in stable code order
    // (attribution-less rejects sort last as "none").
    for ((rule, sub), count) in &rejects {
        let (rname, sname) = match (RuleKind::from_code(*rule), SubCheck::from_code(*sub)) {
            (Some(r), Some(s)) => (r.to_string(), s.to_string()),
            _ => ("none".to_owned(), "none".to_owned()),
        };
        lines.push(format!(
            "{{\"kind\": \"reject\", \"rule\": {}, \"subcheck\": {}, \"count\": {count}}}",
            json_str(&rname),
            json_str(&sname),
        ));
    }
    // Per-master aggregates over the master's unique instances (each
    // unique instance is analyzed once; members share its APs).
    let mut masters: BTreeMap<&str, [u64; 4]> = BTreeMap::new();
    for ua in &result.unique {
        let e = masters.entry(ua.info.master.as_str()).or_default();
        e[0] += 1;
        e[1] += ua.info.members.len() as u64;
        for pi in 0..ua.pin_aps.len() {
            if let Some(&(a, rj)) = per_pin.get(&(ua.info.id.0, pi as u32)) {
                e[2] += a;
                e[3] += rj;
            }
        }
    }
    for (master, [insts, members, aps, rej]) in &masters {
        lines.push(format!(
            concat!(
                "{{\"kind\": \"master\", \"master\": {}, \"unique_instances\": {insts}, ",
                "\"members\": {members}, \"aps\": {aps}, \"rejects\": {rej}}}"
            ),
            json_str(master),
            insts = insts,
            members = members,
            aps = aps,
            rej = rej,
        ));
    }
    // Per-pin counts, one line per analyzed unique-instance pin.
    for ua in &result.unique {
        let rep = &design.component(ua.info.rep).name;
        let master = design.component(ua.info.rep).master_in(&tech);
        for pi in 0..ua.pin_aps.len() {
            let (aps, rej) = per_pin
                .get(&(ua.info.id.0, pi as u32))
                .copied()
                .unwrap_or((0, 0));
            if aps + rej == 0 {
                continue; // supply pin / no geometry: nothing was tried
            }
            let pin = master
                .and_then(|m| m.pins.get(pi))
                .map_or_else(|| format!("pin{pi}"), |p| p.name.to_string());
            lines.push(format!(
                concat!(
                    "{{\"kind\": \"pin\", \"inst\": {}, \"master\": {}, \"pin\": {}, ",
                    "\"members\": {}, \"aps\": {aps}, \"rejects\": {rej}}}"
                ),
                json_str(rep),
                json_str(&ua.info.master),
                json_str(&pin),
                ua.info.members.len(),
                aps = aps,
                rej = rej,
            ));
        }
    }
    // Worst-N access-poor pins: fewest surviving APs first, most rejects
    // breaking ties (they tried hard and still came up short).
    let mut poor: Vec<(u64, u64, u32, u32)> = per_pin
        .iter()
        .filter(|(_, &(a, rj))| a + rj > 0)
        .map(|(&(ui, pi), &(a, rj))| (a, rj, ui, pi))
        .collect();
    poor.sort_by_key(|x| (x.0, std::cmp::Reverse(x.1), x.2, x.3));
    for (rank, (aps, rej, ui, pi)) in poor.iter().take(top).enumerate() {
        let ua = &result.unique[*ui as usize];
        let rep = &design.component(ua.info.rep).name;
        let pin = design
            .component(ua.info.rep)
            .master_in(&tech)
            .and_then(|m| m.pins.get(*pi as usize))
            .map_or_else(|| format!("pin{pi}"), |p| p.name.to_string());
        lines.push(format!(
            concat!(
                "{{\"kind\": \"access_poor\", \"rank\": {}, \"inst\": {}, \"pin\": {}, ",
                "\"aps\": {aps}, \"rejects\": {rej}}}"
            ),
            rank + 1,
            json_str(rep),
            json_str(&pin),
            aps = aps,
            rej = rej,
        ));
    }
    // Every line must survive the crate's own strict JSON parser — the
    // same round-trip contract the Chrome trace export has.
    for line in &lines {
        pao_obs::json::validate(line)
            .map_err(|e| CliError::Internal(format!("report line is not valid JSON: {e}")))?;
    }
    let mut text = lines.join("\n");
    text.push('\n');
    emit(args.value("--out"), &text)?;

    if let Some(path) = args.value("--heatmap") {
        let layers: Vec<(String, Vec<Point>)> = heat
            .into_iter()
            .map(|(li, pts)| (layer_name(&tech, li), pts))
            .collect();
        let svg = pao_viz::render_reject_heatmap(design.die_area, &layers, 64);
        std::fs::write(path, svg)
            .map_err(|e| CliError::input(format!("cannot write `{path}`: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
