//! `pao` — command-line pin access analysis.
//!
//! ```text
//! pao analyze <tech.lef> <design.def> [--threads N] [--k N] [--no-bca]
//!             [--report FILE] [--svg INSTANCE:FILE] [--cache FILE]
//!             [--metrics] [--trace FILE] [--deadline-ms MS]
//!             [--deadline-ok] [--checkpoint DIR] [--resume]
//!             [--watchdog-ms MS] [--no-select-memo] [--select-split N]
//!             [--dump-selection FILE]
//! pao route   <tech.lef> <design.def> [--naive] [--report FILE]
//! pao drc     <tech.lef> <design.def>
//! pao gen     <case> --lef FILE --def FILE      (case: ispd18s_test1..10,
//!                                                aes14, smoke, or `list`)
//! pao bench   [<tech.lef> <design.def>] [--case NAME] [--threads N]
//!             [--out FILE]
//! pao profile [<tech.lef> <design.def>] [--case NAME] [--threads N]
//!             [--trace FILE] [--report FILE] [--deadline-ms MS]
//!             [--ledger]
//! pao explain <tech.lef> <design.def> (--pin INSTANCE/PIN | --inst NAME)
//!             [--threads N] [--report FILE]
//! pao report  <tech.lef> <design.def> [--out FILE] [--top N]
//!             [--heatmap FILE] [--threads N]
//! ```

use pao_core::{PaoConfig, PaoError, PinAccessOracle, RunBudget};
use pao_design::Design;
use pao_tech::Tech;
use std::process::ExitCode;
use std::time::Duration;

mod args;
mod explain;
mod serve;
mod soak;
use args::Args;

/// Typed CLI failure. Each variant maps to a distinct exit code so
/// scripts (and CI) can tell a bad invocation from bad input data from a
/// bug in `pao` itself:
///
/// | code | meaning                                               |
/// |------|-------------------------------------------------------|
/// | 0    | success                                               |
/// | 2    | usage error (bad flags/arguments)                     |
/// | 3    | input error (unreadable or malformed LEF/DEF/cache)   |
/// | 4    | internal error (a `pao` bug)                          |
/// | 5    | run completed degraded (quarantined items) and        |
/// |      | `--degraded-ok` was not given                         |
/// | 6    | run hit its `--deadline-ms` budget (partial result)   |
/// |      | and `--deadline-ok` was not given                     |
/// | 7    | client transport failure (`pao call`/`soak` could not |
/// |      | reach or keep talking to the daemon)                  |
#[derive(Debug)]
enum CliError {
    /// The invocation is wrong: missing arguments, unknown case names,
    /// unparsable flag values.
    Usage(String),
    /// The input data is at fault; carries the full typed error.
    Input(PaoError),
    /// A bug in `pao` itself (violated invariant, invalid export).
    Internal(String),
    /// The analysis finished but quarantined this many work items, and
    /// the caller did not opt into degraded results with `--degraded-ok`.
    Degraded(usize),
    /// The analysis was cut short — by its deadline budget (skipped work
    /// items) and/or by a watchdog-detected worker stall — and the caller
    /// did not opt into partial results with `--deadline-ok`.
    DeadlinePartial { skipped: usize, stalls: usize },
    /// A client-side transport failure (`pao call`/`soak`): connect
    /// timeout, response-read timeout, connection closed mid-exchange.
    /// Distinct from in-band JSON-RPC errors, which the server answered
    /// and which therefore exit 0.
    Transport(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError::Usage(message.into())
    }

    fn input(message: impl Into<String>) -> CliError {
        CliError::Input(PaoError::input(message))
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Internal(_) => 4,
            CliError::Degraded(_) => 5,
            CliError::DeadlinePartial { .. } => 6,
            CliError::Transport(_) => 7,
        }
    }

    /// Prints the error (and, for typed errors, its source chain) to
    /// stderr.
    fn report(&self) {
        match self {
            CliError::Usage(m) => eprintln!("error: {m}"),
            CliError::Transport(m) => eprintln!("error: transport: {m}"),
            CliError::Internal(m) => eprintln!("error: internal: {m}"),
            CliError::Degraded(n) => eprintln!(
                "error: run degraded: {n} work item(s) quarantined (see report; pass --degraded-ok to accept)"
            ),
            CliError::DeadlinePartial { skipped, stalls } => eprintln!(
                "error: deadline hit: {skipped} work item(s) skipped, {stalls} worker stall(s) (partial result; pass --deadline-ok to accept, or --checkpoint DIR + --resume to continue)"
            ),
            CliError::Input(e) => {
                eprintln!("error: {e}");
                let mut source = std::error::Error::source(e);
                while let Some(cause) = source {
                    eprintln!("  caused by: {cause}");
                    source = cause.source();
                }
            }
        }
    }
}

fn load_world(lef_path: &str, def_path: &str) -> Result<(Tech, Design), CliError> {
    let lef = std::fs::read_to_string(lef_path)
        .map_err(|e| CliError::input(format!("cannot read LEF `{lef_path}`: {e}")))?;
    let tech = pao_tech::lef::parse_lef(&lef)
        .map_err(|e| CliError::Input(PaoError::input_at(lef_path, e.line, e.message)))?;
    let def = std::fs::read_to_string(def_path)
        .map_err(|e| CliError::input(format!("cannot read DEF `{def_path}`: {e}")))?;
    let design = pao_design::def::parse_def(&def, &tech)
        .map_err(|e| CliError::Input(PaoError::input_at(def_path, e.line, e.message)))?;
    Ok((tech, design))
}

fn emit(report: Option<&str>, content: &str) -> Result<(), CliError> {
    match report {
        Some(path) => std::fs::write(path, content)
            .map_err(|e| CliError::input(format!("cannot write `{path}`: {e}")))
            .map(|()| eprintln!("wrote {path}")),
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// Validates an exported Chrome trace with the crate's own JSON parser
/// and writes it to `path`.
fn write_trace(path: &str, dump: &pao_obs::TraceDump) -> Result<(), CliError> {
    let json = dump.to_chrome_json();
    pao_obs::json::validate(&json)
        .map_err(|e| CliError::Internal(format!("exported trace is not valid JSON: {e}")))?;
    std::fs::write(path, &json)
        .map_err(|e| CliError::input(format!("cannot write `{path}`: {e}")))?;
    eprintln!(
        "wrote {path} ({} spans, {} tracks)",
        dump.events.len(),
        dump.tracks.len()
    );
    Ok(())
}

/// Maps an `--inject-fault` phase name to its executor label.
fn fault_label(phase: &str) -> Option<&'static str> {
    Some(match phase {
        "apgen" => "apgen.instance",
        "pattern" => "pattern.instance",
        "select" => "select.group",
        "repair" => "repair.scan",
        "audit" => "audit.pin",
        _ => return None,
    })
}

/// Arms the deterministic fault-injection hook from an
/// `--inject-fault PHASE[:INDEX]` value (chaos testing: verify the run
/// degrades instead of aborting).
fn arm_injected_fault(spec: &str) -> Result<(), CliError> {
    let (phase, index) = spec.split_once(':').unwrap_or((spec, "0"));
    let label = fault_label(phase).ok_or_else(|| {
        CliError::usage(format!(
            "--inject-fault: unknown phase `{phase}` (expected apgen|pattern|select|repair|audit)"
        ))
    })?;
    let index: usize = index
        .parse()
        .map_err(|_| CliError::usage("--inject-fault expects PHASE[:INDEX]"))?;
    pao_core::fault::arm(label, index);
    Ok(())
}

/// Arms the deterministic stall-injection hook from an
/// `--inject-stall PHASE[:INDEX[:MS]]` value (watchdog testing: verify a
/// hung worker is detected and the run degrades instead of hanging).
fn arm_injected_stall(spec: &str) -> Result<(), CliError> {
    let mut it = spec.split(':');
    let phase = it.next().unwrap_or_default();
    let label = fault_label(phase).ok_or_else(|| {
        CliError::usage(format!(
            "--inject-stall: unknown phase `{phase}` (expected apgen|pattern|select|repair|audit)"
        ))
    })?;
    let bad = || CliError::usage("--inject-stall expects PHASE[:INDEX[:MS]]");
    let index: usize = it.next().map_or(Ok(0), str::parse).map_err(|_| bad())?;
    let ms: u64 = it.next().map_or(Ok(1000), str::parse).map_err(|_| bad())?;
    if it.next().is_some() {
        return Err(bad());
    }
    pao_core::fault::arm_stall(label, index, ms);
    Ok(())
}

/// Parses the shared deadline/watchdog/stall-injection flags into
/// `(deadline, watchdog)`. Rejects value options that arrived without a
/// value (usage error, exit 2). The watchdog is armed whenever any of
/// `--deadline-ms`, `--watchdog-ms` or `--inject-stall` is present.
fn parse_budget_flags(
    args: &Args,
) -> Result<(Option<Duration>, Option<pao_core::Watchdog>), CliError> {
    for name in [
        "--inject-fault",
        "--inject-stall",
        "--deadline-ms",
        "--watchdog-ms",
        "--checkpoint",
    ] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    let deadline = args
        .value("--deadline-ms")
        .map(|ms| ms.parse::<u64>().map(Duration::from_millis))
        .transpose()
        .map_err(|_| CliError::usage("--deadline-ms expects milliseconds"))?;
    let min_stall = args
        .value("--watchdog-ms")
        .map(str::parse::<u64>)
        .transpose()
        .map_err(|_| CliError::usage("--watchdog-ms expects milliseconds"))?;
    if let Some(spec) = args.value("--inject-stall") {
        arm_injected_stall(spec)?;
    }
    let watchdog =
        if deadline.is_some() || min_stall.is_some() || args.value("--inject-stall").is_some() {
            Some(match min_stall {
                Some(ms) => pao_core::Watchdog::with_min_stall(Duration::from_millis(ms)),
                None => pao_core::Watchdog::default(),
            })
        } else {
            None
        };
    Ok((deadline, watchdog))
}

/// Applies the cluster-selection tuning flags. The boundary-compat memo
/// cache is off by default (its measured hit rate is sub-1%, see
/// `SelectTuning::memo`); `--select-memo` opts back in and
/// `--no-select-memo` forces it off (A/B identity runs).
/// `--select-split N` sets the minimum group size for the intra-group
/// wavefront split (0 disables, 1 forces it). Shared by analyze/profile.
fn parse_select_flags(args: &Args, select: &mut pao_core::SelectTuning) -> Result<(), CliError> {
    for name in ["--select-split", "--dump-selection"] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    if args.flag("--select-memo") {
        select.memo = true;
    }
    if args.flag("--no-select-memo") {
        select.memo = false;
    }
    if let Some(v) = args.value("--select-split") {
        select.split_min_clusters = v
            .parse()
            .map_err(|_| CliError::usage("--select-split expects a cluster count"))?;
    }
    Ok(())
}

/// Deterministic text dump of the cluster-selection outcome; shared with
/// the `pao serve` daemon's `dump_selection` method so the verify gate
/// can diff the two byte-for-byte (see `pao_core::service::selection_dump`).
fn selection_dump(design: &Design, result: &pao_core::PaoResult) -> String {
    pao_core::service::selection_dump(design, result)
}

/// Opens the `--checkpoint DIR` store. With `--resume` the directory's
/// phase checkpoints are reloaded (corrupt sections degrade to recompute,
/// with a warning); without it stale checkpoints are cleared so a fresh
/// run never silently reuses them. The phase-time history survives both
/// ways — it seeds the budget allocator.
fn open_checkpoint(args: &Args) -> Result<Option<pao_core::CheckpointStore>, CliError> {
    let Some(dir) = args.value("--checkpoint") else {
        if args.flag("--resume") {
            return Err(CliError::usage("--resume requires --checkpoint DIR"));
        }
        return Ok(None);
    };
    let store = if args.flag("--resume") {
        let (store, rejected) = pao_core::CheckpointStore::resume(dir)
            .map_err(|e| CliError::input(format!("cannot open checkpoint dir `{dir}`: {e}")))?;
        for e in rejected {
            eprintln!(
                "warning: checkpoint in `{dir}` rejected, recomputing: {}",
                PaoError::from(e)
            );
        }
        store
    } else {
        pao_core::CheckpointStore::create(dir)
            .map_err(|e| CliError::input(format!("cannot create checkpoint dir `{dir}`: {e}")))?
    };
    Ok(Some(store))
}

fn cmd_analyze(args: &Args) -> Result<(), CliError> {
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    if args.flag("--metrics") {
        pao_obs::enable_metrics();
    }
    if args.value("--trace").is_some() {
        pao_obs::enable_trace();
    }
    let mut cfg = PaoConfig::default();
    if let Some(t) = args.value("--threads") {
        cfg.threads = t
            .parse()
            .map_err(|_| CliError::usage("--threads expects a number"))?;
    }
    if let Some(k) = args.value("--k") {
        cfg.apgen.k = k
            .parse()
            .map_err(|_| CliError::usage("--k expects a number"))?;
    }
    if args.flag("--no-bca") {
        cfg.pattern.bca = false;
        cfg.pattern.max_patterns = 1;
    }
    parse_select_flags(args, &mut cfg.select)?;
    if let Some(spec) = args.value("--inject-fault") {
        arm_injected_fault(spec)?;
    }
    let (deadline, watchdog) = parse_budget_flags(args)?;
    let mut store = open_checkpoint(args)?;
    // Budget split: this checkpoint directory's recorded phase-time
    // history when available, the built-in default otherwise.
    let fractions = store
        .as_ref()
        .and_then(pao_core::CheckpointStore::fractions)
        .unwrap_or_default();
    let budget = RunBudget {
        deadline,
        fractions,
        watchdog,
        checkpoint: store.as_mut(),
    };
    let oracle = PinAccessOracle::with_config(cfg);
    let result = match args.value("--cache") {
        Some(path) => {
            // Persisted incremental cache: load if present, save after. A
            // corrupt/truncated/old-version cache is *rejected* (warning +
            // `cache.rejected` counter inside load_or_rebuild) and the
            // analysis transparently rebuilds it — never an abort.
            let mut cache = match std::fs::read_to_string(path) {
                Ok(text) => {
                    let (cache, rejected) =
                        pao_core::incremental::AnalysisCache::load_or_rebuild(&text);
                    if let Some(reason) = rejected {
                        eprintln!("warning: cache `{path}` rejected, rebuilding: {reason}");
                    }
                    cache
                }
                Err(_) => pao_core::incremental::AnalysisCache::new(),
            };
            let r = oracle.analyze_with_cache_budget(&tech, &design, &mut cache, budget);
            std::fs::write(path, cache.save_to_string())
                .map_err(|e| CliError::input(format!("cannot write cache `{path}`: {e}")))?;
            let (hits, misses) = cache.stats();
            eprintln!("cache: {hits} hits, {misses} misses -> {path}");
            r
        }
        None => oracle.analyze_with_budget(&tech, &design, budget),
    };
    pao_core::fault::disarm();
    pao_obs::disable_all();
    let mut out = String::new();
    out.push_str(&format!("design: {}\n{}\n", design.name, result.stats));
    if args.flag("--metrics") {
        out.push_str("\nmetrics:\n");
        out.push_str(&result.stats.metrics.to_table());
    }
    // Per-pin access listing for failed pins (the actionable part).
    let mut failures = String::new();
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            let Some(master) = design.component(comp).master_in(&tech) else {
                continue;
            };
            let Some(pi) = master.pins.iter().position(|p| p.name == pin_name) else {
                continue;
            };
            if result.access_point(&design, comp, pi).is_none() {
                failures.push_str(&format!(
                    "  FAILED {}/{}\n",
                    design.component(comp).name,
                    pin_name
                ));
            }
        }
    }
    if !failures.is_empty() {
        out.push_str("\nfailed pins:\n");
        out.push_str(&failures);
    }
    emit(args.value("--report"), &out)?;
    if let Some(path) = args.value("--dump-selection") {
        std::fs::write(path, selection_dump(&design, &result))
            .map_err(|e| CliError::input(format!("cannot write `{path}`: {e}")))?;
        eprintln!("wrote {path}");
    }
    if let Some(spec) = args.value("--svg") {
        let (inst, file) = spec
            .split_once(':')
            .ok_or_else(|| CliError::usage("--svg expects INSTANCE:FILE"))?;
        let comp = design
            .component_by_name(inst)
            .ok_or_else(|| CliError::input(format!("unknown instance `{inst}`")))?;
        let svg = pao_viz::render_cell_access(&tech, &design, &result, comp);
        std::fs::write(file, svg)
            .map_err(|e| CliError::input(format!("cannot write `{file}`: {e}")))?;
        eprintln!("wrote {file}");
    }
    if let Some(path) = args.value("--trace") {
        write_trace(path, &pao_obs::take_trace())?;
    }
    // Deadline-partial completion: the budget cut the run. The partial
    // result was fully reported above; exit 6 unless the caller opted in.
    if result.stats.deadline.is_partial() && !args.flag("--deadline-ok") {
        return Err(CliError::DeadlinePartial {
            skipped: result.stats.deadline.skipped_items(),
            stalls: result.stats.deadline.stalls.len(),
        });
    }
    // Degraded completion: quarantined items were reported above; whether
    // that is acceptable is the caller's call, not ours.
    let quarantined = result.stats.quarantined.len();
    if quarantined > 0 && !args.flag("--degraded-ok") {
        return Err(CliError::Degraded(quarantined));
    }
    Ok(())
}

fn cmd_route(args: &Args) -> Result<(), CliError> {
    use pao_router::route::{RouteConfig, Router};
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    let router = Router::new(&tech, &design, RouteConfig::default());
    let routed = if args.flag("--naive") {
        router.route_with_accessor(|_, _| None)
    } else {
        let result = PinAccessOracle::new().analyze(&tech, &design);
        router.route_with_pao(&result)
    };
    let drcs = pao_router::score::count_drcs(&tech, &design, &routed);
    let access = pao_router::score::access_drcs(&tech, &design, &routed);
    let mut out = String::new();
    out.push_str(&format!(
        "routed nets      : {} / {}\nfallback routes  : {}\nwirelength (dbu) : {}\nvias             : {}\ntotal DRCs       : {drcs}\npin-access DRCs  : {access}\n",
        routed.routed_nets,
        design.nets().len(),
        routed.fallback_routes,
        routed.wirelength,
        routed.via_count,
    ));
    for (rule, n) in pao_router::score::drc_breakdown(&tech, &design, &routed) {
        out.push_str(&format!("  {rule:<20} {n}\n"));
    }
    emit(args.value("--report"), &out)
}

fn cmd_drc(args: &Args) -> Result<(), CliError> {
    use pao_core::unique::pin_owner;
    use pao_drc::{DrcEngine, Owner, ShapeSet};
    let (tech, design) = load_world(
        args.positional(1).map_err(CliError::Usage)?,
        args.positional(2).map_err(CliError::Usage)?,
    )?;
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, comp) in design.components().iter().enumerate() {
        let id = pao_design::CompId(ci as u32);
        let Some(master) = comp.master_in(&tech) else {
            continue;
        };
        for (pi, layer, rect) in design.placed_pin_shapes(&tech, id) {
            // Supply rails of all cells are one electrical net each;
            // abutting rails are intended, not shorts.
            let owner = match master.pins[pi].use_ {
                pao_tech::PinUse::Power => Owner::net(u64::MAX),
                pao_tech::PinUse::Ground => Owner::net(u64::MAX - 1),
                _ => pin_owner(id, pi),
            };
            ctx.insert(layer, rect, owner);
        }
        for (layer, rect) in design.placed_obs_shapes(&tech, id) {
            ctx.insert(layer, rect, Owner::obs(ci as u64));
        }
    }
    ctx.rebuild();
    let violations = DrcEngine::new(&tech).audit(&ctx);
    println!("{} static violations", violations.len());
    for v in violations.iter().take(50) {
        println!("  {v}");
    }
    if violations.len() > 50 {
        println!("  … ({} more)", violations.len() - 50);
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let name = args.positional(1).map_err(CliError::Usage)?;
    if name == "list" {
        for c in pao_testgen::ispd18s_suite() {
            println!("{} ({:?}, {} cells)", c.name, c.flavor, c.cells);
        }
        println!(
            "aes14 ({:?}, {} cells)",
            pao_testgen::aes14_case().flavor,
            pao_testgen::aes14_case().cells
        );
        println!("smoke (N45, 60 cells)");
        for c in pao_testgen::scale_cases() {
            println!(
                "{} ({}x{} tiles of {} cells, streamed)",
                c.name, c.tiles_x, c.tiles_y, c.tile.cells
            );
        }
        return Ok(());
    }
    let lef_path = args
        .value("--lef")
        .ok_or_else(|| CliError::usage("--lef FILE is required"))?;
    let def_path = args
        .value("--def")
        .ok_or_else(|| CliError::usage("--def FILE is required"))?;
    // Scale cases stream the DEF tile by tile; everything else goes
    // through the in-memory generator.
    if let Some(case) = pao_testgen::scaled_case_by_name(name) {
        use std::io::Write as _;
        let tech = pao_testgen::scaled_tech(&case);
        std::fs::write(lef_path, pao_tech::lef::write_lef(&tech))
            .map_err(|e| CliError::input(format!("cannot write `{lef_path}`: {e}")))?;
        let f = std::fs::File::create(def_path)
            .map_err(|e| CliError::input(format!("cannot write `{def_path}`: {e}")))?;
        let mut w = std::io::BufWriter::new(f);
        let (comps, nets) = pao_testgen::write_scaled_def(&tech, &case, &mut w)
            .and_then(|r| w.flush().map(|()| r))
            .map_err(|e| CliError::input(format!("cannot write `{def_path}`: {e}")))?;
        eprintln!("wrote {lef_path} + {def_path} ({comps} components, {nets} nets, streamed)");
        return Ok(());
    }
    let case = pao_testgen::case_by_name(name)
        .ok_or_else(|| CliError::usage(format!("unknown case `{name}` (try `pao gen list`)")))?;
    let (tech, design) = pao_testgen::generate(&case);
    std::fs::write(lef_path, pao_tech::lef::write_lef(&tech))
        .map_err(|e| CliError::input(format!("cannot write `{lef_path}`: {e}")))?;
    std::fs::write(def_path, pao_design::def::write_def(&design, &tech))
        .map_err(|e| CliError::input(format!("cannot write `{def_path}`: {e}")))?;
    eprintln!(
        "wrote {lef_path} + {def_path} ({} components, {} nets)",
        design.components().len(),
        design.nets().len()
    );
    Ok(())
}

/// One run's phase timings + executor telemetry as a JSON object (no
/// external JSON dependency — the schema is flat and fixed).
fn stats_json(stats: &pao_core::PaoStats) -> String {
    let exec = |r: &pao_core::ExecReport| {
        format!(
            "{{\"threads\": {}, \"busy_s\": {:.6}}}",
            r.threads.max(1),
            r.total_busy_us() as f64 / 1e6
        )
    };
    format!(
        concat!(
            "{{\"apgen_s\": {:.6}, \"pattern_s\": {:.6}, \"cluster_s\": {:.6}, ",
            "\"total_s\": {:.6}, \"failed_pins\": {}, \"total_aps\": {}, ",
            "\"exec\": {{\"apgen\": {}, \"pattern\": {}, \"select\": {}, ",
            "\"repair\": {}, \"audit\": {}}}}}"
        ),
        stats.apgen_time.as_secs_f64(),
        stats.pattern_time.as_secs_f64(),
        stats.cluster_time.as_secs_f64(),
        stats.total_time().as_secs_f64(),
        stats.failed_pins,
        stats.total_aps,
        exec(&stats.apgen_exec),
        exec(&stats.pattern_exec),
        exec(&stats.cluster_exec),
        exec(&stats.repair_exec),
        exec(&stats.audit_exec),
    )
}

/// Workload selection shared by `bench` and `profile`: either an
/// explicit LEF/DEF pair or a generated case (`--case`, default smoke).
fn load_workload(args: &Args) -> Result<(Tech, Design, String), CliError> {
    match (args.positional(1), args.positional(2)) {
        (Ok(lef), Ok(def)) => {
            let def = def.to_owned();
            let (t, d) = load_world(lef, &def)?;
            Ok((t, d, def))
        }
        _ => {
            let name = args.value("--case").unwrap_or("smoke");
            let case = pao_testgen::case_by_name(name).ok_or_else(|| {
                CliError::usage(format!("unknown case `{name}` (try `pao gen list`)"))
            })?;
            let (t, d) = pao_testgen::generate(&case);
            Ok((t, d, case.name))
        }
    }
}

fn parse_threads(args: &Args) -> Result<usize, CliError> {
    match args.value("--threads") {
        Some(t) => t
            .parse()
            .map_err(|_| CliError::usage("--threads expects a number")),
        None => Ok(pao_core::default_threads()),
    }
}

/// Short git revision of the working tree, or `unknown` outside a repo.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn cmd_bench(args: &Args) -> Result<(), CliError> {
    let (tech, design, workload) = load_workload(args)?;
    let threads = parse_threads(args)?;
    // Honesty about parallelism: record what was asked for and what the
    // host can actually deliver. On a 1-core host the "parallel" run is
    // physically the baseline again — still valuable as a determinism
    // check, but its speedup is not a performance number.
    let host_threads = pao_core::default_threads();
    let threads_effective = threads.min(host_threads).max(1);
    if threads_effective < threads {
        eprintln!(
            "note: host has {host_threads} thread(s); requested {threads} — speedup reflects {threads_effective}-way parallelism at best"
        );
    }
    let analyze = |threads: usize| {
        let cfg = PaoConfig {
            threads,
            ..PaoConfig::default()
        };
        PinAccessOracle::with_config(cfg).analyze(&tech, &design)
    };
    eprintln!("benchmarking `{workload}`: baseline (1 thread) …");
    let baseline = analyze(1);
    eprintln!("benchmarking `{workload}`: parallel ({threads} threads) …");
    let parallel = analyze(threads);
    if !baseline.stats.counters_eq(&parallel.stats) {
        return Err(CliError::Internal(
            "parallel run diverged from single-threaded baseline".to_owned(),
        ));
    }
    // Deadline-mode overhead: the same parallel run with an effectively
    // infinite (but finite, so every poll is live) budget measures the
    // pure cancellation-poll cost of the anytime machinery.
    eprintln!("benchmarking `{workload}`: deadline mode ({threads} threads) …");
    let budgeted = PinAccessOracle::with_config(PaoConfig {
        threads,
        ..PaoConfig::default()
    })
    .analyze_with_budget(
        &tech,
        &design,
        RunBudget::with_deadline(Duration::from_secs(86_400)),
    );
    if !baseline.stats.counters_eq(&budgeted.stats) {
        return Err(CliError::Internal(
            "deadline-mode run diverged from unbudgeted baseline".to_owned(),
        ));
    }
    // Selection-identity evidence backing `identical_output`: the
    // memoized fast path and the wavefront split must not change a
    // single selection. Compare the full selection vector and the
    // repair overrides — not just the aggregate counters — between
    // thread counts and against a memo-off reference run.
    if baseline.selection != parallel.selection || baseline.overrides != parallel.overrides {
        return Err(CliError::Internal(
            "parallel selection diverged from single-threaded baseline".to_owned(),
        ));
    }
    // The compat memo is off by default (near-dead hit rate); the
    // reference run turns it back on to prove the memoized path still
    // selects identically when opted into with --select-memo.
    eprintln!("benchmarking `{workload}`: memo-on reference ({threads} threads) …");
    let memo_on = {
        let mut cfg = PaoConfig {
            threads,
            ..PaoConfig::default()
        };
        cfg.select.memo = true;
        PinAccessOracle::with_config(cfg).analyze(&tech, &design)
    };
    if memo_on.selection != parallel.selection
        || memo_on.overrides != parallel.overrides
        || !memo_on.stats.counters_eq(&parallel.stats)
    {
        return Err(CliError::Internal(
            "memoized selection diverged from unmemoized reference".to_owned(),
        ));
    }
    let tel = parallel.stats.select_telemetry;
    let lookups = tel.cache_hits + tel.cache_misses;
    let select_json = format!(
        concat!(
            "{{\"edges\": {}, \"probes\": {}, \"cache_hits\": {}, ",
            "\"cache_misses\": {}, \"cache_hit_rate\": {:.4}, ",
            "\"edges_pruned\": {}, \"pairs_far\": {}, \"subranges\": {}}}"
        ),
        tel.edges,
        tel.probes,
        tel.cache_hits,
        tel.cache_misses,
        if lookups > 0 {
            tel.cache_hits as f64 / lookups as f64
        } else {
            0.0
        },
        tel.edges_pruned,
        tel.pairs_far,
        tel.subranges,
    );
    let speedup =
        baseline.stats.total_time().as_secs_f64() / parallel.stats.total_time().as_secs_f64();
    let deadline_overhead_pct = (budgeted.stats.total_time().as_secs_f64()
        / parallel.stats.total_time().as_secs_f64()
        - 1.0)
        * 100.0;
    let json = format!(
        concat!(
            "{{\n  \"workload\": \"{}\",\n  \"components\": {},\n  \"nets\": {},\n",
            "  \"threads\": {},\n  \"threads_requested\": {},\n",
            "  \"threads_effective\": {},\n  \"git_rev\": \"{}\",\n  \"host_threads\": {},\n",
            "  \"timestamp\": \"{}\",\n  \"baseline\": {},\n  \"parallel\": {},\n",
            "  \"deadline_mode\": {},\n  \"deadline_overhead_pct\": {:.3},\n",
            "  \"select\": {},\n",
            "  \"speedup\": {:.3},\n  \"identical_output\": true\n}}\n"
        ),
        workload,
        design.components().len(),
        design.nets().len(),
        threads,
        threads,
        threads_effective,
        git_rev(),
        host_threads,
        pao_obs::clock::now_iso8601(),
        stats_json(&baseline.stats),
        stats_json(&parallel.stats),
        stats_json(&budgeted.stats),
        deadline_overhead_pct,
        select_json,
        speedup,
    );
    let out = args.value("--out").unwrap_or("BENCH_pao.json");
    std::fs::write(out, &json)
        .map_err(|e| CliError::input(format!("cannot write `{out}`: {e}")))?;
    let speedup_label = if threads_effective == 1 {
        " (single-core host: determinism check only, not a performance number)"
    } else {
        ""
    };
    eprintln!(
        "speedup {speedup:.2}x{speedup_label}, deadline-mode overhead {deadline_overhead_pct:+.2}% -> {out}"
    );
    Ok(())
}

/// `pao sweep --case NAME [--threads N] [--dir DIR]`: one point of the
/// size-sweep matrix. Generates the case **streamed to disk** (scale
/// cases never materialize in memory), then measures the full
/// cold-start pipeline — streaming DEF parse, analysis phases — and
/// prints one JSON object with timings and the process peak RSS.
///
/// Run each size in its own process: `VmHWM` is a per-process
/// high-water mark, so sharing a process would attribute the largest
/// size's memory to every smaller one. `scripts/bench_sweep.sh` does
/// exactly that and folds the points into BENCH_pao.json.
fn cmd_sweep(args: &Args) -> Result<(), CliError> {
    use std::io::Write as _;
    use std::time::Instant;
    let name = args.value("--case").unwrap_or("ispd18s_test2");
    let threads = parse_threads(args)?;
    let dir = std::path::PathBuf::from(args.value("--dir").unwrap_or("target/sweep"));
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError::input(format!("cannot create `{}`: {e}", dir.display())))?;
    let lef_path = dir.join(format!("{name}.lef"));
    let def_path = dir.join(format!("{name}.def"));
    let write_err = |p: &std::path::Path, e: std::io::Error| {
        CliError::input(format!("cannot write `{}`: {e}", p.display()))
    };

    let gen_start = Instant::now();
    if let Some(case) = pao_testgen::scaled_case_by_name(name) {
        let tech = pao_testgen::scaled_tech(&case);
        std::fs::write(&lef_path, pao_tech::lef::write_lef(&tech))
            .map_err(|e| write_err(&lef_path, e))?;
        let f = std::fs::File::create(&def_path).map_err(|e| write_err(&def_path, e))?;
        let mut w = std::io::BufWriter::new(f);
        pao_testgen::write_scaled_def(&tech, &case, &mut w)
            .and_then(|_| w.flush())
            .map_err(|e| write_err(&def_path, e))?;
    } else if let Some(case) = pao_testgen::case_by_name(name) {
        let (tech, design) = pao_testgen::generate(&case);
        std::fs::write(&lef_path, pao_tech::lef::write_lef(&tech))
            .map_err(|e| write_err(&lef_path, e))?;
        let f = std::fs::File::create(&def_path).map_err(|e| write_err(&def_path, e))?;
        let mut w = std::io::BufWriter::new(f);
        pao_design::def::write_def_to(&design, &tech, &mut w)
            .and_then(|_| w.flush())
            .map_err(|e| write_err(&def_path, e))?;
    } else {
        return Err(CliError::usage(format!(
            "unknown case `{name}` (suite cases via `pao gen list`, scale cases: scale_20k, scale_200k, scale_1m)"
        )));
    }
    let gen_s = gen_start.elapsed().as_secs_f64();

    // Cold-start parse, timed: LEF (small, in-memory) + streaming DEF.
    let parse_start = Instant::now();
    let lef_text = std::fs::read_to_string(&lef_path)
        .map_err(|e| CliError::input(format!("cannot read `{}`: {e}", lef_path.display())))?;
    let tech = pao_tech::lef::parse_lef(&lef_text).map_err(|e| {
        CliError::Input(PaoError::input_at(
            lef_path.display().to_string(),
            e.line,
            e.message,
        ))
    })?;
    drop(lef_text);
    let design = pao_design::def::parse_def_file(&def_path, &tech).map_err(|e| {
        CliError::Input(PaoError::input_at(
            def_path.display().to_string(),
            e.line,
            e.message,
        ))
    })?;
    let parse_s = parse_start.elapsed().as_secs_f64();

    eprintln!(
        "sweep `{name}`: {} components parsed in {parse_s:.2}s, analyzing ({threads} thread(s)) …",
        design.components().len()
    );
    let result = PinAccessOracle::with_config(PaoConfig {
        threads,
        ..PaoConfig::default()
    })
    .analyze(&tech, &design);
    let stats = &result.stats;
    println!(
        concat!(
            "{{\"case\": \"{}\", \"components\": {}, \"nets\": {}, \"threads\": {}, ",
            "\"gen_s\": {:.3}, \"parse_s\": {:.3}, \"apgen_s\": {:.3}, \"pattern_s\": {:.3}, ",
            "\"cluster_s\": {:.3}, \"total_s\": {:.3}, \"unique_instances\": {}, ",
            "\"total_aps\": {}, \"failed_pins\": {}, \"peak_rss_mb\": {}}}"
        ),
        name,
        design.components().len(),
        design.nets().len(),
        threads,
        gen_s,
        parse_s,
        stats.apgen_time.as_secs_f64(),
        stats.pattern_time.as_secs_f64(),
        stats.cluster_time.as_secs_f64(),
        stats.total_time().as_secs_f64(),
        stats.unique_instances,
        stats.total_aps,
        stats.failed_pins,
        pao_obs::peak_rss_mb().unwrap_or(0),
    );
    Ok(())
}

/// Appends a warning when a memo cache's hit rate is under 5% — at that
/// point the cache is pure bookkeeping cost. Runs with fewer than 1000
/// lookups stay quiet (tiny workloads say nothing about the cache).
fn cache_warning(out: &mut String, name: &str, hits: u64, lookups: u64) {
    if lookups >= 1000 && hits * 20 < lookups {
        out.push_str(&format!(
            "warning: {name} hit rate {:.1}% (< 5% over {lookups} lookups) — the cache is nearly dead; prefer running without it\n",
            100.0 * hits as f64 / lookups as f64,
        ));
    }
}

fn cmd_profile(args: &Args) -> Result<(), CliError> {
    // `pao profile --socket|--tcp` queries a *live* daemon's stats
    // instead of running a local workload.
    if args.value("--socket").is_some() || args.value("--tcp").is_some() {
        return serve::cmd_profile_serve(args);
    }
    let (tech, design, workload) = load_workload(args)?;
    let threads = parse_threads(args)?;
    if let Some(spec) = args.value("--inject-fault") {
        arm_injected_fault(spec)?;
    }
    let (deadline, watchdog) = parse_budget_flags(args)?;
    pao_obs::reset();
    pao_obs::enable_metrics();
    if args.value("--trace").is_some() {
        pao_obs::enable_trace();
    }
    let mut cfg = PaoConfig {
        threads,
        ..PaoConfig::default()
    };
    parse_select_flags(args, &mut cfg.select)?;
    let cfg_ab = cfg.clone();
    let budget = RunBudget {
        deadline,
        watchdog,
        ..RunBudget::unlimited()
    };
    let result = PinAccessOracle::with_config(cfg).analyze_with_budget(&tech, &design, budget);
    pao_core::fault::disarm();
    pao_obs::disable_all();
    let dump = pao_obs::take_trace();
    let stats = &result.stats;
    let mut out = String::new();
    out.push_str(&format!(
        "profile: {workload} ({} components, {} nets, {threads} threads)\n\n",
        design.components().len(),
        design.nets().len(),
    ));
    // Per-phase wall vs busy time. select/repair/audit all run inside
    // the cluster step, so only their combined row has a wall clock of
    // its own; utilization is busy / (wall x threads).
    out.push_str("phase        wall_s     busy_s  thr   util%\n");
    let row = |out: &mut String, name: &str, wall: Option<f64>, busy_us: u64, thr: usize| {
        let busy_s = busy_us as f64 / 1e6;
        match wall {
            Some(w) => {
                let util = if w > 0.0 {
                    100.0 * busy_s / (w * thr.max(1) as f64)
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{name:<10} {w:>8.3} {busy_s:>10.3} {thr:>4} {util:>6.1}\n"
                ));
            }
            None => out.push_str(&format!(
                "{name:<10} {:>8} {busy_s:>10.3} {thr:>4} {:>6}\n",
                "--", "--"
            )),
        }
    };
    row(
        &mut out,
        "apgen",
        Some(stats.apgen_time.as_secs_f64()),
        stats.apgen_exec.total_busy_us(),
        stats.apgen_exec.threads,
    );
    row(
        &mut out,
        "pattern",
        Some(stats.pattern_time.as_secs_f64()),
        stats.pattern_exec.total_busy_us(),
        stats.pattern_exec.threads,
    );
    let cluster_busy = stats.cluster_exec.total_busy_us()
        + stats.repair_exec.total_busy_us()
        + stats.audit_exec.total_busy_us();
    let cluster_thr = stats
        .cluster_exec
        .threads
        .max(stats.repair_exec.threads)
        .max(stats.audit_exec.threads);
    row(
        &mut out,
        "cluster",
        Some(stats.cluster_time.as_secs_f64()),
        cluster_busy,
        cluster_thr,
    );
    row(
        &mut out,
        "  select",
        None,
        stats.cluster_exec.total_busy_us(),
        stats.cluster_exec.threads,
    );
    row(
        &mut out,
        "  repair",
        None,
        stats.repair_exec.total_busy_us(),
        stats.repair_exec.threads,
    );
    row(
        &mut out,
        "  audit",
        None,
        stats.audit_exec.total_busy_us(),
        stats.audit_exec.threads,
    );
    out.push_str(&format!(
        "run        {:>8.3}\n",
        stats.total_time().as_secs_f64()
    ));
    if let Some(mb) = pao_obs::peak_rss_mb() {
        out.push_str(&format!("peak RSS   {mb:>8} MB\n"));
    }
    // Symbol interner high-water marks (also exported as the
    // `symbol.interned` / `symbol.arena_bytes` gauges): distinct names
    // interned process-wide and the leaked bytes backing them. Reloading
    // the same design names costs nothing — interning dedups.
    let sym = pao_tech::symbol_stats();
    pao_obs::gauge_max("symbol.interned", sym.interned as u64);
    pao_obs::gauge_max("symbol.arena_bytes", sym.arena_bytes as u64);
    out.push_str(&format!(
        "symbols    {:>8} interned, {} KB arena\n",
        sym.interned,
        sym.arena_bytes / 1024,
    ));
    if !stats.quarantined.is_empty() {
        out.push_str(&format!(
            "\nquarantined items : {} (run completed degraded)\n",
            stats.quarantined.len()
        ));
        for fault in &stats.quarantined {
            out.push_str(&format!("  {fault}\n"));
        }
    }
    if stats.deadline.budget.is_some() || stats.deadline.is_partial() {
        out.push_str(&format!("\ndeadline          : {}\n", stats.deadline));
        for skip in &stats.deadline.skipped {
            out.push_str(&format!("  skipped {skip}\n"));
        }
        for stall in &stats.deadline.stalls {
            out.push_str(&format!("  {stall}\n"));
        }
        let beats = stats.metrics.gauge("watchdog.heartbeats");
        let stalls_n = stats.metrics.counter("watchdog.stalls");
        if beats > 0 || stalls_n > 0 {
            out.push_str(&format!(
                "watchdog          : {stalls_n} stall(s) detected, {beats} heartbeat(s) observed\n"
            ));
        }
    }
    let m = &stats.metrics;
    out.push_str("\nmetrics:\n");
    out.push_str(&m.to_table());
    let hits = m.counter("apgen.via_memo.hits");
    let misses = m.counter("apgen.via_memo.misses");
    if hits + misses > 0 {
        out.push_str(&format!(
            "\nvia-memo hit rate : {:.1}% ({hits} hits / {} probes)\n",
            100.0 * hits as f64 / (hits + misses) as f64,
            hits + misses,
        ));
    }
    let probes = m.counter("drc.probes");
    let rejects = m.counter("drc.rejects");
    let early = m.counter("drc.early_exit");
    if probes > 0 {
        out.push_str(&format!(
            "drc early-exit    : {:.1}% of {rejects} rejects ({probes} probes, scratch high-water {} slots)\n",
            if rejects > 0 {
                100.0 * early as f64 / rejects as f64
            } else {
                0.0
            },
            m.gauge("drc.scratch.high_water"),
        ));
    }
    // Cluster-selection fast path: how much work the memo cache, the
    // DP pruning and the pair-distance early-out saved this run.
    let tel = &stats.select_telemetry;
    if tel.edges > 0 {
        let lookups = tel.cache_hits + tel.cache_misses;
        let total_edges = tel.edges + tel.edges_pruned;
        out.push_str("\nselection fast path:\n");
        if lookups > 0 {
            out.push_str(&format!(
                "  compat cache    : {:.1}% hit rate ({} hits / {lookups} lookups)\n",
                100.0 * tel.cache_hits as f64 / lookups as f64,
                tel.cache_hits,
            ));
        } else {
            out.push_str("  compat cache    : disabled (default; opt in with --select-memo)\n");
        }
        out.push_str(&format!(
            "  edges pruned    : {:.1}% ({} of {total_edges} DP edges)\n",
            if total_edges > 0 {
                100.0 * tel.edges_pruned as f64 / total_edges as f64
            } else {
                0.0
            },
            tel.edges_pruned,
        ));
        out.push_str(&format!(
            "  via-pair probes : {} ({} pairs skipped as far)\n",
            tel.probes, tel.pairs_far,
        ));
        out.push_str(&format!("  wavefront ranges: {}\n", tel.subranges));
    }
    cache_warning(&mut out, "apgen via-memo", hits, hits + misses);
    cache_warning(
        &mut out,
        "selection compat cache",
        tel.cache_hits,
        tel.cache_hits + tel.cache_misses,
    );
    // Per-type-pair acceptance, derived from the apgen.tried.* /
    // apgen.accepted.* counter families (pair = pref_nonpref classes).
    let mut acceptance = String::new();
    for (name, &tried) in &m.counters {
        let Some(pair) = name.strip_prefix("apgen.tried.") else {
            continue;
        };
        if tried == 0 {
            continue;
        }
        let accepted = m.counter(&format!("apgen.accepted.{pair}"));
        acceptance.push_str(&format!(
            "  {pair:<14} {accepted:>9} / {tried:<9} {:>5.1}%\n",
            100.0 * accepted as f64 / tried as f64,
        ));
    }
    if !acceptance.is_empty() {
        out.push_str("AP acceptance by type pair (accepted / tried):\n");
        out.push_str(&acceptance);
    }
    // Decision-ledger A/B (--ledger): rerun the same configuration with
    // the ledger off and then on — neither rerun has metrics or tracing
    // active — to isolate the ledger's own overhead. DESIGN.md §15
    // budgets it at under 2% of analysis time.
    if args.flag("--ledger") {
        let run = |ledger_on: bool| {
            pao_obs::reset();
            if ledger_on {
                pao_obs::enable_ledger();
            }
            let r = PinAccessOracle::with_config(cfg_ab.clone()).analyze(&tech, &design);
            pao_obs::disable_all();
            (r.stats.total_time().as_secs_f64(), pao_obs::take_ledger())
        };
        eprintln!("profiling `{workload}`: ledger-off reference …");
        let (off_s, _) = run(false);
        eprintln!("profiling `{workload}`: ledger-on rerun …");
        let (on_s, ledger) = run(true);
        let overhead_pct = if off_s > 0.0 {
            (on_s / off_s - 1.0) * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "\ndecision ledger   : {} records ({} dropped), overhead {overhead_pct:+.2}% (on {on_s:.3}s vs off {off_s:.3}s)\n",
            ledger.records.len(),
            ledger.dropped,
        ));
    }
    if let Some(path) = args.value("--trace") {
        // Item spans are recorded from the executor's own busy-time
        // stopwatch, so their total should cover the reported busy time.
        let item_ns: u64 = dump
            .events
            .iter()
            .filter(|e| !e.name.starts_with("phase."))
            .map(|e| e.dur_ns)
            .sum();
        let busy_us: u64 = [
            &stats.apgen_exec,
            &stats.pattern_exec,
            &stats.cluster_exec,
            &stats.repair_exec,
            &stats.audit_exec,
        ]
        .iter()
        .map(|r| r.total_busy_us())
        .sum();
        if busy_us > 0 {
            out.push_str(&format!(
                "\ntrace: item spans cover {:.1}% of reported worker busy time\n",
                (item_ns as f64 / 1e3) / busy_us as f64 * 100.0,
            ));
        }
        write_trace(path, &dump)?;
    }
    emit(args.value("--report"), &out)
}

const USAGE: &str = "\
pao — pin access oracle for detailed routing

USAGE:
  pao analyze <tech.lef> <design.def> [--threads N] [--k N] [--no-bca]
              [--report FILE] [--svg INSTANCE:FILE] [--cache FILE]
              [--metrics] [--trace FILE] [--degraded-ok]
              [--inject-fault PHASE[:INDEX]]
              [--deadline-ms MS] [--deadline-ok] [--checkpoint DIR]
              [--resume] [--watchdog-ms MS]
              [--inject-stall PHASE[:INDEX[:MS]]]
              [--no-select-memo] [--select-split N]
              [--dump-selection FILE]
  pao route   <tech.lef> <design.def> [--naive] [--report FILE]
  pao drc     <tech.lef> <design.def>
  pao gen     <case|list> --lef FILE --def FILE
  pao bench   [<tech.lef> <design.def>] [--case NAME] [--threads N]
              [--out FILE]
  pao sweep   [--case NAME] [--threads N] [--dir DIR]
  pao profile [<tech.lef> <design.def>] [--case NAME] [--threads N]
              [--trace FILE] [--report FILE] [--deadline-ms MS]
              [--watchdog-ms MS] [--inject-stall PHASE[:INDEX[:MS]]]
              [--select-memo] [--no-select-memo] [--select-split N]
              [--ledger]
  pao explain <tech.lef> <design.def> (--pin INSTANCE/PIN | --inst NAME)
              [--threads N] [--report FILE]
  pao report  <tech.lef> <design.def> [--out FILE] [--top N]
              [--heatmap FILE] [--threads N]
  pao serve   <tech.lef> <design.def> (--socket PATH | --tcp ADDR)
              [--threads N] [--deadline-ms MS] [--checkpoint DIR]
              [--resume] [--no-ledger] [--journal FILE]
              [--max-frame-bytes N] [--max-conns N] [--max-requests N]
              [--idle-ms MS] [--max-inflight N]
              [--inject-fault PHASE[:INDEX]]
              [--inject-stall PHASE[:INDEX[:MS]]]
  pao call    (--socket PATH | --tcp ADDR) [--timeout-ms MS] [REQUEST …]
  pao soak    (--socket PATH | --tcp ADDR) --mode hostile|eco|emit
              [--seed N] [--clients N] [--duration-ms MS] [--count N]
              [--inst NAME] [--pin NAME] [--journal FILE]
              [--timeout-ms MS]

  analyze runs all compute phases on every available core by default;
  --threads 1 reproduces the paper's single-threaded measurement mode
  (output is identical for every thread count). bench times a
  single-threaded baseline against a parallel run and writes the JSON
  comparison (default BENCH_pao.json). profile re-runs the analysis with
  pipeline instrumentation enabled and prints a per-phase breakdown:
  wall vs per-worker busy time, utilization, counters and histograms
  (via-memo hit rate, AP acceptance per type pair, DP sizes, …) plus
  the process peak RSS. sweep measures one size point end to end —
  generate (streamed to disk), cold-start parse, analyze — and prints
  a one-line JSON record with per-phase seconds and peak RSS; scale
  cases (scale_20k, scale_200k, scale_1m) are tiled replications of
  the ispd18s_test2 shape that never materialize in memory during
  generation. Run each size in its own process so peak RSS stays
  per-size (scripts/bench_sweep.sh automates the matrix).
  --trace (on analyze or profile) additionally writes a Chrome
  trace-event JSON with one track per worker, viewable in Perfetto
  (https://ui.perfetto.dev) or chrome://tracing.

  Fault isolation: a work item that panics is quarantined — the run
  completes without it and reports it under `quarantined` in the stats.
  By default a degraded run exits 5; pass --degraded-ok to accept it
  (exit 0). --inject-fault PHASE[:INDEX] deterministically panics one
  work item (phases: apgen, pattern, select, repair, audit) to exercise
  that path.

  Selection fast path: cluster selection prunes dominated DP edges;
  large groups additionally split into component-disjoint wavefront
  levels when --threads > 1. A boundary-compat memo cache exists but is
  off by default (its measured hit rate is sub-1% — the cost-bound
  prune already removes the repeats it would catch); --select-memo
  opts back in, --no-select-memo forces it off. All of it is
  output-invariant, and --dump-selection FILE (analyze) writes a
  deterministic per-component selection dump to prove it; dumps from
  any thread count / memo / split combination are byte-identical.
  bench runs a memo-on reference and fails with exit 4 if a single
  selection differs; profile prints the cache hit rate, pruned-edge
  share and probe counts under `selection fast path`, and warns when
  any memo cache's hit rate drops below 5%.

  Decision ledger: explain re-runs the analysis with the decision
  ledger enabled and prints one instance's causal chain — every AP
  candidate tried with its reject rule and sub-check, the surviving
  APs, pattern-DP penalties, the selected pattern, boundary conflicts
  with neighbors and repair actions. report aggregates the same ledger
  into deterministic JSONL (per-master and per-pin AP counts, a reject
  histogram by rule, the --top N access-poorest pins), validating every
  line with the in-repo JSON parser; --heatmap FILE additionally
  renders a per-layer reject-density SVG. Both commands are
  byte-identical across --threads values. profile --ledger measures
  the ledger's cost with an off/on A/B rerun (budget: < 2%).

  Deadlines: --deadline-ms MS makes the analysis *anytime* — the budget
  is split across phases (by this checkpoint directory's recorded phase
  history when available), in-flight items finish when it expires, and
  unstarted items degrade like quarantined ones. A partial run exits 6
  unless --deadline-ok is given. --checkpoint DIR persists completed
  apgen/pattern work after each phase; --resume reloads it so a cut (or
  killed) run continues without redoing finished phases. A watchdog
  (armed automatically with any deadline flag; threshold floor
  --watchdog-ms) detects stalled workers and converts the stall into a
  degraded run. --inject-stall PHASE[:INDEX[:MS]] deterministically
  stalls one work item to exercise that path. Exit codes: 0 ok, 2 usage,
  3 bad input, 4 internal bug, 5 degraded without --degraded-ok,
  6 deadline-partial without --deadline-ok, 7 client transport failure
  (call/soak could not reach or keep talking to the daemon).

  Service mode: serve loads LEF/DEF once, analyzes, and answers
  line-delimited JSON-RPC over a Unix socket or TCP. Methods:
  get_pin_access {inst,pin}, get_instance_patterns {inst},
  get_cluster_selection {inst}, eco_update {moves:[{inst,x,y|dx,dy}],
  deadline_ms?}, dump_selection, stats, batch (params = array of
  requests, fanned across --threads workers), shutdown. Queries are
  pure reads over immutable snapshots — concurrent clients get
  byte-identical answers — and eco_update re-analyzes copy-on-write
  through the incremental dirty-cluster path (--deadline-ms sets the
  default per-ECO budget; --checkpoint DIR [--resume] warm-starts the
  load). call is the matching client: each REQUEST argument (or stdin
  line) is sent as one request, responses print one per line; it
  retries connecting with bounded exponential backoff (deterministic
  jitter) until --timeout-ms (default 15000), which also bounds each
  response read — transport failures exit 7, in-band JSON-RPC errors
  print normally and exit 0.

  Hardening: the daemon bounds frame size (--max-frame-bytes, default
  1 MiB; oversized input is drained and rejected with error -32002
  without closing the connection), concurrent connections (--max-conns,
  default 64; excess is shed with -32001 + data.retry_after_ms),
  requests per connection (--max-requests → -32003), connection idle
  lifetime (--idle-ms, default 300000; 0 disables) and concurrently
  dispatching requests (--max-inflight → -32001). Accepted eco_update
  batches are fsynced to a write-ahead journal (--journal FILE, or
  <checkpoint-dir>/eco.journal with --checkpoint) before analysis and
  replayed on --resume, so a killed daemon restarts bit-identical to
  one that never died. An ECO whose re-analysis degrades (deadline,
  watchdog stall, injected or real fault) keeps the previous snapshot
  serving and answers -32004 with the {quarantined,skipped,stalls}
  breakdown. Counters for all of it live in the `serve` object of the
  stats method; `pao profile --socket|--tcp` renders them from a live
  daemon. soak is the chaos client (scripts/soak_serve.sh drives it):
  --mode hostile floods concurrent valid/malformed/oversized/half-open
  traffic, --mode eco streams random ECO batches (tolerates the daemon
  dying mid-burst), --mode emit prints a journal's batches back as
  eco_update request lines for serial replay through call.
";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1).collect());
    let result = match args.positional(0).ok() {
        Some("analyze") => cmd_analyze(&args),
        Some("route") => cmd_route(&args),
        Some("drc") => cmd_drc(&args),
        Some("gen") => cmd_gen(&args),
        Some("bench") => cmd_bench(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("profile") => cmd_profile(&args),
        Some("explain") => explain::cmd_explain(&args),
        Some("report") => explain::cmd_report(&args),
        Some("serve") => serve::cmd_serve(&args),
        Some("call") => serve::cmd_call(&args),
        Some("soak") => soak::cmd_soak(&args),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            e.report();
            ExitCode::from(e.exit_code())
        }
    }
}
