//! `pao soak` — the chaos client behind `scripts/soak_serve.sh`.
//!
//! Three modes, all deterministic from `--seed` (the in-repo
//! [`pao_ptest::Rng`], no wall-clock entropy in the traffic mix):
//!
//! * `--mode hostile` floods the daemon from `--clients` concurrent
//!   connections with a mix of valid queries, malformed JSON, binary
//!   garbage, oversized frames, empty lines and half-closed requests for
//!   `--duration-ms`. The invariant checked: every response line the
//!   daemon sends parses as JSON (typed errors are fine — a closed or
//!   garbled response is not), and the daemon never becomes unreachable.
//! * `--mode eco` streams `--count` random ECO batches over the named
//!   `--inst` instances. The daemon being killed mid-burst is an
//!   *expected* outcome (the crash-recovery gate does exactly that), so
//!   a dead connection ends the run with `"died":true` and exit 0.
//! * `--mode emit` reads a recovered `--journal FILE` and prints one
//!   `eco_update` request line per journaled batch — piped through
//!   `pao call`, this replays the exact accepted history against a fresh
//!   daemon for the byte-identity check.
//!
//! Each mode prints a single JSON summary line on stdout.

use crate::args::Args;
use crate::serve::{self, Stream};
use crate::CliError;
use pao_obs::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// What one hostile client observed.
#[derive(Default)]
struct ClientStats {
    sent: u64,
    responses: u64,
    rpc_errors: u64,
    reconnects: u64,
    half_closes: u64,
    /// Protocol violations (unparsable response, response timeout). Any
    /// entry fails the soak.
    violations: Vec<String>,
}

/// One live connection: writer half + buffered reader half.
struct Conn {
    stream: Stream,
    reader: BufReader<Stream>,
}

fn open_conn(args: &Args, timeout: Duration) -> Result<Conn, CliError> {
    let stream = serve::connect(args, timeout)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| CliError::Transport(format!("cannot set read timeout: {e}")))?;
    let reader_half = stream
        .try_clone()
        .map_err(|e| CliError::Transport(format!("cannot clone connection: {e}")))?;
    Ok(Conn {
        stream,
        reader: BufReader::new(reader_half),
    })
}

/// Sends one line. `Err(())` means the connection is gone.
fn send_line(conn: &mut Conn, line: &[u8]) -> Result<(), ()> {
    conn.stream
        .write_all(line)
        .and_then(|()| conn.stream.write_all(b"\n"))
        .and_then(|()| conn.stream.flush())
        .map_err(|_| ())
}

/// Reads one response line. `Ok(None)` = EOF, `Err(())` = read timeout.
fn read_line(conn: &mut Conn) -> Result<Option<String>, ()> {
    let mut line = String::new();
    match conn.reader.read_line(&mut line) {
        Ok(0) => Ok(None),
        Ok(_) => Ok(Some(line)),
        Err(_) => Err(()),
    }
}

/// One hostile client: random traffic until the deadline.
fn hostile_client(
    args: &Args,
    timeout: Duration,
    seed: u64,
    until: Instant,
    inst: Option<&str>,
    pin: Option<&str>,
) -> Result<ClientStats, CliError> {
    let mut rng = pao_ptest::Rng::new(seed);
    let mut st = ClientStats::default();
    let mut conn: Option<Conn> = None;
    let mut next_id: u64 = 1;
    while Instant::now() < until {
        if conn.is_none() {
            // The daemon may shed this connect under `--max-conns`
            // pressure; `connect` keeps retrying with backoff, so a
            // `Transport` error here means it stayed unreachable for the
            // whole timeout — a real soak failure (exit 7).
            conn = Some(open_conn(args, timeout)?);
        }
        let Some(c) = conn.as_mut() else { continue };
        let roll = rng.gen_range(0..100u64);
        let id = next_id;
        next_id += 1;
        // (request bytes, expects a response back)
        let (request, expects_response): (Vec<u8>, bool) = if roll < 35 {
            (
                format!("{{\"id\":{id},\"method\":\"stats\"}}").into_bytes(),
                true,
            )
        } else if roll < 45 {
            (
                format!("{{\"id\":{id},\"method\":\"dump_selection\"}}").into_bytes(),
                true,
            )
        } else if roll < 60 {
            // A valid-shaped query; without --inst/--pin it names a ghost
            // instance and earns a typed service error, which is fine.
            let (i, p) = (inst.unwrap_or("soak_ghost"), pin.unwrap_or("A"));
            (
                format!(
                    "{{\"id\":{id},\"method\":\"get_pin_access\",\"params\":{{\"inst\":{},\"pin\":{}}}}}",
                    json::quote(i),
                    json::quote(p),
                )
                .into_bytes(),
                true,
            )
        } else if roll < 75 {
            // Malformed JSON → -32700.
            let broken = [
                "{\"id\":1,\"method\":",
                "not json at all",
                "{\"id\":}",
                "[1,2,",
                "{\"method\" \"stats\"}",
            ];
            (rng.pick(&broken).as_bytes().to_vec(), true)
        } else if roll < 85 {
            // Binary garbage (newline-free so it stays one frame) →
            // lossy decode → parse error, never a dead connection.
            let len = rng.gen_range(1..64u64) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    let b = rng.gen_range(1..=255u64) as u8;
                    if b == b'\n' {
                        b'\r'
                    } else {
                        b
                    }
                })
                .collect();
            (bytes, true)
        } else if roll < 90 {
            // Empty line: the daemon skips it silently.
            (Vec::new(), false)
        } else if roll < 95 {
            // Oversized frame: under the soak gate's --max-frame-bytes
            // 4096 this earns -32002; under a default daemon it is just
            // a big unparsable line. Both answer with one JSON line.
            (vec![b'x'; 9000], true)
        } else {
            // Half-close: abandon a partial request mid-frame.
            st.half_closes += 1;
            st.sent += 1;
            let _ = conn
                .as_mut()
                .map(|c| c.stream.write_all(b"{\"id\":1,\"meth"));
            conn = None;
            continue;
        };
        st.sent += 1;
        if send_line(c, &request).is_err() {
            st.reconnects += 1;
            conn = None;
            continue;
        }
        if !expects_response {
            continue;
        }
        match read_line(c) {
            Ok(None) => {
                // EOF: the daemon closed this connection (idle cut,
                // request cap, shed). Legal — reconnect and continue.
                st.reconnects += 1;
                conn = None;
            }
            Err(()) => {
                st.violations
                    .push(format!("no response to request {id} within the timeout"));
                conn = None;
            }
            Ok(Some(line)) => match json::parse(&line) {
                Ok(v) => {
                    st.responses += 1;
                    if v.get("error").is_some() {
                        st.rpc_errors += 1;
                    }
                }
                Err(e) => st
                    .violations
                    .push(format!("unparsable response to request {id}: {e}")),
            },
        }
    }
    Ok(st)
}

fn soak_hostile(args: &Args) -> Result<(), CliError> {
    let timeout = serve::parse_timeout(args)?;
    let clients = serve::flag_u64(args, "--clients", 4)?.max(1);
    let duration_ms = serve::flag_u64(args, "--duration-ms", 5000)?;
    let seed = serve::flag_u64(args, "--seed", 1)?;
    let inst = args.value("--inst");
    let pin = args.value("--pin");
    let until = Instant::now() + Duration::from_millis(duration_ms);
    let mut root = pao_ptest::Rng::new(seed);
    let seeds: Vec<u64> = (0..clients).map(|_| root.next_u64()).collect();
    let results: Vec<Result<ClientStats, CliError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&s| scope.spawn(move || hostile_client(args, timeout, s, until, inst, pin)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(CliError::Internal("soak client panicked".to_owned())),
            })
            .collect()
    });
    let mut total = ClientStats::default();
    for r in results {
        let st = r?;
        total.sent += st.sent;
        total.responses += st.responses;
        total.rpc_errors += st.rpc_errors;
        total.reconnects += st.reconnects;
        total.half_closes += st.half_closes;
        total.violations.extend(st.violations);
    }
    println!(
        concat!(
            "{{\"mode\":\"hostile\",\"clients\":{},\"duration_ms\":{},",
            "\"sent\":{},\"responses\":{},\"rpc_errors\":{},",
            "\"reconnects\":{},\"half_closes\":{},\"violations\":{}}}"
        ),
        clients,
        duration_ms,
        total.sent,
        total.responses,
        total.rpc_errors,
        total.reconnects,
        total.half_closes,
        total.violations.len(),
    );
    if total.violations.is_empty() {
        Ok(())
    } else {
        let mut msg = format!("{} protocol violation(s):", total.violations.len());
        for v in total.violations.iter().take(5) {
            msg.push_str("\n  ");
            msg.push_str(v);
        }
        Err(CliError::Internal(msg))
    }
}

fn soak_eco(args: &Args) -> Result<(), CliError> {
    let timeout = serve::parse_timeout(args)?;
    let count = serve::flag_u64(args, "--count", 20)?;
    let seed = serve::flag_u64(args, "--seed", 1)?;
    let insts: Vec<&str> = args
        .value("--inst")
        .ok_or_else(|| CliError::usage("soak --mode eco requires --inst NAME[,NAME…]"))?
        .split(',')
        .filter(|s| !s.is_empty())
        .collect();
    if insts.is_empty() {
        return Err(CliError::usage(
            "soak --mode eco requires --inst NAME[,NAME…]",
        ));
    }
    let mut rng = pao_ptest::Rng::new(seed);
    let mut conn = open_conn(args, timeout)?;
    let (mut applied, mut degraded, mut rejected) = (0u64, 0u64, 0u64);
    let mut died = false;
    for i in 0..count {
        let n_moves = rng.gen_range(1..=2u64);
        let moves: Vec<String> = (0..n_moves)
            .map(|_| {
                let inst = *rng.pick(&insts);
                // Deltas on the placement grid, never the (0,0) no-op.
                let mut dx = (rng.gen_range(0..=4u64) as i64 - 2) * 20;
                let dy = (rng.gen_range(0..=4u64) as i64 - 2) * 20;
                if dx == 0 && dy == 0 {
                    dx = 20;
                }
                format!("{{\"inst\":{},\"dx\":{dx},\"dy\":{dy}}}", json::quote(inst))
            })
            .collect();
        let req = format!(
            "{{\"id\":{},\"method\":\"eco_update\",\"params\":{{\"moves\":[{}]}}}}",
            i + 1,
            moves.join(","),
        );
        if send_line(&mut conn, req.as_bytes()).is_err() {
            died = true;
            break;
        }
        match read_line(&mut conn) {
            Ok(Some(line)) => match json::parse(&line) {
                Ok(v) if v.get("result").is_some() => applied += 1,
                Ok(v) => {
                    let code = v
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_i64)
                        .unwrap_or(0);
                    if code == -32004 {
                        degraded += 1;
                    } else {
                        rejected += 1;
                    }
                }
                Err(e) => {
                    return Err(CliError::Internal(format!("unparsable eco response: {e}")));
                }
            },
            // The crash gate kills the daemon mid-burst: both halves of
            // the exchange may die under us. Expected, not an error.
            Ok(None) | Err(()) => {
                died = true;
                break;
            }
        }
    }
    println!(
        "{{\"mode\":\"eco\",\"count\":{count},\"applied\":{applied},\"degraded\":{degraded},\"rejected\":{rejected},\"died\":{died}}}"
    );
    Ok(())
}

fn soak_emit(args: &Args) -> Result<(), CliError> {
    let path = args
        .value("--journal")
        .ok_or_else(|| CliError::usage("soak --mode emit requires --journal FILE"))?;
    let (journal, entries, warn) = pao_core::EcoJournal::resume(Path::new(path))
        .map_err(|e| CliError::input(format!("cannot read journal `{path}`: {e}")))?;
    drop(journal);
    if let Some(w) = warn {
        eprintln!("warning: {}", pao_core::PaoError::from(w));
    }
    let mut out = std::io::stdout().lock();
    for entry in &entries {
        let moves: Vec<String> = entry
            .moves
            .iter()
            .map(|m| match m.target {
                pao_core::EcoTarget::Abs(p) => format!(
                    "{{\"inst\":{},\"x\":{},\"y\":{}}}",
                    json::quote(&m.inst),
                    p.x,
                    p.y
                ),
                pao_core::EcoTarget::Delta(p) => format!(
                    "{{\"inst\":{},\"dx\":{},\"dy\":{}}}",
                    json::quote(&m.inst),
                    p.x,
                    p.y
                ),
            })
            .collect();
        writeln!(
            out,
            "{{\"id\":{},\"method\":\"eco_update\",\"params\":{{\"moves\":[{}]}}}}",
            entry.seq,
            moves.join(","),
        )
        .map_err(|e| CliError::input(format!("cannot write stdout: {e}")))?;
    }
    Ok(())
}

/// `pao soak (--socket PATH | --tcp ADDR) --mode hostile|eco|emit …`
pub fn cmd_soak(args: &Args) -> Result<(), CliError> {
    for name in [
        "--mode",
        "--seed",
        "--clients",
        "--duration-ms",
        "--count",
        "--inst",
        "--pin",
        "--journal",
        "--timeout-ms",
    ] {
        if args.value_missing(name) {
            return Err(CliError::usage(format!("{name} requires a value")));
        }
    }
    match args.value("--mode") {
        Some("hostile") => soak_hostile(args),
        Some("eco") => soak_eco(args),
        Some("emit") => soak_emit(args),
        _ => Err(CliError::usage("soak requires --mode hostile|eco|emit")),
    }
}
