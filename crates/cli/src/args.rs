//! Tiny dependency-free argument parser.

/// Parsed command-line arguments: positionals in order, `--flag` booleans,
/// and `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: Vec<String>,
    values: Vec<(String, String)>,
}

/// Options that take a value (everything else starting with `--` is a
/// boolean flag).
const VALUE_OPTS: [&str; 37] = [
    "--threads",
    "--k",
    "--report",
    "--svg",
    "--lef",
    "--def",
    "--out",
    "--cache",
    "--case",
    "--trace",
    "--inject-fault",
    "--inject-stall",
    "--deadline-ms",
    "--checkpoint",
    "--watchdog-ms",
    "--select-split",
    "--dump-selection",
    "--pin",
    "--inst",
    "--top",
    "--heatmap",
    "--socket",
    "--tcp",
    "--request",
    "--dir",
    "--timeout-ms",
    "--max-frame-bytes",
    "--max-conns",
    "--max-requests",
    "--idle-ms",
    "--max-inflight",
    "--journal",
    "--seed",
    "--clients",
    "--duration-ms",
    "--count",
    "--mode",
];

impl Args {
    /// Parses a raw argument vector.
    #[must_use]
    pub fn parse(raw: Vec<String>) -> Args {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some((k, v)) = a.split_once('=') {
                if k.starts_with("--") {
                    out.values.push((k.to_owned(), v.to_owned()));
                    continue;
                }
            }
            if VALUE_OPTS.contains(&a.as_str()) {
                match it.next() {
                    Some(v) => out.values.push((a, v)),
                    // A value option at the end of the line: record it as
                    // a bare flag so the command can reject the invocation
                    // as a usage error instead of silently ignoring it.
                    None => out.flags.push(a),
                }
            } else if a.starts_with("--") {
                out.flags.push(a);
            } else {
                out.positionals.push(a);
            }
        }
        out
    }

    /// `true` when value option `--name` appeared *without* its value —
    /// the caller should treat this as a usage error.
    #[must_use]
    pub fn value_missing(&self, name: &str) -> bool {
        self.flag(name) && self.value(name).is_none()
    }

    /// The `i`-th positional argument.
    ///
    /// # Errors
    ///
    /// Returns a usage message when missing.
    pub fn positional(&self, i: usize) -> Result<&str, String> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument #{}", i + 1))
    }

    /// `true` when `--name` was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value` or `--name=value`.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned).collect())
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse("analyze tech.lef top.def --no-bca");
        assert_eq!(a.positional(0).unwrap(), "analyze");
        assert_eq!(a.positional(1).unwrap(), "tech.lef");
        assert_eq!(a.positional(2).unwrap(), "top.def");
        assert!(a.flag("--no-bca"));
        assert!(!a.flag("--naive"));
        assert!(a.positional(3).is_err());
    }

    #[test]
    fn values_space_and_equals() {
        let a = parse("analyze x y --threads 4 --report=out.txt");
        assert_eq!(a.value("--threads"), Some("4"));
        assert_eq!(a.value("--report"), Some("out.txt"));
        assert_eq!(a.value("--k"), None);
        let b = parse("bench --case ispd18s_test2 --out bench.json");
        assert_eq!(b.value("--case"), Some("ispd18s_test2"));
        assert!(b.positional(1).is_err());
    }

    #[test]
    fn ledger_command_value_opts() {
        let a = parse("explain x y --pin u42/A");
        assert_eq!(a.value("--pin"), Some("u42/A"));
        let b = parse("report x y --top 5 --heatmap h.svg --inst u3");
        assert_eq!(b.value("--top"), Some("5"));
        assert_eq!(b.value("--heatmap"), Some("h.svg"));
        assert_eq!(b.value("--inst"), Some("u3"));
    }

    #[test]
    fn svg_spec_keeps_colon() {
        let a = parse("analyze x y --svg u42:cell.svg");
        assert_eq!(a.value("--svg"), Some("u42:cell.svg"));
    }

    #[test]
    fn missing_value_is_dropped_gracefully() {
        let a = parse("gen smoke --lef");
        assert_eq!(a.value("--lef"), None);
        // … but detectably, so commands can emit a usage error.
        assert!(a.value_missing("--lef"));
        let b = parse("gen smoke --lef out.lef");
        assert!(!b.value_missing("--lef"));
    }
}
