//! End-to-end tests of the `pao` binary.

use std::path::PathBuf;
use std::process::Command;

fn pao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pao"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pao-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = pao().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn gen_list_names_all_cases() {
    let out = pao().args(["gen", "list"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ispd18s_test1"));
    assert!(text.contains("ispd18s_test10"));
    assert!(text.contains("aes14"));
}

#[test]
fn gen_analyze_drc_pipeline() {
    let lef = tmp("p.lef");
    let def = tmp("p.def");
    let out = pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("failed pins      : 0"), "{text}");

    let out = pao()
        .arg("drc")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 static violations"));
}

#[test]
fn analyze_svg_renders_instance() {
    let lef = tmp("s.lef");
    let def = tmp("s.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let svg = tmp("u0.svg");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--svg")
        .arg(format!("u0:{}", svg.display()))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&svg).expect("svg written");
    assert!(content.starts_with("<svg"));
}

#[test]
fn profile_smoke_writes_valid_chrome_trace() {
    let trace = tmp("profile_trace.json");
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "2", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("via-memo hit rate"), "{text}");
    assert!(text.contains("AP acceptance by type pair"), "{text}");
    assert!(text.contains("trace: item spans cover"), "{text}");
    // The trace must be valid JSON carrying the Chrome trace envelope
    // with at least one complete ("ph":"X") span event.
    let json = std::fs::read_to_string(&trace).expect("trace written");
    pao_obs::json::validate(&json).expect("trace is valid JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"phase.apgen\""));
}

#[test]
fn analyze_metrics_flag_prints_counter_table() {
    let lef = tmp("m.lef");
    let def = tmp("m.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--metrics")
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics:"), "{text}");
    assert!(text.contains("apgen.via_memo."), "{text}");
    assert!(text.contains("select.cluster_size"), "{text}");
}

#[test]
fn bench_json_is_stamped_with_provenance() {
    let out_path = tmp("bench.json");
    let out = pao()
        .args(["bench", "--case", "smoke", "--threads", "2", "--out"])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("bench json written");
    pao_obs::json::validate(&json).expect("bench output is valid JSON");
    for key in ["\"git_rev\":", "\"host_threads\":", "\"timestamp\":"] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // ISO-8601 UTC stamp: "YYYY-MM-DDTHH:MM:SSZ".
    let stamp = json
        .split("\"timestamp\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("timestamp value");
    assert_eq!(stamp.len(), 20, "unexpected timestamp shape: {stamp}");
    assert!(stamp.ends_with('Z') && stamp.as_bytes()[10] == b'T');
}

#[test]
fn missing_file_reports_error() {
    let out = pao()
        .args(["analyze", "/nonexistent.lef", "/nonexistent.def"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3), "input errors exit 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn exit_codes_distinguish_usage_input_and_degraded() {
    // Usage: no arguments at all.
    let out = pao().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    // Usage: bad flag value.
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "banana"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    // Input: malformed LEF names the file and line in the error chain.
    let lef = tmp("bad.lef");
    std::fs::write(&lef, "LAYER M1\nTHIS IS NOT LEF\n").expect("write");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg("/nonexistent.def")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("input error"), "{err}");
    assert!(err.contains("bad.lef"), "{err}");
}

#[test]
fn injected_fault_degrades_and_exit_codes_honor_degraded_ok() {
    let lef = tmp("f.lef");
    let def = tmp("f.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    // Without --degraded-ok: the run completes, reports the quarantined
    // item, and exits 5.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--inject-fault", "apgen:0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(5), "degraded without --degraded-ok");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined      : 1"), "{text}");
    assert!(text.contains("[apgen]"), "{text}");
    assert!(
        text.contains("injected fault at apgen.instance[0]"),
        "{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("degraded"), "{err}");
    // With --degraded-ok: same degraded report, exit 0.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--inject-fault", "audit:1", "--degraded-ok"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "--degraded-ok accepts degraded");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined      : 1"), "{text}");
    assert!(text.contains("[audit]"), "{text}");
    // Unknown phase name is a usage error.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--inject-fault", "bogus"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn corrupt_cache_is_rejected_and_rebuilt() {
    let lef = tmp("c.lef");
    let def = tmp("c.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let cache = tmp("c.cache");
    // Seed the cache with garbage (e.g. a truncated write from a killed
    // process): the analysis must warn, rebuild, and exit 0.
    std::fs::write(&cache, "PAO-CACHE v1\nENTRY master=X orient=N").expect("write");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--cache")
        .arg(&cache)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rejected, rebuilding"), "{err}");
    // The rebuilt cache is valid: a second run loads it cleanly (all
    // hits, no rejection warning).
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--cache")
        .arg(&cache)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("rejected"), "{err}");
    assert!(err.contains("hits"), "{err}");
}

#[test]
fn profile_reports_quarantined_section_on_injected_fault() {
    // Healthy run: no quarantine section.
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "2"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        !text.contains("quarantined items"),
        "healthy run must not print a quarantine section: {text}"
    );
    // Faulted run: the section lists the item and the fault.quarantined.*
    // counter shows up in the metrics table.
    let out = pao()
        .args([
            "profile",
            "--case",
            "smoke",
            "--threads",
            "2",
            "--inject-fault",
            "pattern:0",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined items : 1"), "{text}");
    assert!(text.contains("[pattern]"), "{text}");
    assert!(text.contains("fault.quarantined.pattern"), "{text}");
}

/// Stat lines that must be reproducible across runs (timings and
/// parallel-executor lines are wall-clock and excluded).
fn counter_lines(report: &str) -> Vec<&str> {
    const STABLE: [&str; 10] = [
        "unique instances",
        "total APs",
        "dirty APs",
        "pins without APs",
        "off-track APs",
        "repaired pins",
        "total pins",
        "failed pins",
        "quarantined",
        "  FAILED",
    ];
    report
        .lines()
        .filter(|l| STABLE.iter().any(|p| l.starts_with(p)))
        .collect()
}

#[test]
fn deadline_exit_codes_honor_deadline_ok() {
    let lef = tmp("d.lef");
    let def = tmp("d.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    // A zero budget skips everything skippable: the run still completes,
    // prints the partial stats, and exits 6 without --deadline-ok.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--deadline-ms", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(6), "deadline-partial exits 6");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("deadline         :"), "{text}");
    assert!(text.contains("deadline)"), "skip reasons shown: {text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadline hit"), "{err}");
    assert!(err.contains("--deadline-ok"), "{err}");
    // With --deadline-ok: same partial report, exit 0.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--deadline-ms", "0", "--deadline-ok"])
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "--deadline-ok accepts partial: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn checkpoint_resume_reproduces_uninterrupted_report() {
    let lef = tmp("r.lef");
    let def = tmp("r.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    for threads in ["1", "4"] {
        let t = format!("--threads={threads}");
        // Uninterrupted reference run.
        let clean_report = tmp(&format!("clean-{threads}.txt"));
        assert!(pao()
            .arg("analyze")
            .arg(&lef)
            .arg(&def)
            .arg(&t)
            .arg("--report")
            .arg(&clean_report)
            .status()
            .expect("spawn")
            .success());
        // Budget-cut run persisting finished work into a checkpoint dir.
        let ckpt = tmp(&format!("ckpt-{threads}"));
        let _ = std::fs::remove_dir_all(&ckpt);
        let out = pao()
            .arg("analyze")
            .arg(&lef)
            .arg(&def)
            .arg(&t)
            .args(["--deadline-ms", "3", "--deadline-ok", "--checkpoint"])
            .arg(&ckpt)
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Resume with a fresh (unlimited) budget: exit 0, and the stable
        // stat lines match the uninterrupted run exactly.
        let resumed_report = tmp(&format!("resumed-{threads}.txt"));
        let out = pao()
            .arg("analyze")
            .arg(&lef)
            .arg(&def)
            .arg(&t)
            .args(["--checkpoint"])
            .arg(&ckpt)
            .arg("--resume")
            .arg("--report")
            .arg(&resumed_report)
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.contains("rejected"), "clean checkpoints reload: {err}");
        let clean = std::fs::read_to_string(&clean_report).expect("clean report");
        let resumed = std::fs::read_to_string(&resumed_report).expect("resumed report");
        assert_eq!(
            counter_lines(&clean),
            counter_lines(&resumed),
            "resume x{threads} reproduces the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

#[test]
fn injected_stall_is_detected_never_hangs() {
    let lef = tmp("w.lef");
    let def = tmp("w.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    // One apgen worker sleeps 600 ms mid-item; a 100 ms stall floor makes
    // the watchdog trip long before the sleep ends. The run must complete
    // degraded (exit 6: partial without --deadline-ok), never hang.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args([
            "--threads",
            "2",
            "--inject-stall",
            "apgen:0:600",
            "--watchdog-ms",
            "100",
            "--metrics",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(6), "stall-cut run is partial");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stalled on item 0"), "{text}");
    assert!(text.contains("stalls 1"), "{text}");
    assert!(text.contains("watchdog.stalls"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("1 worker stall(s)"), "{err}");
}

#[test]
fn budget_flag_misuse_is_a_usage_error() {
    let lef = tmp("u.lef");
    let def = tmp("u.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    // (flags..., expected stderr fragment) — all exit 2 (usage), not 4.
    let cases: &[(&[&str], &str)] = &[
        (&["--inject-fault"], "requires a value"),
        (&["--inject-stall"], "requires a value"),
        (&["--inject-stall", "bogus:0"], "unknown phase"),
        (&["--inject-stall", "apgen:0:5:9"], "PHASE[:INDEX[:MS]]"),
        (&["--deadline-ms", "banana"], "--deadline-ms"),
        (&["--watchdog-ms", "-3"], "--watchdog-ms"),
        (&["--resume"], "--resume requires --checkpoint"),
    ];
    for (flags, fragment) in cases {
        let out = pao()
            .arg("analyze")
            .arg(&lef)
            .arg(&def)
            .args(*flags)
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flags:?} is a usage error: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(fragment), "{flags:?}: {err}");
    }
}

#[test]
fn profile_prints_deadline_section_when_budgeted() {
    let out = pao()
        .args([
            "profile",
            "--case",
            "smoke",
            "--threads",
            "2",
            "--deadline-ms",
            "60000",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("deadline          :"), "{text}");
}

#[test]
fn report_is_deterministic_jsonl_and_heatmap_renders() {
    let lef = tmp("rep.lef");
    let def = tmp("rep.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let r1 = tmp("report1.jsonl");
    let r4 = tmp("report4.jsonl");
    let heat = tmp("rejects.svg");
    for (threads, out_path) in [("1", &r1), ("4", &r4)] {
        let mut cmd = pao();
        cmd.arg("report")
            .arg(&lef)
            .arg(&def)
            .args(["--threads", threads, "--top", "3", "--out"])
            .arg(out_path);
        if threads == "4" {
            cmd.arg("--heatmap").arg(&heat);
        }
        let out = cmd.output().expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read_to_string(&r1).expect("report written");
    let b = std::fs::read_to_string(&r4).expect("report written");
    assert_eq!(a, b, "report must be byte-identical across thread counts");
    // Round-trip contract: every JSONL line survives the in-repo strict
    // JSON parser, and the aggregate kinds are all present.
    for line in a.lines() {
        pao_obs::json::validate(line).expect("report line is valid JSON");
    }
    for kind in ["summary", "reject", "master", "pin", "access_poor"] {
        assert!(a.contains(&format!("\"kind\": \"{kind}\"")), "{a}");
    }
    let svg = std::fs::read_to_string(&heat).expect("heatmap written");
    assert!(svg.starts_with("<svg") && svg.contains("rejects"), "{svg}");
}

#[test]
fn explain_prints_causal_chain_and_validates_targets() {
    let lef = tmp("ex.lef");
    let def = tmp("ex.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let out = pao()
        .arg("explain")
        .arg(&lef)
        .arg(&def)
        .args(["--pin", "u1/CK", "--threads", "2"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("explain: u1"), "{text}");
    assert!(text.contains("candidate(s) tried"), "{text}");
    assert!(text.contains("surviving access points"), "{text}");
    assert!(text.contains("final access"), "{text}");
    assert!(text.contains("selected pattern"), "{text}");
    // Missing target: usage error. Unknown instance: input error.
    let out = pao()
        .arg("explain")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = pao()
        .arg("explain")
        .arg(&lef)
        .arg(&def)
        .args(["--inst", "nosuchinst"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn profile_ledger_overhead_coexists_with_trace_export() {
    let trace = tmp("ledger_trace.json");
    let out = pao()
        .args([
            "profile",
            "--case",
            "smoke",
            "--threads",
            "2",
            "--ledger",
            "--trace",
        ])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("decision ledger"), "{text}");
    assert!(text.contains("records"), "{text}");
    // The ledger A/B rerun must not corrupt the Chrome trace of the
    // instrumented run: the export still validates end to end.
    let json = std::fs::read_to_string(&trace).expect("trace written");
    pao_obs::json::validate(&json).expect("trace is valid JSON");
    assert!(json.contains("\"ph\":\"X\""));
}

#[test]
fn unknown_case_reports_error() {
    let out = pao()
        .args(["gen", "bogus", "--lef", "/tmp/x.lef", "--def", "/tmp/x.def"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown case"));
}

/// Full daemon round trip: serve a generated design over a Unix socket,
/// script a query batch through `pao call` (pin access, patterns,
/// selection, a batch, one ECO), and require the daemon's selection dump
/// to match a one-shot `pao analyze --dump-selection` byte-for-byte —
/// before and after a signature-preserving ECO. Shutdown must exit 0.
#[test]
fn serve_daemon_matches_one_shot_analyze_and_shuts_down() {
    use std::process::Stdio;
    let lef = tmp("srv.lef");
    let def = tmp("srv.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());

    // One-shot reference dump (the determinism contract makes the thread
    // count irrelevant; use 2 to match the daemon).
    let refdump = tmp("srv_ref.txt");
    assert!(pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--threads", "2", "--dump-selection"])
        .arg(&refdump)
        .status()
        .expect("spawn")
        .success());
    let reference = std::fs::read_to_string(&refdump).expect("ref dump");

    let sock = tmp("srv.sock");
    let mut daemon = pao()
        .arg("serve")
        .arg(&lef)
        .arg(&def)
        .arg("--socket")
        .arg(&sock)
        .args(["--threads", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");

    let call = |requests: &[String]| -> Vec<String> {
        let mut c = pao();
        c.arg("call").arg("--socket").arg(&sock);
        for r in requests {
            c.arg(r);
        }
        let out = c.output().expect("call");
        assert!(
            out.status.success(),
            "call failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(str::to_owned)
            .collect()
    };
    let result_of = |line: &str| -> pao_obs::json::Value {
        let resp = pao_obs::json::parse(line).expect("response is valid JSON");
        resp.get("result").expect("result present").clone()
    };

    // The daemon's dump must equal the one-shot dump.
    let lines = call(&[r#"{"id":1,"method":"dump_selection"}"#.to_owned()]);
    let dump = result_of(&lines[0])
        .get("dump")
        .and_then(|d| d.as_str().map(str::to_owned))
        .expect("dump string");
    assert_eq!(dump, reference, "daemon dump must match one-shot analyze");

    // Pick an instance whose master has a pin named A — not every smoke
    // master does (the flops use D/CK/Q), so scan the generated LEF for
    // qualifying masters and the DEF for the first component using one.
    let lef_text = std::fs::read_to_string(&lef).expect("lef");
    let mut masters_with_a = std::collections::HashSet::new();
    let mut cur = None;
    for line in lef_text.lines() {
        let mut t = line.split_whitespace();
        match (t.next(), t.next()) {
            (Some("MACRO"), Some(name)) => cur = Some(name),
            (Some("PIN"), Some("A")) => {
                if let Some(m) = cur {
                    masters_with_a.insert(m);
                }
            }
            _ => {}
        }
    }
    let def_text = std::fs::read_to_string(&def).expect("def");
    let inst = def_text
        .lines()
        .filter_map(|line| {
            let mut t = line.split_whitespace();
            (t.next() == Some("-")).then(|| (t.next(), t.next()))
        })
        .find_map(|(i, m)| match (i, m) {
            (Some(i), Some(m)) if masters_with_a.contains(m) => Some(i.to_owned()),
            _ => None,
        })
        .expect("smoke design has an instance with pin A");

    let lines = call(&[
        format!(r#"{{"id":2,"method":"get_pin_access","params":{{"inst":"{inst}","pin":"A"}}}}"#),
        format!(
            concat!(
                r#"{{"id":3,"method":"batch","params":["#,
                r#"{{"id":31,"method":"get_instance_patterns","params":{{"inst":"{i}"}}}},"#,
                r#"{{"id":32,"method":"get_cluster_selection","params":{{"inst":"{i}"}}}}]}}"#
            ),
            i = inst
        ),
        format!(
            r#"{{"id":4,"method":"eco_update","params":{{"moves":[{{"inst":"{inst}","dx":0,"dy":0}}]}}}}"#
        ),
        r#"{"id":5,"method":"dump_selection"}"#.to_owned(),
        r#"{"id":6,"method":"stats"}"#.to_owned(),
        r#"{"id":7,"method":"nonsense"}"#.to_owned(),
    ]);
    assert_eq!(lines.len(), 6, "one response line per request");
    for l in &lines {
        pao_obs::json::parse(l).expect("every response line is valid JSON");
    }
    let pin = result_of(&lines[0]);
    assert!(
        !pin.get("selected").expect("selected field").is_null(),
        "smoke pins all have access"
    );
    let batch = result_of(&lines[1]);
    assert_eq!(batch.as_array().map(<[_]>::len), Some(2));
    let eco = result_of(&lines[2]);
    assert_eq!(eco.get("eco_seq").and_then(|v| v.as_i64()), Some(1));
    assert_eq!(
        eco.get("cache_misses").and_then(|v| v.as_i64()),
        Some(0),
        "zero-delta ECO must stay on the dirty-cluster fast path"
    );
    let dump2 = result_of(&lines[3])
        .get("dump")
        .and_then(|d| d.as_str().map(str::to_owned))
        .expect("dump string");
    assert_eq!(
        dump2, reference,
        "selection after a no-op ECO must still match the one-shot dump"
    );
    let stats = result_of(&lines[4]);
    assert_eq!(stats.get("eco_updates").and_then(|v| v.as_i64()), Some(1));
    let interned = stats
        .get("symbol")
        .and_then(|s| s.get("interned"))
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    assert!(interned > 0, "symbol gauges must be surfaced in stats");
    let bad = pao_obs::json::parse(&lines[5]).expect("valid");
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("code"))
            .and_then(|v| v.as_i64()),
        Some(-32601),
        "unknown method maps to METHOD_NOT_FOUND"
    );

    let lines = call(&[r#"{"id":9,"method":"shutdown"}"#.to_owned()]);
    assert!(lines[0].contains("\"result\""), "{}", lines[0]);
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon must exit 0 after shutdown");
    assert!(!sock.exists(), "socket file is unlinked on shutdown");
}
