//! End-to-end tests of the `pao` binary.

use std::path::PathBuf;
use std::process::Command;

fn pao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pao"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pao-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = pao().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn gen_list_names_all_cases() {
    let out = pao().args(["gen", "list"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ispd18s_test1"));
    assert!(text.contains("ispd18s_test10"));
    assert!(text.contains("aes14"));
}

#[test]
fn gen_analyze_drc_pipeline() {
    let lef = tmp("p.lef");
    let def = tmp("p.def");
    let out = pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("failed pins      : 0"), "{text}");

    let out = pao()
        .arg("drc")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 static violations"));
}

#[test]
fn analyze_svg_renders_instance() {
    let lef = tmp("s.lef");
    let def = tmp("s.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let svg = tmp("u0.svg");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--svg")
        .arg(format!("u0:{}", svg.display()))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&svg).expect("svg written");
    assert!(content.starts_with("<svg"));
}

#[test]
fn profile_smoke_writes_valid_chrome_trace() {
    let trace = tmp("profile_trace.json");
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "2", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("via-memo hit rate"), "{text}");
    assert!(text.contains("AP acceptance by type pair"), "{text}");
    assert!(text.contains("trace: item spans cover"), "{text}");
    // The trace must be valid JSON carrying the Chrome trace envelope
    // with at least one complete ("ph":"X") span event.
    let json = std::fs::read_to_string(&trace).expect("trace written");
    pao_obs::json::validate(&json).expect("trace is valid JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"phase.apgen\""));
}

#[test]
fn analyze_metrics_flag_prints_counter_table() {
    let lef = tmp("m.lef");
    let def = tmp("m.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--metrics")
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics:"), "{text}");
    assert!(text.contains("apgen.via_memo."), "{text}");
    assert!(text.contains("select.cluster_size"), "{text}");
}

#[test]
fn bench_json_is_stamped_with_provenance() {
    let out_path = tmp("bench.json");
    let out = pao()
        .args(["bench", "--case", "smoke", "--threads", "2", "--out"])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("bench json written");
    pao_obs::json::validate(&json).expect("bench output is valid JSON");
    for key in ["\"git_rev\":", "\"host_threads\":", "\"timestamp\":"] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // ISO-8601 UTC stamp: "YYYY-MM-DDTHH:MM:SSZ".
    let stamp = json
        .split("\"timestamp\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("timestamp value");
    assert_eq!(stamp.len(), 20, "unexpected timestamp shape: {stamp}");
    assert!(stamp.ends_with('Z') && stamp.as_bytes()[10] == b'T');
}

#[test]
fn missing_file_reports_error() {
    let out = pao()
        .args(["analyze", "/nonexistent.lef", "/nonexistent.def"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_case_reports_error() {
    let out = pao()
        .args(["gen", "bogus", "--lef", "/tmp/x.lef", "--def", "/tmp/x.def"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown case"));
}
