//! End-to-end tests of the `pao` binary.

use std::path::PathBuf;
use std::process::Command;

fn pao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pao"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pao-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = pao().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn gen_list_names_all_cases() {
    let out = pao().args(["gen", "list"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ispd18s_test1"));
    assert!(text.contains("ispd18s_test10"));
    assert!(text.contains("aes14"));
}

#[test]
fn gen_analyze_drc_pipeline() {
    let lef = tmp("p.lef");
    let def = tmp("p.def");
    let out = pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("failed pins      : 0"), "{text}");

    let out = pao()
        .arg("drc")
        .arg(&lef)
        .arg(&def)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 static violations"));
}

#[test]
fn analyze_svg_renders_instance() {
    let lef = tmp("s.lef");
    let def = tmp("s.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let svg = tmp("u0.svg");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--svg")
        .arg(format!("u0:{}", svg.display()))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&svg).expect("svg written");
    assert!(content.starts_with("<svg"));
}

#[test]
fn profile_smoke_writes_valid_chrome_trace() {
    let trace = tmp("profile_trace.json");
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "2", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("via-memo hit rate"), "{text}");
    assert!(text.contains("AP acceptance by type pair"), "{text}");
    assert!(text.contains("trace: item spans cover"), "{text}");
    // The trace must be valid JSON carrying the Chrome trace envelope
    // with at least one complete ("ph":"X") span event.
    let json = std::fs::read_to_string(&trace).expect("trace written");
    pao_obs::json::validate(&json).expect("trace is valid JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"phase.apgen\""));
}

#[test]
fn analyze_metrics_flag_prints_counter_table() {
    let lef = tmp("m.lef");
    let def = tmp("m.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--metrics")
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics:"), "{text}");
    assert!(text.contains("apgen.via_memo."), "{text}");
    assert!(text.contains("select.cluster_size"), "{text}");
}

#[test]
fn bench_json_is_stamped_with_provenance() {
    let out_path = tmp("bench.json");
    let out = pao()
        .args(["bench", "--case", "smoke", "--threads", "2", "--out"])
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("bench json written");
    pao_obs::json::validate(&json).expect("bench output is valid JSON");
    for key in ["\"git_rev\":", "\"host_threads\":", "\"timestamp\":"] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // ISO-8601 UTC stamp: "YYYY-MM-DDTHH:MM:SSZ".
    let stamp = json
        .split("\"timestamp\": \"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("timestamp value");
    assert_eq!(stamp.len(), 20, "unexpected timestamp shape: {stamp}");
    assert!(stamp.ends_with('Z') && stamp.as_bytes()[10] == b'T');
}

#[test]
fn missing_file_reports_error() {
    let out = pao()
        .args(["analyze", "/nonexistent.lef", "/nonexistent.def"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3), "input errors exit 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn exit_codes_distinguish_usage_input_and_degraded() {
    // Usage: no arguments at all.
    let out = pao().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    // Usage: bad flag value.
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "banana"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    // Input: malformed LEF names the file and line in the error chain.
    let lef = tmp("bad.lef");
    std::fs::write(&lef, "LAYER M1\nTHIS IS NOT LEF\n").expect("write");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg("/nonexistent.def")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("input error"), "{err}");
    assert!(err.contains("bad.lef"), "{err}");
}

#[test]
fn injected_fault_degrades_and_exit_codes_honor_degraded_ok() {
    let lef = tmp("f.lef");
    let def = tmp("f.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    // Without --degraded-ok: the run completes, reports the quarantined
    // item, and exits 5.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--inject-fault", "apgen:0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(5), "degraded without --degraded-ok");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined      : 1"), "{text}");
    assert!(text.contains("[apgen]"), "{text}");
    assert!(
        text.contains("injected fault at apgen.instance[0]"),
        "{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("degraded"), "{err}");
    // With --degraded-ok: same degraded report, exit 0.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--inject-fault", "audit:1", "--degraded-ok"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "--degraded-ok accepts degraded");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined      : 1"), "{text}");
    assert!(text.contains("[audit]"), "{text}");
    // Unknown phase name is a usage error.
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .args(["--inject-fault", "bogus"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn corrupt_cache_is_rejected_and_rebuilt() {
    let lef = tmp("c.lef");
    let def = tmp("c.def");
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .status()
        .expect("spawn")
        .success());
    let cache = tmp("c.cache");
    // Seed the cache with garbage (e.g. a truncated write from a killed
    // process): the analysis must warn, rebuild, and exit 0.
    std::fs::write(&cache, "PAO-CACHE v1\nENTRY master=X orient=N").expect("write");
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--cache")
        .arg(&cache)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rejected, rebuilding"), "{err}");
    // The rebuilt cache is valid: a second run loads it cleanly (all
    // hits, no rejection warning).
    let out = pao()
        .arg("analyze")
        .arg(&lef)
        .arg(&def)
        .arg("--cache")
        .arg(&cache)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("rejected"), "{err}");
    assert!(err.contains("hits"), "{err}");
}

#[test]
fn profile_reports_quarantined_section_on_injected_fault() {
    // Healthy run: no quarantine section.
    let out = pao()
        .args(["profile", "--case", "smoke", "--threads", "2"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        !text.contains("quarantined items"),
        "healthy run must not print a quarantine section: {text}"
    );
    // Faulted run: the section lists the item and the fault.quarantined.*
    // counter shows up in the metrics table.
    let out = pao()
        .args([
            "profile",
            "--case",
            "smoke",
            "--threads",
            "2",
            "--inject-fault",
            "pattern:0",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined items : 1"), "{text}");
    assert!(text.contains("[pattern]"), "{text}");
    assert!(text.contains("fault.quarantined.pattern"), "{text}");
}

#[test]
fn unknown_case_reports_error() {
    let out = pao()
        .args(["gen", "bogus", "--lef", "/tmp/x.lef", "--def", "/tmp/x.def"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown case"));
}
