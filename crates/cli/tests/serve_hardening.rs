//! Wire-layer hardening tests for `pao serve`: hostile frames, admission
//! limits, stale sockets, crash recovery and the `pao call` transport
//! contract. Each test talks to a real daemon process over a Unix socket
//! with raw streams (not `pao call`) so it can send byte sequences no
//! well-behaved client would.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn pao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pao"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pao-serve-hardening");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Generates the smoke LEF/DEF pair once per test (distinct names keep
/// parallel tests isolated).
fn gen_world(stem: &str) -> (PathBuf, PathBuf) {
    let lef = tmp(&format!("{stem}.lef"));
    let def = tmp(&format!("{stem}.def"));
    assert!(pao()
        .args(["gen", "smoke", "--lef"])
        .arg(&lef)
        .arg("--def")
        .arg(&def)
        .stdout(Stdio::null())
        .status()
        .expect("gen spawns")
        .success());
    (lef, def)
}

/// Spawns a daemon and waits until its socket answers. Every test path
/// reaps the child (clean `shutdown()` or `kill()` + `wait()`).
#[allow(clippy::zombie_processes)]
fn spawn_daemon(lef: &Path, def: &Path, sock: &Path, extra: &[&str]) -> Child {
    let _ = std::fs::remove_file(sock);
    let daemon = pao()
        .arg("serve")
        .arg(lef)
        .arg(def)
        .arg("--socket")
        .arg(sock)
        .args(["--threads", "2"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    for _ in 0..400 {
        if UnixStream::connect(sock).is_ok() {
            return daemon;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon never came up on {}", sock.display());
}

/// A raw client connection with a read timeout (a hung test is a failed
/// test, not a stuck CI job).
fn raw_conn(sock: &Path) -> (UnixStream, BufReader<UnixStream>) {
    let s = UnixStream::connect(sock).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let r = BufReader::new(s.try_clone().expect("clone"));
    (s, r)
}

fn send(s: &mut UnixStream, bytes: &[u8]) {
    s.write_all(bytes).expect("send");
    s.flush().expect("flush");
}

fn recv_line(r: &mut BufReader<UnixStream>) -> String {
    let mut line = String::new();
    let n = r.read_line(&mut line).expect("response read");
    assert!(n > 0, "daemon closed the connection unexpectedly");
    line
}

fn error_code(line: &str) -> Option<i64> {
    pao_obs::json::parse(line)
        .expect("response parses as JSON")
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(pao_obs::json::Value::as_i64)
}

fn has_result(line: &str) -> bool {
    pao_obs::json::parse(line)
        .expect("response parses as JSON")
        .get("result")
        .is_some()
}

fn shutdown(sock: &Path, daemon: &mut Child) {
    let (mut s, mut r) = raw_conn(sock);
    send(&mut s, b"{\"id\":99,\"method\":\"shutdown\"}\n");
    let resp = recv_line(&mut r);
    assert!(has_result(&resp), "shutdown failed: {resp}");
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status:?}");
}

/// Truncated JSON, then binary garbage, then a valid request — all on
/// one connection. The first two earn parse errors; the connection must
/// survive to serve the third.
#[test]
fn garbage_frames_get_typed_errors_and_connection_survives() {
    let (lef, def) = gen_world("garbage");
    let sock = tmp("garbage.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &[]);
    let (mut s, mut r) = raw_conn(&sock);

    send(&mut s, b"{\"id\":1,\"method\":\n");
    assert_eq!(error_code(&recv_line(&mut r)), Some(-32700));

    let mut garbage: Vec<u8> = (1u8..=255).filter(|&b| b != b'\n').collect();
    garbage.push(b'\n');
    send(&mut s, &garbage);
    assert_eq!(error_code(&recv_line(&mut r)), Some(-32700));

    send(&mut s, b"{\"id\":2,\"method\":\"stats\"}\n");
    assert!(has_result(&recv_line(&mut r)));
    drop((s, r));
    shutdown(&sock, &mut daemon);
}

/// A frame past `--max-frame-bytes` is drained and rejected with
/// `-32002`; the same connection keeps serving, and the `serve` counters
/// (via `stats` and `pao profile --socket`) record the rejection.
#[test]
fn oversized_frame_rejected_and_counted_without_closing_connection() {
    let (lef, def) = gen_world("oversized");
    let sock = tmp("oversized.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &["--max-frame-bytes", "4096"]);
    let (mut s, mut r) = raw_conn(&sock);

    let mut big = vec![b'x'; 9000];
    big.push(b'\n');
    send(&mut s, &big);
    assert_eq!(error_code(&recv_line(&mut r)), Some(-32002));

    send(&mut s, b"{\"id\":1,\"method\":\"stats\"}\n");
    let resp = recv_line(&mut r);
    assert!(has_result(&resp));
    let v = pao_obs::json::parse(&resp).expect("stats parses");
    let oversized = v
        .get("result")
        .and_then(|x| x.get("serve"))
        .and_then(|x| x.get("oversized"))
        .and_then(pao_obs::json::Value::as_i64)
        .expect("serve.oversized present");
    assert!(oversized >= 1, "oversized counter should record the frame");

    let profile = pao()
        .arg("profile")
        .arg("--socket")
        .arg(&sock)
        .output()
        .expect("profile runs");
    assert!(profile.status.success());
    let text = String::from_utf8_lossy(&profile.stdout);
    assert!(text.contains("serve.oversized"), "profile output: {text}");

    drop((s, r));
    shutdown(&sock, &mut daemon);
}

/// A client that vanishes mid-request must not take the daemon with it.
#[test]
fn abrupt_disconnect_leaves_daemon_serving() {
    let (lef, def) = gen_world("abrupt");
    let sock = tmp("abrupt.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &[]);

    let (mut s, _r) = raw_conn(&sock);
    send(&mut s, b"{\"id\":1,\"meth"); // no newline, then hang up
    drop(s);
    std::thread::sleep(Duration::from_millis(100));

    let (mut s, mut r) = raw_conn(&sock);
    send(&mut s, b"{\"id\":2,\"method\":\"stats\"}\n");
    assert!(has_result(&recv_line(&mut r)));
    drop((s, r));
    shutdown(&sock, &mut daemon);
}

/// `--max-requests N`: request N+1 on one connection earns `-32003` and
/// the connection closes; a fresh connection starts a fresh budget.
#[test]
fn per_connection_request_cap_closes_with_typed_error() {
    let (lef, def) = gen_world("reqcap");
    let sock = tmp("reqcap.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &["--max-requests", "3"]);
    let (mut s, mut r) = raw_conn(&sock);
    for i in 0..3 {
        send(
            &mut s,
            format!("{{\"id\":{i},\"method\":\"stats\"}}\n").as_bytes(),
        );
        assert!(has_result(&recv_line(&mut r)));
    }
    send(&mut s, b"{\"id\":4,\"method\":\"stats\"}\n");
    assert_eq!(error_code(&recv_line(&mut r)), Some(-32003));
    let mut rest = String::new();
    assert_eq!(
        r.read_line(&mut rest).expect("post-cap read"),
        0,
        "connection must close after the request cap"
    );
    drop((s, r));

    let (mut s, mut r) = raw_conn(&sock);
    send(&mut s, b"{\"id\":5,\"method\":\"stats\"}\n");
    assert!(has_result(&recv_line(&mut r)));
    drop((s, r));
    shutdown(&sock, &mut daemon);
}

/// `--idle-ms`: a silent connection is closed; the daemon keeps serving
/// new ones.
#[test]
fn idle_connection_is_closed() {
    let (lef, def) = gen_world("idle");
    let sock = tmp("idle.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &["--idle-ms", "200"]);
    let (_s, mut r) = raw_conn(&sock);
    let mut line = String::new();
    let n = r.read_line(&mut line).expect("idle read");
    assert_eq!(n, 0, "idle connection must be closed, got: {line}");

    let (mut s, mut r) = raw_conn(&sock);
    send(&mut s, b"{\"id\":1,\"method\":\"stats\"}\n");
    assert!(has_result(&recv_line(&mut r)));
    drop((s, r));
    shutdown(&sock, &mut daemon);
}

/// `--max-conns 1`: a second concurrent connection is shed with the
/// typed `-32001` + retry hint; the first keeps working.
#[test]
fn connection_cap_sheds_with_retry_hint() {
    let (lef, def) = gen_world("conncap");
    let sock = tmp("conncap.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &["--max-conns", "1"]);
    // Acquire the single serving slot. The readiness probe inside
    // spawn_daemon may still be draining its own connection for a
    // moment, so the first attempts can legitimately be shed — retry
    // until a connection completes a stats round trip.
    let (mut s1, mut r1) = loop {
        let (mut s, mut r) = raw_conn(&sock);
        send(&mut s, b"{\"id\":1,\"method\":\"stats\"}\n");
        if has_result(&recv_line(&mut r)) {
            break (s, r);
        }
        drop((s, r));
        std::thread::sleep(Duration::from_millis(25));
    };

    let (_s2, mut r2) = raw_conn(&sock);
    let line = recv_line(&mut r2);
    assert_eq!(error_code(&line), Some(-32001), "got: {line}");
    assert!(line.contains("retry_after_ms"), "got: {line}");

    send(&mut s1, b"{\"id\":2,\"method\":\"stats\"}\n");
    assert!(has_result(&recv_line(&mut r1)));
    drop((s1, r1));
    shutdown(&sock, &mut daemon);
}

/// Stale-socket startup: a path held by a *live* daemon is refused
/// (exit 3); the socket file left behind by a SIGKILLed daemon is
/// probed, found dead, unlinked and reclaimed.
#[test]
fn stale_socket_reclaimed_but_live_socket_refused() {
    let (lef, def) = gen_world("stale");
    let sock = tmp("stale.sock");
    let mut daemon = spawn_daemon(&lef, &def, &sock, &[]);

    let second = pao()
        .arg("serve")
        .arg(&lef)
        .arg(&def)
        .arg("--socket")
        .arg(&sock)
        .output()
        .expect("second serve runs");
    assert_eq!(second.status.code(), Some(3), "live socket must be refused");
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("in use"),
        "stderr: {}",
        String::from_utf8_lossy(&second.stderr)
    );

    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap");
    assert!(sock.exists(), "SIGKILL leaves the socket file behind");

    // spawn_daemon would unlink the file itself; bypass that to prove
    // the daemon reclaims it.
    let mut revived = pao()
        .arg("serve")
        .arg(&lef)
        .arg(&def)
        .arg("--socket")
        .arg(&sock)
        .args(["--threads", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("revived daemon spawns");
    let mut up = false;
    for _ in 0..400 {
        if let Ok(mut s) = UnixStream::connect(&sock) {
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            send(&mut s, b"{\"id\":1,\"method\":\"stats\"}\n");
            if has_result(&recv_line(&mut r)) {
                up = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(up, "daemon must reclaim the stale socket");
    shutdown(&sock, &mut revived);
}

/// `pao call` transport contract: an endpoint that never answers fails
/// with exit 7 (distinct from server-side in-band errors, which exit 0 —
/// covered by the main CLI serve test).
#[test]
fn call_connect_timeout_exits_transport_code() {
    let out = pao()
        .args([
            "call",
            "--socket",
            "/nonexistent/pao-hardening.sock",
            "--timeout-ms",
            "300",
            "{\"id\":1,\"method\":\"stats\"}",
        ])
        .output()
        .expect("call runs");
    assert_eq!(out.status.code(), Some(7), "transport failures exit 7");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("transport"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `shutdown` racing an in-flight `eco_update` never leaves a partial
/// swap: after the daemon exits, a `--resume` restart must serve a dump
/// byte-identical to a fresh twin that serially replays the recovered
/// journal — whether the racing ECO committed or not.
#[test]
fn shutdown_racing_eco_is_never_a_partial_swap() {
    let (lef, def) = gen_world("race");
    let sock = tmp("race.sock");
    let ckpt = tmp("race-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);
    let ckpt_arg = ckpt.to_string_lossy().into_owned();
    let mut daemon = spawn_daemon(&lef, &def, &sock, &["--checkpoint", &ckpt_arg]);

    // Learn a movable instance name from the dump.
    let (mut s, mut r) = raw_conn(&sock);
    send(&mut s, b"{\"id\":1,\"method\":\"dump_selection\"}\n");
    let dump_resp = recv_line(&mut r);
    let v = pao_obs::json::parse(&dump_resp).expect("dump parses");
    let dump = v
        .get("result")
        .and_then(|x| x.get("dump"))
        .and_then(pao_obs::json::Value::as_str)
        .expect("dump text")
        .to_owned();
    // Dump lines read `comp <idx> <name> pattern <p>` — the instance
    // name is the third token.
    let inst = dump
        .lines()
        .find_map(|l| l.split_whitespace().nth(2))
        .expect("dump names an instance")
        .to_owned();

    // Race: the ECO goes out on this connection; shutdown lands on a
    // second connection a moment later, while the ECO may still be
    // re-analyzing under the write lock.
    let eco = format!(
        "{{\"id\":2,\"method\":\"eco_update\",\"params\":{{\"moves\":[{{\"inst\":\"{inst}\",\"dx\":40,\"dy\":0}}]}}}}\n"
    );
    send(&mut s, eco.as_bytes());
    std::thread::sleep(Duration::from_millis(5));
    if let Ok(mut s2) = UnixStream::connect(&sock) {
        let _ = s2.set_read_timeout(Some(Duration::from_secs(20)));
        let _ = s2.write_all(b"{\"id\":3,\"method\":\"shutdown\"}\n");
        let _ = s2.flush();
        // Best-effort read; an accepted shutdown is latched server-side
        // even if this client vanished without reading the reply.
        let mut resp = String::new();
        let _ = BufReader::new(s2).read_line(&mut resp);
    }
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status:?}");
    drop((s, r));

    // Twin A: restart from the checkpoint dir's journal.
    let resumed_sock = tmp("race-resumed.sock");
    let mut resumed = spawn_daemon(
        &lef,
        &def,
        &resumed_sock,
        &["--checkpoint", &ckpt_arg, "--resume"],
    );
    let (mut s, mut r) = raw_conn(&resumed_sock);
    send(&mut s, b"{\"id\":1,\"method\":\"dump_selection\"}\n");
    let resumed_dump = recv_line(&mut r);
    drop((s, r));
    shutdown(&resumed_sock, &mut resumed);

    // Twin B: a fresh daemon fed the journal's batches serially.
    let journal = ckpt.join("eco.journal");
    let emit = pao()
        .arg("soak")
        .args(["--mode", "emit", "--journal"])
        .arg(&journal)
        .output()
        .expect("emit runs");
    assert!(emit.status.success());
    let twin_sock = tmp("race-twin.sock");
    let mut twin = spawn_daemon(&lef, &def, &twin_sock, &[]);
    let (mut s, mut r) = raw_conn(&twin_sock);
    for line in String::from_utf8_lossy(&emit.stdout).lines() {
        send(&mut s, format!("{line}\n").as_bytes());
        let resp = recv_line(&mut r);
        assert!(has_result(&resp), "journaled ECO must replay: {resp}");
    }
    send(&mut s, b"{\"id\":1,\"method\":\"dump_selection\"}\n");
    let twin_dump = recv_line(&mut r);
    drop((s, r));
    shutdown(&twin_sock, &mut twin);

    assert_eq!(
        resumed_dump, twin_dump,
        "resumed dump diverged from the serial-replay twin"
    );
}

/// ECO batches survive `kill -9`: what the journal accepted before the
/// kill replays to the same snapshot on restart.
#[test]
fn kill_dash_nine_then_resume_replays_journal() {
    let (lef, def) = gen_world("kill9");
    let sock = tmp("kill9.sock");
    let ckpt = tmp("kill9-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);
    let ckpt_arg = ckpt.to_string_lossy().into_owned();
    let mut daemon = spawn_daemon(&lef, &def, &sock, &["--checkpoint", &ckpt_arg]);

    let (mut s, mut r) = raw_conn(&sock);
    send(&mut s, b"{\"id\":1,\"method\":\"dump_selection\"}\n");
    let v = pao_obs::json::parse(&recv_line(&mut r)).expect("dump parses");
    let dump = v
        .get("result")
        .and_then(|x| x.get("dump"))
        .and_then(pao_obs::json::Value::as_str)
        .expect("dump text")
        .to_owned();
    let inst = dump
        .lines()
        .find_map(|l| l.split_whitespace().nth(2))
        .expect("instance")
        .to_owned();
    let eco = format!(
        "{{\"id\":2,\"method\":\"eco_update\",\"params\":{{\"moves\":[{{\"inst\":\"{inst}\",\"dx\":40,\"dy\":0}}]}}}}\n"
    );
    send(&mut s, eco.as_bytes());
    assert!(has_result(&recv_line(&mut r)), "eco must apply");
    daemon.kill().expect("SIGKILL");
    daemon.wait().expect("reap");
    drop((s, r));

    let resumed_sock = tmp("kill9-resumed.sock");
    let mut resumed = spawn_daemon(
        &lef,
        &def,
        &resumed_sock,
        &["--checkpoint", &ckpt_arg, "--resume"],
    );
    let (mut s, mut r) = raw_conn(&resumed_sock);
    send(&mut s, b"{\"id\":1,\"method\":\"stats\"}\n");
    let stats = pao_obs::json::parse(&recv_line(&mut r)).expect("stats parses");
    let replayed = stats
        .get("result")
        .and_then(|x| x.get("serve"))
        .and_then(|x| x.get("journal_replayed"))
        .and_then(pao_obs::json::Value::as_i64)
        .expect("serve.journal_replayed");
    assert_eq!(replayed, 1, "the killed daemon's ECO must replay");
    let eco_updates = stats
        .get("result")
        .and_then(|x| x.get("eco_updates"))
        .and_then(pao_obs::json::Value::as_i64)
        .expect("eco_updates");
    assert_eq!(eco_updates, 1);
    drop((s, r));
    shutdown(&resumed_sock, &mut resumed);
}
