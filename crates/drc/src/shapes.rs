//! Owned shape sets — the DRC context.

use pao_geom::{RTree, Rect};
use pao_tech::LayerId;
use std::fmt;

/// Identifies who a shape belongs to, deciding which pairs of shapes can
/// conflict. Two shapes with the **same owner** never conflict (they are,
/// or will become, electrically connected); everything else is checked.
///
/// The `u32` payloads are opaque to the engine — callers choose a scheme
/// (pin index within a unique instance, net id, component id, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Owner {
    /// A pin, identified by an opaque id (e.g. `comp << 8 | pin_index`).
    Pin(u64),
    /// An obstruction belonging to component `id`. Obstructions conflict
    /// with everything, including each other.
    Obs(u64),
    /// A routed net.
    Net(u64),
    /// A fixed blockage (die margin, macro halo).
    Blockage,
}

impl Owner {
    /// Convenience constructor for pin owners.
    #[must_use]
    pub fn pin(id: u64) -> Owner {
        Owner::Pin(id)
    }

    /// Convenience constructor for obstruction owners.
    #[must_use]
    pub fn obs(id: u64) -> Owner {
        Owner::Obs(id)
    }

    /// Convenience constructor for net owners.
    #[must_use]
    pub fn net(id: u64) -> Owner {
        Owner::Net(id)
    }

    /// `true` when shapes of `self` and `other` must satisfy spacing rules
    /// against each other.
    #[must_use]
    pub fn conflicts_with(self, other: Owner) -> bool {
        match (self, other) {
            (Owner::Obs(_), Owner::Obs(_)) => true,
            (Owner::Blockage, Owner::Blockage) => true,
            (a, b) => a != b,
        }
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Pin(id) => write!(f, "pin#{id}"),
            Owner::Obs(id) => write!(f, "obs#{id}"),
            Owner::Net(id) => write!(f, "net#{id}"),
            Owner::Blockage => write!(f, "blockage"),
        }
    }
}

/// A per-layer spatial index of owned shapes — the context the DRC engine
/// checks candidates against.
///
/// ```
/// use pao_drc::{Owner, ShapeSet};
/// use pao_geom::Rect;
/// use pao_tech::LayerId;
///
/// let mut ctx = ShapeSet::new(2);
/// ctx.insert(LayerId(0), Rect::new(0, 0, 10, 10), Owner::pin(1));
/// assert_eq!(ctx.query(LayerId(0), Rect::new(5, 5, 6, 6)).count(), 1);
/// assert_eq!(ctx.query(LayerId(1), Rect::new(5, 5, 6, 6)).count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ShapeSet {
    layers: Vec<RTree<Owner>>,
}

impl ShapeSet {
    /// Creates an empty set able to hold shapes on `num_layers` layers.
    #[must_use]
    pub fn new(num_layers: usize) -> ShapeSet {
        ShapeSet {
            layers: (0..num_layers).map(|_| RTree::new()).collect(),
        }
    }

    /// Number of layers the set spans.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.iter().map(RTree::len).sum()
    }

    /// `true` when the set holds no shapes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a shape.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn insert(&mut self, layer: LayerId, rect: Rect, owner: Owner) {
        self.layers[layer.index()].insert(rect, owner);
    }

    /// Inserts a shape without the automatic repack of
    /// [`ShapeSet::insert`] — the bulk-fill form. A fill of `n` shapes
    /// stays O(n) instead of paying repeated intermediate tree packs;
    /// call [`ShapeSet::rebuild`] once when the fill is complete.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn insert_deferred(&mut self, layer: LayerId, rect: Rect, owner: Owner) {
        self.layers[layer.index()].defer_insert(rect, owner);
    }

    /// Bulk-inserts shapes and repacks the indexes (call once after filling
    /// a large context).
    pub fn rebuild(&mut self) {
        for t in &mut self.layers {
            t.rebuild();
        }
    }

    /// Stitches independently packed shard sets into one set — the
    /// whole-design scaling path. Each shard keeps its per-layer subtree
    /// intact ([`pao_geom::RTree::from_shards`]), so shards can be built
    /// and packed on worker threads while the merged result depends only
    /// on the shard partitioning, never on thread count.
    ///
    /// An empty `shards` yields a set spanning zero layers.
    ///
    /// # Panics
    ///
    /// Panics when shards span differing numbers of layers.
    #[must_use]
    pub fn from_shards(shards: Vec<ShapeSet>) -> ShapeSet {
        let num_layers = shards.first().map_or(0, ShapeSet::num_layers);
        let mut per_layer: Vec<Vec<RTree<Owner>>> = (0..num_layers)
            .map(|_| Vec::with_capacity(shards.len()))
            .collect();
        for s in shards {
            assert_eq!(
                s.num_layers(),
                num_layers,
                "shard contexts must span the same layers"
            );
            for (li, tree) in s.layers.into_iter().enumerate() {
                per_layer[li].push(tree);
            }
        }
        ShapeSet {
            layers: per_layer.into_iter().map(RTree::from_shards).collect(),
        }
    }

    /// A new, fully packed set holding this set's shapes plus `extra`'s —
    /// one bulk load per layer, with none of the clone-then-rebuild waste
    /// of copying an index that is about to be discarded. `extra` need not
    /// be rebuilt; its raw items are read directly.
    ///
    /// # Panics
    ///
    /// Panics when the two sets span a different number of layers.
    #[must_use]
    pub fn merged(&self, extra: &ShapeSet) -> ShapeSet {
        assert_eq!(
            self.layers.len(),
            extra.layers.len(),
            "merged contexts must span the same layers"
        );
        ShapeSet {
            layers: self
                .layers
                .iter()
                .zip(&extra.layers)
                .map(|(a, b)| {
                    let mut items = Vec::with_capacity(a.len() + b.len());
                    items.extend(a.iter().copied());
                    items.extend(b.iter().copied());
                    RTree::bulk_load(items)
                })
                .collect(),
        }
    }

    /// Shapes on `layer` touching `window`.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn query(&self, layer: LayerId, window: Rect) -> impl Iterator<Item = (Rect, Owner)> + '_ {
        self.layers[layer.index()]
            .query(window)
            .map(|(r, &o)| (r, o))
    }

    /// Shapes on `layer` touching `window` whose owner conflicts with
    /// `owner`.
    pub fn conflicts(
        &self,
        layer: LayerId,
        window: Rect,
        owner: Owner,
    ) -> impl Iterator<Item = (Rect, Owner)> + '_ {
        self.query(layer, window)
            .filter(move |&(_, o)| o.conflicts_with(owner))
    }

    /// Shapes on `layer` touching `window` with exactly the given owner —
    /// the "friendly" metal that merges with a candidate.
    pub fn friends(
        &self,
        layer: LayerId,
        window: Rect,
        owner: Owner,
    ) -> impl Iterator<Item = Rect> + '_ {
        self.query(layer, window)
            .filter(move |&(_, o)| o == owner)
            .map(|(r, _)| r)
    }

    /// All shapes on a layer.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn iter_layer(&self, layer: LayerId) -> impl Iterator<Item = (Rect, Owner)> + '_ {
        self.layers[layer.index()].iter().map(|&(r, o)| (r, o))
    }

    /// Visitor form of [`ShapeSet::query`]: calls `f` for every shape on
    /// `layer` touching `window`, without building an iterator adapter
    /// chain. `f` returns `false` to stop the walk; the method returns
    /// `false` iff the walk was stopped.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn for_each_in<F: FnMut(Rect, Owner) -> bool>(
        &self,
        layer: LayerId,
        window: Rect,
        mut f: F,
    ) -> bool {
        self.layers[layer.index()].visit(window, &mut |r, &o| f(r, o))
    }

    /// Visitor form of [`ShapeSet::conflicts`] — only shapes whose owner
    /// conflicts with `owner` reach `f`.
    pub fn for_each_conflict<F: FnMut(Rect, Owner) -> bool>(
        &self,
        layer: LayerId,
        window: Rect,
        owner: Owner,
        mut f: F,
    ) -> bool {
        self.for_each_in(layer, window, |r, o| {
            if o.conflicts_with(owner) {
                f(r, o)
            } else {
                true
            }
        })
    }

    /// Visitor form of [`ShapeSet::friends`] — only shapes with exactly
    /// the given owner reach `f`.
    pub fn for_each_friend<F: FnMut(Rect) -> bool>(
        &self,
        layer: LayerId,
        window: Rect,
        owner: Owner,
        mut f: F,
    ) -> bool {
        self.for_each_in(layer, window, |r, o| if o == owner { f(r) } else { true })
    }

    /// Removes every shape from every layer, keeping the allocated trees
    /// so a reused context does not re-allocate. Pairs with a scratch
    /// [`ShapeSet`] rebuilt per work item.
    pub fn clear(&mut self) {
        for t in &mut self.layers {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_conflict_matrix() {
        assert!(!Owner::pin(1).conflicts_with(Owner::pin(1)));
        assert!(Owner::pin(1).conflicts_with(Owner::pin(2)));
        assert!(Owner::pin(1).conflicts_with(Owner::obs(1)));
        assert!(Owner::obs(1).conflicts_with(Owner::obs(1)));
        assert!(!Owner::net(9).conflicts_with(Owner::net(9)));
        assert!(Owner::net(9).conflicts_with(Owner::Blockage));
        assert!(Owner::Blockage.conflicts_with(Owner::Blockage));
    }

    #[test]
    fn per_layer_query() {
        let mut s = ShapeSet::new(3);
        s.insert(LayerId(0), Rect::new(0, 0, 10, 10), Owner::pin(1));
        s.insert(LayerId(2), Rect::new(0, 0, 10, 10), Owner::net(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.query(LayerId(0), Rect::new(0, 0, 5, 5)).count(), 1);
        assert_eq!(s.query(LayerId(1), Rect::new(0, 0, 5, 5)).count(), 0);
        assert_eq!(s.query(LayerId(2), Rect::new(0, 0, 5, 5)).count(), 1);
    }

    #[test]
    fn conflicts_and_friends_filter_by_owner() {
        let mut s = ShapeSet::new(1);
        s.insert(LayerId(0), Rect::new(0, 0, 10, 10), Owner::pin(1));
        s.insert(LayerId(0), Rect::new(20, 0, 30, 10), Owner::pin(2));
        s.rebuild();
        let w = Rect::new(-100, -100, 100, 100);
        assert_eq!(s.conflicts(LayerId(0), w, Owner::pin(1)).count(), 1);
        assert_eq!(s.friends(LayerId(0), w, Owner::pin(1)).count(), 1);
        assert_eq!(s.conflicts(LayerId(0), w, Owner::net(7)).count(), 2);
        assert_eq!(s.friends(LayerId(0), w, Owner::net(7)).count(), 0);
    }

    #[test]
    fn visitors_match_iterators_and_early_exit() {
        let mut s = ShapeSet::new(1);
        s.insert(LayerId(0), Rect::new(0, 0, 10, 10), Owner::pin(1));
        s.insert(LayerId(0), Rect::new(20, 0, 30, 10), Owner::pin(2));
        s.insert(LayerId(0), Rect::new(40, 0, 50, 10), Owner::pin(1));
        s.rebuild();
        let w = Rect::new(-100, -100, 100, 100);
        let mut seen = 0;
        assert!(s.for_each_in(LayerId(0), w, |_, _| {
            seen += 1;
            true
        }));
        assert_eq!(seen, 3);
        let mut conf = Vec::new();
        assert!(s.for_each_conflict(LayerId(0), w, Owner::pin(1), |r, o| {
            conf.push((r, o));
            true
        }));
        let mut iter: Vec<_> = s.conflicts(LayerId(0), w, Owner::pin(1)).collect();
        conf.sort();
        iter.sort();
        assert_eq!(conf, iter);
        let mut fr = 0;
        assert!(s.for_each_friend(LayerId(0), w, Owner::pin(1), |_| {
            fr += 1;
            true
        }));
        assert_eq!(fr, 2);
        // Early exit propagates.
        let mut first = 0;
        assert!(!s.for_each_in(LayerId(0), w, |_, _| {
            first += 1;
            false
        }));
        assert_eq!(first, 1);
    }

    #[test]
    fn from_shards_merges_layers_and_owners() {
        let mut a = ShapeSet::new(2);
        a.insert_deferred(LayerId(0), Rect::new(0, 0, 10, 10), Owner::pin(1));
        a.insert_deferred(LayerId(1), Rect::new(0, 0, 10, 10), Owner::obs(7));
        a.rebuild();
        let mut b = ShapeSet::new(2);
        b.insert_deferred(LayerId(0), Rect::new(100, 0, 110, 10), Owner::pin(2));
        b.rebuild();
        let merged = ShapeSet::from_shards(vec![a, b, ShapeSet::new(2)]);
        assert_eq!(merged.num_layers(), 2);
        assert_eq!(merged.len(), 3);
        let w = Rect::new(-1000, -1000, 1000, 1000);
        let mut l0: Vec<Owner> = merged.query(LayerId(0), w).map(|(_, o)| o).collect();
        l0.sort();
        assert_eq!(l0, vec![Owner::pin(1), Owner::pin(2)]);
        assert_eq!(merged.query(LayerId(1), w).count(), 1);
        // The merged set still composes with the audit-path repack.
        let full = merged.merged(&ShapeSet::new(2));
        assert_eq!(full.len(), 3);
    }

    #[test]
    #[should_panic]
    fn from_shards_rejects_layer_mismatch() {
        let _ = ShapeSet::from_shards(vec![ShapeSet::new(1), ShapeSet::new(2)]);
    }

    #[test]
    fn clear_keeps_layers_but_drops_shapes() {
        let mut s = ShapeSet::new(2);
        s.insert(LayerId(0), Rect::new(0, 0, 10, 10), Owner::pin(1));
        s.insert(LayerId(1), Rect::new(0, 0, 10, 10), Owner::pin(2));
        s.rebuild();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.num_layers(), 2);
        s.insert(LayerId(0), Rect::new(0, 0, 5, 5), Owner::pin(3));
        assert_eq!(s.query(LayerId(0), Rect::new(0, 0, 9, 9)).count(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_layer_panics() {
        let s = ShapeSet::new(1);
        let _ = s.query(LayerId(5), Rect::new(0, 0, 1, 1)).count();
    }
}
