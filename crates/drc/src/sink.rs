//! Violation sinks — how DRC results leave the engine.
//!
//! Every check in [`DrcEngine`](crate::DrcEngine) reports violations
//! through a [`DrcSink`] instead of returning a `Vec`. The sink decides
//! what to keep and whether the check should continue: [`CollectAll`]
//! reproduces the classic collect-everything behaviour, [`FirstOnly`]
//! stops the engine at the first violation (the form every accept/reject
//! decision site uses — apgen validity, pattern post-validation, cluster
//! compat probes), and [`CountOnly`] tallies without storing markers.

use crate::violation::DrcViolation;

/// Receives violations from the engine's check methods.
///
/// `report` returns `true` to continue checking; returning `false` makes
/// the engine short-circuit every remaining sub-check of the current
/// query. Check methods propagate the same flag: they return `false` iff
/// a sink stopped them early.
pub trait DrcSink {
    /// Accepts one violation; returns `false` to stop the check.
    fn report(&mut self, v: DrcViolation) -> bool;
}

/// Collects every violation into a caller-provided vector (the behaviour
/// of the classic `Vec`-returning methods, which wrap this sink).
#[derive(Debug)]
pub struct CollectAll<'a> {
    out: &'a mut Vec<DrcViolation>,
}

impl<'a> CollectAll<'a> {
    /// Collects into `out` (not cleared; violations append).
    #[must_use]
    pub fn new(out: &'a mut Vec<DrcViolation>) -> CollectAll<'a> {
        CollectAll { out }
    }
}

impl DrcSink for CollectAll<'_> {
    fn report(&mut self, v: DrcViolation) -> bool {
        self.out.push(v);
        true
    }
}

/// Stops at the first violation; only the clean/dirty verdict survives.
#[derive(Debug, Default)]
pub struct FirstOnly {
    found: bool,
}

impl FirstOnly {
    /// A fresh sink with no violation seen.
    #[must_use]
    pub fn new() -> FirstOnly {
        FirstOnly::default()
    }

    /// `true` when no violation was reported — the geometry is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.found
    }
}

impl DrcSink for FirstOnly {
    fn report(&mut self, _: DrcViolation) -> bool {
        self.found = true;
        false
    }
}

/// Stops at the first violation and *keeps* it — the attribution form
/// of [`FirstOnly`], used by decision sites that record *why* a probe
/// was rejected (the decision ledger) in addition to the verdict.
#[derive(Debug, Default)]
pub struct CaptureFirst {
    first: Option<DrcViolation>,
}

impl CaptureFirst {
    /// A fresh sink with no violation seen.
    #[must_use]
    pub fn new() -> CaptureFirst {
        CaptureFirst::default()
    }

    /// `true` when no violation was reported.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.first.is_none()
    }

    /// Removes and returns the captured violation, if any.
    pub fn take(&mut self) -> Option<DrcViolation> {
        self.first.take()
    }
}

impl DrcSink for CaptureFirst {
    fn report(&mut self, v: DrcViolation) -> bool {
        if self.first.is_none() {
            self.first = Some(v);
        }
        false
    }
}

/// Counts violations without storing them.
#[derive(Debug, Default)]
pub struct CountOnly {
    count: usize,
}

impl CountOnly {
    /// A fresh sink with a zero count.
    #[must_use]
    pub fn new() -> CountOnly {
        CountOnly::default()
    }

    /// Number of violations reported so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }
}

impl DrcSink for CountOnly {
    fn report(&mut self, _: DrcViolation) -> bool {
        self.count += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::RuleKind;
    use pao_geom::Rect;
    use pao_tech::LayerId;

    fn v() -> DrcViolation {
        DrcViolation::new(RuleKind::Short, LayerId(0), Rect::new(0, 0, 1, 1))
    }

    #[test]
    fn collect_all_keeps_everything_and_continues() {
        let mut out = Vec::new();
        let mut sink = CollectAll::new(&mut out);
        assert!(sink.report(v()));
        assert!(sink.report(v()));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn first_only_stops_immediately() {
        let mut sink = FirstOnly::new();
        assert!(sink.is_clean());
        assert!(!sink.report(v()));
        assert!(!sink.is_clean());
    }

    #[test]
    fn capture_first_keeps_the_violation() {
        let mut sink = CaptureFirst::new();
        assert!(sink.is_clean());
        assert!(!sink.report(v()));
        assert!(!sink.is_clean());
        let kept = sink.take().unwrap();
        assert_eq!(kept.rule, RuleKind::Short);
        assert!(sink.is_clean(), "take() drains the capture");
    }

    #[test]
    fn count_only_tallies() {
        let mut sink = CountOnly::new();
        assert!(sink.report(v()));
        assert!(sink.report(v()));
        assert!(sink.report(v()));
        assert_eq!(sink.count(), 3);
    }
}
