//! DRC violation records.

use pao_geom::Rect;
use pao_tech::LayerId;
use std::fmt;

/// The rule class a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleKind {
    /// Two different-owner shapes overlap.
    Short,
    /// Metal-to-metal spacing (simple or table).
    MetalSpacing,
    /// Minimum width of merged metal.
    MinWidth,
    /// Minimum step (short boundary edges of merged metal).
    MinStep,
    /// Minimum area of merged metal.
    MinArea,
    /// End-of-line spacing.
    EolSpacing,
    /// Cut-to-cut spacing.
    CutSpacing,
    /// Cut not sufficiently enclosed by metal.
    Enclosure,
    /// Shape lies outside the die / allowed region.
    OutOfBounds,
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleKind::Short => "short",
            RuleKind::MetalSpacing => "metal spacing",
            RuleKind::MinWidth => "min width",
            RuleKind::MinStep => "min step",
            RuleKind::MinArea => "min area",
            RuleKind::EolSpacing => "end-of-line spacing",
            RuleKind::CutSpacing => "cut spacing",
            RuleKind::Enclosure => "enclosure",
            RuleKind::OutOfBounds => "out of bounds",
        };
        f.write_str(s)
    }
}

/// A single DRC violation with a geometric marker.
///
/// ```
/// use pao_drc::{DrcViolation, RuleKind};
/// use pao_geom::Rect;
/// use pao_tech::LayerId;
///
/// let v = DrcViolation::new(RuleKind::Short, LayerId(0), Rect::new(0, 0, 10, 10));
/// assert_eq!(v.to_string(), "short on L0 at (0, 0) - (10, 10)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrcViolation {
    /// Violated rule class.
    pub rule: RuleKind,
    /// Layer the violation occurs on.
    pub layer: LayerId,
    /// Marker rectangle locating the violation.
    pub marker: Rect,
}

impl DrcViolation {
    /// Creates a violation record.
    #[must_use]
    pub fn new(rule: RuleKind, layer: LayerId, marker: Rect) -> DrcViolation {
        DrcViolation {
            rule,
            layer,
            marker,
        }
    }
}

impl fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} at {}", self.rule, self.layer, self.marker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let v = DrcViolation::new(RuleKind::MinStep, LayerId(2), Rect::new(1, 2, 3, 4));
        assert_eq!(v.to_string(), "min step on L2 at (1, 2) - (3, 4)");
    }

    #[test]
    fn rule_kinds_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(RuleKind::Short);
        set.insert(RuleKind::Short);
        assert_eq!(set.len(), 1);
        assert!(RuleKind::Short < RuleKind::MetalSpacing);
    }
}
