//! DRC violation records.

use pao_geom::Rect;
use pao_tech::LayerId;
use std::fmt;

/// The rule class a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleKind {
    /// Two different-owner shapes overlap.
    Short,
    /// Metal-to-metal spacing (simple or table).
    MetalSpacing,
    /// Minimum width of merged metal.
    MinWidth,
    /// Minimum step (short boundary edges of merged metal).
    MinStep,
    /// Minimum area of merged metal.
    MinArea,
    /// End-of-line spacing.
    EolSpacing,
    /// Cut-to-cut spacing.
    CutSpacing,
    /// Cut not sufficiently enclosed by metal.
    Enclosure,
    /// Shape lies outside the die / allowed region.
    OutOfBounds,
}

impl RuleKind {
    /// Stable numeric code (declaration order) for decision-ledger
    /// records — `pao-obs` stores raw bytes and cannot name this enum.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a ledger `rule` byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<RuleKind> {
        Some(match code {
            0 => RuleKind::Short,
            1 => RuleKind::MetalSpacing,
            2 => RuleKind::MinWidth,
            3 => RuleKind::MinStep,
            4 => RuleKind::MinArea,
            5 => RuleKind::EolSpacing,
            6 => RuleKind::CutSpacing,
            7 => RuleKind::Enclosure,
            8 => RuleKind::OutOfBounds,
            _ => return None,
        })
    }
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleKind::Short => "short",
            RuleKind::MetalSpacing => "metal spacing",
            RuleKind::MinWidth => "min width",
            RuleKind::MinStep => "min step",
            RuleKind::MinArea => "min area",
            RuleKind::EolSpacing => "end-of-line spacing",
            RuleKind::CutSpacing => "cut spacing",
            RuleKind::Enclosure => "enclosure",
            RuleKind::OutOfBounds => "out of bounds",
        };
        f.write_str(s)
    }
}

/// Which stage of a via-placement probe a rejection came from.
///
/// [`via_placement_clean`](crate::DrcEngine::via_placement_clean) runs
/// its sub-checks cheapest-first; the sub-check that fired is half of a
/// reject's attribution (the other half being the [`RuleKind`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubCheck {
    /// Cut-layer spacing/short check of the via's cut shapes.
    #[default]
    Cut,
    /// Bottom-enclosure spacing/short/EOL check.
    Bottom,
    /// Top-enclosure spacing/short/EOL/min-width check.
    Top,
    /// Merged-geometry (pin + enclosure union) min-step/width/area check.
    Merged,
    /// The O(1) definite-reject test proved the merged check would fail.
    DefiniteReject,
}

impl SubCheck {
    /// Stable numeric code for decision-ledger records.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a ledger `subcheck` byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<SubCheck> {
        Some(match code {
            0 => SubCheck::Cut,
            1 => SubCheck::Bottom,
            2 => SubCheck::Top,
            3 => SubCheck::Merged,
            4 => SubCheck::DefiniteReject,
            _ => return None,
        })
    }
}

impl fmt::Display for SubCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubCheck::Cut => "cut",
            SubCheck::Bottom => "bottom",
            SubCheck::Top => "top",
            SubCheck::Merged => "merged",
            SubCheck::DefiniteReject => "definite-reject",
        };
        f.write_str(s)
    }
}

/// Attribution of one rejected probe: the rule that fired and the
/// sub-check it fired in. Stored in [`DrcScratch`](crate::DrcScratch)
/// after every rejected via probe, for decision-ledger recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectInfo {
    /// Violated rule class.
    pub rule: RuleKind,
    /// Sub-check that detected it.
    pub subcheck: SubCheck,
}

impl fmt::Display for RejectInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.rule, self.subcheck)
    }
}

/// A single DRC violation with a geometric marker.
///
/// ```
/// use pao_drc::{DrcViolation, RuleKind};
/// use pao_geom::Rect;
/// use pao_tech::LayerId;
///
/// let v = DrcViolation::new(RuleKind::Short, LayerId(0), Rect::new(0, 0, 10, 10));
/// assert_eq!(v.to_string(), "short on L0 at (0, 0) - (10, 10)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrcViolation {
    /// Violated rule class.
    pub rule: RuleKind,
    /// Layer the violation occurs on.
    pub layer: LayerId,
    /// Marker rectangle locating the violation.
    pub marker: Rect,
}

impl DrcViolation {
    /// Creates a violation record.
    #[must_use]
    pub fn new(rule: RuleKind, layer: LayerId, marker: Rect) -> DrcViolation {
        DrcViolation {
            rule,
            layer,
            marker,
        }
    }
}

impl fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} at {}", self.rule, self.layer, self.marker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let v = DrcViolation::new(RuleKind::MinStep, LayerId(2), Rect::new(1, 2, 3, 4));
        assert_eq!(v.to_string(), "min step on L2 at (1, 2) - (3, 4)");
    }

    #[test]
    fn codes_roundtrip() {
        for code in 0..=8u8 {
            assert_eq!(RuleKind::from_code(code).unwrap().code(), code);
        }
        assert_eq!(RuleKind::from_code(9), None);
        for code in 0..=4u8 {
            assert_eq!(SubCheck::from_code(code).unwrap().code(), code);
        }
        assert_eq!(SubCheck::from_code(5), None);
        let info = RejectInfo {
            rule: RuleKind::MinStep,
            subcheck: SubCheck::DefiniteReject,
        };
        assert_eq!(info.to_string(), "min step (definite-reject)");
    }

    #[test]
    fn rule_kinds_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(RuleKind::Short);
        set.insert(RuleKind::Short);
        assert_eq!(set.len(), 1);
        assert!(RuleKind::Short < RuleKind::MetalSpacing);
    }
}
