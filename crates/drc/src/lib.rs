#![warn(missing_docs)]

//! Design-rule check engine for the PAAF pin access framework.
//!
//! The engine checks the rule subset that dominates pin access in the
//! paper's ISPD-2018-style technologies:
//!
//! * metal-to-metal **spacing** (simple value and width/PRL
//!   [`SpacingTable`](pao_tech::SpacingTable), including corner-to-corner),
//! * **shorts** (overlap between shapes of different owners),
//! * **min-step** on merged pin+via geometry (the Fig. 3 failure mode),
//! * **min-area** and **min-width** of merged metal,
//! * **end-of-line** spacing,
//! * **cut spacing** between via cuts, and
//! * cut **enclosure** by the surrounding metal.
//!
//! Shapes live in a per-layer [`ShapeSet`] with an [`Owner`] tag; shapes of
//! the same owner never conflict (they are assumed to be, or become, the
//! same net). [`DrcEngine::check_via_placement`] answers the framework's
//! central question — *can this via land here DRC-free?*
//!
//! # Examples
//!
//! ```
//! use pao_drc::{DrcEngine, Owner, ShapeSet};
//! use pao_geom::{Dir, Point, Rect};
//! use pao_tech::{Layer, Tech};
//!
//! let mut tech = Tech::new(1000);
//! let m1 = tech.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 70));
//! let mut ctx = ShapeSet::new(1);
//! ctx.insert(m1, Rect::new(0, 0, 300, 60), Owner::obs(0));
//!
//! let engine = DrcEngine::new(&tech);
//! // A shape 10 away from the obstruction violates the 70 spacing.
//! let v = engine.check_shape(m1, Rect::new(0, 70, 300, 130), Owner::net(0), &ctx);
//! assert!(!v.is_empty());
//! ```

pub mod engine;
pub mod scratch;
pub mod shapes;
pub mod sink;
pub mod violation;

pub use engine::DrcEngine;
pub use scratch::DrcScratch;
pub use shapes::{Owner, ShapeSet};
pub use sink::{CaptureFirst, CollectAll, CountOnly, DrcSink, FirstOnly};
pub use violation::{DrcViolation, RejectInfo, RuleKind, SubCheck};
