//! Reusable per-worker workspace for the DRC hot path.
//!
//! [`DrcEngine::check_via_placement`](crate::DrcEngine::check_via_placement)
//! needs half a dozen temporary buffers per probe: the via's translated
//! bottom/cut/top shapes, the owner's touching "friend" metal, the merged-
//! geometry fixpoint, maximal-rectangle output and the grid workspace of
//! the boundary/area algorithms. A [`DrcScratch`] owns all of them, so a
//! worker that probes thousands of candidates allocates only until every
//! buffer reaches its workload high-water mark, then runs allocation-free.
//!
//! Ownership rule: one scratch per worker thread (or per sequential call
//! chain) — the engine borrows it mutably for the duration of a single
//! check and leaves the contents unspecified between calls.

use crate::violation::{RejectInfo, SubCheck};
use pao_geom::{GridScratch, Rect};

/// Scratch buffers threaded through the sink-based engine entry points.
#[derive(Debug, Default)]
pub struct DrcScratch {
    /// Via bottom-layer shapes translated to the probe position.
    pub(crate) bottom: Vec<Rect>,
    /// Via cut shapes translated to the probe position.
    pub(crate) cuts: Vec<Rect>,
    /// Via top-layer shapes translated to the probe position.
    pub(crate) top: Vec<Rect>,
    /// Same-owner context metal near the bottom enclosure.
    pub(crate) friends: Vec<Rect>,
    /// Merged-geometry fixpoint accumulator.
    pub(crate) merged: Vec<Rect>,
    /// Friends not yet absorbed into the merge.
    pub(crate) remaining: Vec<Rect>,
    /// Maximal rectangles of the merged metal.
    pub(crate) maxes: Vec<Rect>,
    /// Workspace of the boundary / max-rect / union-area grid passes.
    pub(crate) grid: GridScratch,
    /// Sub-check currently executing in the pre-merged probe phase (the
    /// engine advances this so a reject can be attributed).
    pub(crate) stage: SubCheck,
    /// Attribution of the most recent rejected probe.
    pub(crate) last_reject: Option<RejectInfo>,
    /// Via probes answered since the last [`DrcScratch::flush_obs`].
    pub(crate) probes: u64,
    /// Probes rejected (any violation found).
    pub(crate) rejects: u64,
    /// Rejected probes that terminated before the merged-geometry check.
    pub(crate) early_exits: u64,
}

impl DrcScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> DrcScratch {
        DrcScratch::default()
    }

    /// Via probes answered through
    /// [`via_placement_clean`](crate::DrcEngine::via_placement_clean)
    /// since the last flush.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes rejected since the last flush.
    #[must_use]
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Rejected probes that never reached the merged-geometry machinery.
    #[must_use]
    pub fn early_exits(&self) -> u64 {
        self.early_exits
    }

    /// Rule + sub-check attribution of the most recent *rejected* probe
    /// through [`via_placement_clean`](crate::DrcEngine::via_placement_clean)
    /// or [`via_pairwise_clean`](crate::DrcEngine::via_pairwise_clean);
    /// `None` after a clean probe. Valid until the next probe.
    #[must_use]
    pub fn last_reject(&self) -> Option<RejectInfo> {
        self.last_reject
    }

    /// Total capacity (in elements) across all buffers — the allocation
    /// high-water mark. Steady under a fixed workload once warmed up.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.bottom.capacity()
            + self.cuts.capacity()
            + self.top.capacity()
            + self.friends.capacity()
            + self.merged.capacity()
            + self.remaining.capacity()
            + self.maxes.capacity()
            + self.grid.high_water()
    }

    /// Publishes the probe tallies as `drc.probes` / `drc.rejects` /
    /// `drc.early_exit` counters and the buffer high-water mark as the
    /// `drc.scratch.high_water` gauge, then zeroes the local tallies.
    /// Cheap no-op when metrics are disabled.
    pub fn flush_obs(&mut self) {
        pao_obs::counter_add("drc.probes", self.probes);
        pao_obs::counter_add("drc.rejects", self.rejects);
        pao_obs::counter_add("drc.early_exit", self.early_exits);
        pao_obs::gauge_max("drc.scratch.high_water", self.high_water() as u64);
        self.probes = 0;
        self.rejects = 0;
        self.early_exits = 0;
    }
}
