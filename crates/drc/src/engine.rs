//! The design-rule check engine.
//!
//! Every check is implemented against a [`DrcSink`] — the `Vec`-returning
//! methods are thin wrappers over [`CollectAll`](crate::sink::CollectAll).
//! Decision sites that only need a clean/dirty verdict use the
//! [`FirstOnly`](crate::sink::FirstOnly)-based [`DrcEngine::via_placement_clean`]
//! / [`DrcEngine::shape_clean`] / [`DrcEngine::audit_clean`] forms, which
//! stop at the first violation and skip all remaining sub-checks.

use crate::scratch::DrcScratch;
use crate::shapes::{Owner, ShapeSet};
use crate::sink::{CaptureFirst, CollectAll, DrcSink, FirstOnly};
use crate::violation::{DrcViolation, RejectInfo, RuleKind, SubCheck};
use pao_geom::boundary::{union_area_with, visit_union_boundaries};
use pao_geom::{max_rects_into, Dbu, Interval, Point, Rect};
use pao_tech::{LayerId, LayerKind, Tech, ViaDef};

/// The rectangle spanning the gap (or overlap) between two shapes — used
/// as the violation marker.
fn gap_marker(a: Rect, b: Rect) -> Rect {
    let span = |ia: Interval, ib: Interval| -> Interval {
        ia.intersect(ib)
            .unwrap_or_else(|| Interval::new(ia.hi().min(ib.hi()), ia.lo().max(ib.lo())))
    };
    let xs = span(a.x_span(), b.x_span());
    let ys = span(a.y_span(), b.y_span());
    Rect::new(xs.lo(), ys.lo(), xs.hi(), ys.hi())
}

/// A design-rule checker bound to a technology.
///
/// See the [crate docs](crate) for the rule subset. All check methods
/// report the violations found (none = clean); they never panic on clean
/// or dirty geometry, only on out-of-range layer ids. Per-layer search
/// halos are precomputed at construction, so cloning an engine is cheap
/// and `check_shape` does not re-derive rule maxima per call.
#[derive(Debug, Clone)]
pub struct DrcEngine<'t> {
    tech: &'t Tech,
    /// Per-layer search halo: the largest spacing any rule can require
    /// (for cut layers, the cut spacing).
    halos: Vec<Dbu>,
}

impl<'t> DrcEngine<'t> {
    /// Creates an engine for `tech`, precomputing per-layer halos.
    #[must_use]
    pub fn new(tech: &'t Tech) -> DrcEngine<'t> {
        let halos = (0..tech.layers().len())
            .map(|li| {
                let l = tech.layer(LayerId(li as u32));
                let table_max = l.spacing_table.as_ref().map_or(0, |t| t.max_spacing());
                // An EOL search region extends `space` past the edge and
                // `within` sideways, so both bound the reach of the rule.
                let eol_max = l
                    .eol_rules
                    .iter()
                    .map(|r| r.space.max(r.within))
                    .max()
                    .unwrap_or(0);
                l.spacing.max(table_max).max(eol_max)
            })
            .collect();
        DrcEngine { tech, halos }
    }

    /// The technology this engine checks against.
    #[must_use]
    pub fn tech(&self) -> &'t Tech {
        self.tech
    }

    /// Search halo for context queries on `layer`: the largest spacing any
    /// rule on the layer can require. Precomputed at [`DrcEngine::new`].
    #[must_use]
    pub fn halo(&self, layer: LayerId) -> Dbu {
        self.halos[layer.index()]
    }

    /// The widest halo across all layers — an upper bound on the distance
    /// at which any context shape can influence any verdict. Every
    /// context query in this engine uses a window inflated by at most the
    /// per-layer halo, so shapes farther apart than this never interact.
    #[must_use]
    pub fn interaction_range(&self) -> Dbu {
        self.halos.iter().copied().max().unwrap_or(0)
    }

    /// Checks metal spacing between two same-layer shapes of different
    /// owners. Returns a marker when they overlap/touch (short) or sit
    /// closer than the required spacing.
    #[must_use]
    pub fn spacing_violation(&self, layer: LayerId, a: Rect, b: Rect) -> Option<DrcViolation> {
        if a.touches(b) {
            return Some(DrcViolation::new(RuleKind::Short, layer, gap_marker(a, b)));
        }
        let l = self.tech.layer(layer);
        let (dx, dy) = a.dist_components(b);
        let width = a.min_side().max(b.min_side());
        let (dist_sq, prl) = if dx == 0 {
            // Stacked vertically: PRL is the x-projection overlap.
            (
                i128::from(dy) * i128::from(dy),
                a.x_span().overlap_len(b.x_span()),
            )
        } else if dy == 0 {
            (
                i128::from(dx) * i128::from(dx),
                a.y_span().overlap_len(b.y_span()),
            )
        } else {
            // Diagonal: corner-to-corner Euclidean distance, no PRL.
            (
                i128::from(dx) * i128::from(dx) + i128::from(dy) * i128::from(dy),
                0,
            )
        };
        let req = l.required_spacing(width, width, prl);
        if dist_sq < i128::from(req) * i128::from(req) {
            Some(DrcViolation::new(
                RuleKind::MetalSpacing,
                layer,
                gap_marker(a, b),
            ))
        } else {
            None
        }
    }

    /// Checks a candidate metal shape against conflicting context shapes:
    /// shorts, spacing, and the candidate's end-of-line edges.
    #[must_use]
    pub fn check_shape(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        self.check_shape_sink(layer, rect, owner, ctx, &mut CollectAll::new(&mut out));
        out
    }

    /// `true` when `rect` raises no shape violation — [`FirstOnly`]
    /// short-circuit form of [`DrcEngine::check_shape`].
    #[must_use]
    pub fn shape_clean(&self, layer: LayerId, rect: Rect, owner: Owner, ctx: &ShapeSet) -> bool {
        let mut sink = FirstOnly::new();
        self.check_shape_sink(layer, rect, owner, ctx, &mut sink);
        sink.is_clean()
    }

    /// Sink form of [`DrcEngine::check_shape`]. Returns `false` iff the
    /// sink stopped the check early.
    pub fn check_shape_sink(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
        sink: &mut impl DrcSink,
    ) -> bool {
        let halo = self.halo(layer);
        let window = rect.expanded(halo.max(1));
        let cont = ctx.for_each_conflict(layer, window, owner, |other, _| {
            match self.spacing_violation(layer, rect, other) {
                Some(v) => sink.report(v),
                None => true,
            }
        });
        if !cont {
            return false;
        }
        self.check_eol_edges_sink(layer, rect, owner, ctx, sink)
    }

    /// Checks the end-of-line spacing rules for the four edges of `rect`.
    fn check_eol_edges_sink(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
        sink: &mut impl DrcSink,
    ) -> bool {
        let l = self.tech.layer(layer);
        for rule in &l.eol_rules {
            // At most 4 EOL search regions exist per rule (left/right when
            // the shape is short, below/above when it is narrow).
            let mut regions = [Rect::default(); 4];
            let mut n = 0;
            // Vertical EOL edges (left/right) have length = height.
            if rect.height() < rule.eol_width {
                regions[n] = Rect::new(
                    rect.xlo() - rule.space,
                    rect.ylo() - rule.within,
                    rect.xlo(),
                    rect.yhi() + rule.within,
                );
                regions[n + 1] = Rect::new(
                    rect.xhi(),
                    rect.ylo() - rule.within,
                    rect.xhi() + rule.space,
                    rect.yhi() + rule.within,
                );
                n += 2;
            }
            if rect.width() < rule.eol_width {
                regions[n] = Rect::new(
                    rect.xlo() - rule.within,
                    rect.ylo() - rule.space,
                    rect.xhi() + rule.within,
                    rect.ylo(),
                );
                regions[n + 1] = Rect::new(
                    rect.xlo() - rule.within,
                    rect.yhi(),
                    rect.xhi() + rule.within,
                    rect.yhi() + rule.space,
                );
                n += 2;
            }
            for &region in &regions[..n] {
                let cont = ctx.for_each_conflict(layer, region, owner, |other, _| {
                    // Region query is touch-inclusive; require real overlap
                    // so metal exactly at the spacing is legal.
                    if other.overlaps(region) {
                        sink.report(DrcViolation::new(
                            RuleKind::EolSpacing,
                            layer,
                            gap_marker(rect, other),
                        ))
                    } else {
                        true
                    }
                });
                if !cont {
                    return false;
                }
            }
        }
        true
    }

    /// Checks the merged metal formed by `candidates` and the touching
    /// `friends` (same-owner shapes): min step, min width and min area.
    ///
    /// This is the Fig. 3 check: a via enclosure fused with the pin shape
    /// may create boundary steps shorter than the layer's `MINSTEP`.
    #[must_use]
    pub fn check_merged(
        &self,
        layer: LayerId,
        candidates: &[Rect],
        friends: &[Rect],
    ) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        self.check_merged_sink(
            layer,
            candidates,
            friends,
            &mut DrcScratch::new(),
            &mut CollectAll::new(&mut out),
        );
        out
    }

    /// Sink form of [`DrcEngine::check_merged`], running against the
    /// workspace buffers of `ws`. Returns `false` iff the sink stopped
    /// the check early (remaining sub-checks are skipped).
    pub fn check_merged_sink(
        &self,
        layer: LayerId,
        candidates: &[Rect],
        friends: &[Rect],
        ws: &mut DrcScratch,
        sink: &mut impl DrcSink,
    ) -> bool {
        let l = self.tech.layer(layer);
        // Only friends actually touching a candidate merge with it.
        ws.merged.clear();
        ws.merged.extend_from_slice(candidates);
        ws.remaining.clear();
        ws.remaining.extend_from_slice(friends);
        let mut changed = true;
        while changed {
            changed = false;
            let merged = &mut ws.merged;
            ws.remaining.retain(|f| {
                if merged.iter().any(|c| c.touches(*f)) {
                    merged.push(*f);
                    changed = true;
                    false
                } else {
                    true
                }
            });
        }
        let marker = ws
            .merged
            .iter()
            .copied()
            .reduce(Rect::hull)
            .unwrap_or_default();

        if let Some(rule) = l.min_step {
            let mut violated = false;
            visit_union_boundaries(&ws.merged, &mut ws.grid, |loop_| {
                let n = loop_.len();
                // Count maximal runs of consecutive short edges around the
                // cycle.
                let mut run = 0u32;
                let mut max_run = 0u32;
                for i in 0..2 * n {
                    let a = loop_[i % n];
                    let b = loop_[(i + 1) % n];
                    if a.manhattan(b) < rule.min_step_length {
                        run += 1;
                        max_run = max_run.max(run.min(n as u32));
                    } else {
                        run = 0;
                    }
                    if i >= n && run == 0 {
                        break;
                    }
                }
                if max_run > rule.max_edges {
                    violated = true;
                    return false; // first violating loop suffices
                }
                true
            });
            if violated && !sink.report(DrcViolation::new(RuleKind::MinStep, layer, marker)) {
                return false;
            }
        }
        if l.min_width > 0 {
            max_rects_into(&ws.merged, &mut ws.grid, &mut ws.maxes);
            if ws.maxes.iter().any(|r| r.min_side() < l.min_width)
                && !sink.report(DrcViolation::new(RuleKind::MinWidth, layer, marker))
            {
                return false;
            }
        }
        if l.min_area > 0
            && union_area_with(&ws.merged, &mut ws.grid) < l.min_area
            && !sink.report(DrcViolation::new(RuleKind::MinArea, layer, marker))
        {
            return false;
        }
        true
    }

    /// Checks a cut shape against other cuts (cut spacing).
    #[must_use]
    pub fn check_cut_shape(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        self.check_cut_shape_sink(layer, rect, owner, ctx, &mut CollectAll::new(&mut out));
        out
    }

    /// Sink form of [`DrcEngine::check_cut_shape`]. Returns `false` iff
    /// the sink stopped the check early.
    pub fn check_cut_shape_sink(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
        sink: &mut impl DrcSink,
    ) -> bool {
        debug_assert_eq!(self.tech.layer(layer).kind, LayerKind::Cut);
        let spacing = self.tech.layer(layer).spacing;
        let window = rect.expanded(spacing.max(1));
        ctx.for_each_in(layer, window, |other, o| {
            // Same-owner stacked cuts at the same spot are one via; any
            // other proximity — same-owner or not — violates cut spacing.
            if o == owner && other == rect {
                return true;
            }
            if rect.touches(other) {
                return sink.report(DrcViolation::new(
                    RuleKind::Short,
                    layer,
                    gap_marker(rect, other),
                ));
            }
            let d2 = pao_geom::rect_dist(rect, other);
            if d2 < i128::from(spacing) * i128::from(spacing) {
                return sink.report(DrcViolation::new(
                    RuleKind::CutSpacing,
                    layer,
                    gap_marker(rect, other),
                ));
            }
            true
        })
    }

    /// The framework's central query: can `via` land with its origin at
    /// `at`, on behalf of `owner`, given the context?
    ///
    /// Sub-checks run cheapest-first so a [`FirstOnly`] sink exits before
    /// the expensive polygon machinery: cut spacing, bottom-layer
    /// spacing/short/EOL, top-layer spacing/short/EOL plus the top
    /// enclosure's own min width, and finally the merged-geometry
    /// min-step/min-width/min-area with the owner's own bottom metal.
    /// Every caller that *decides* on the result consumes only its
    /// emptiness, so the ordering is observationally irrelevant to them.
    #[must_use]
    pub fn check_via_placement(
        &self,
        via: &ViaDef,
        at: Point,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        self.check_via_placement_sink(
            via,
            at,
            owner,
            ctx,
            &mut DrcScratch::new(),
            &mut CollectAll::new(&mut out),
        );
        out
    }

    /// Sink form of [`DrcEngine::check_via_placement`], running against
    /// the workspace buffers of `ws`. Returns `false` iff the sink
    /// stopped the check early.
    pub fn check_via_placement_sink(
        &self,
        via: &ViaDef,
        at: Point,
        owner: Owner,
        ctx: &ShapeSet,
        ws: &mut DrcScratch,
        sink: &mut impl DrcSink,
    ) -> bool {
        self.via_pre_merged_sink(via, at, owner, ctx, ws, sink)
            && self.via_merged_sink(via, owner, ctx, ws, sink)
    }

    /// `true` when `via` can land at `at` DRC-free — the short-circuit
    /// form of [`DrcEngine::check_via_placement`] that every
    /// accept/reject decision site uses. Tallies probe/reject/early-exit
    /// counts into `ws` (published by [`DrcScratch::flush_obs`]) and
    /// leaves the reject's rule + sub-check attribution in
    /// [`DrcScratch::last_reject`].
    #[must_use]
    pub fn via_placement_clean(
        &self,
        via: &ViaDef,
        at: Point,
        owner: Owner,
        ctx: &ShapeSet,
        ws: &mut DrcScratch,
    ) -> bool {
        ws.probes += 1;
        ws.last_reject = None;
        let mut sink = CaptureFirst::new();
        if !self.via_pre_merged_sink(via, at, owner, ctx, ws, &mut sink) {
            // Rejected before the merged-geometry machinery was touched.
            ws.rejects += 1;
            ws.early_exits += 1;
            ws.last_reject = sink.take().map(|v| RejectInfo {
                rule: v.rule,
                subcheck: ws.stage,
            });
            return false;
        }
        if let Some(rule) = self.merged_dirty_rule(via.bottom_layer, owner, ctx, &ws.bottom) {
            // The dominant failure mode (enclosure overhang tripping a
            // plain min-step) proven in O(1), before any merge machinery.
            ws.rejects += 1;
            ws.early_exits += 1;
            ws.last_reject = Some(RejectInfo {
                rule,
                subcheck: SubCheck::DefiniteReject,
            });
            return false;
        }
        if !self.via_merged_sink(via, owner, ctx, ws, &mut sink) {
            ws.rejects += 1;
            ws.last_reject = sink.take().map(|v| RejectInfo {
                rule: v.rule,
                subcheck: SubCheck::Merged,
            });
            return false;
        }
        true
    }

    /// `true` when `via` at `at` passes every *pairwise* rule against
    /// `ctx` (cut spacing, metal spacing, EOL) — the merged-geometry
    /// rules are skipped. This is [`Self::via_placement_clean`] minus
    /// the same-owner merged checks, for split-context probing: when the
    /// base placement and the selected vias live in two separate packed
    /// sets, probing the base with the full check and the via set with
    /// this one covers every rule exactly once, because merged geometry
    /// only ever unions same-owner shapes and a pin's own via copy adds
    /// nothing to its own union.
    #[must_use]
    pub fn via_pairwise_clean(
        &self,
        via: &ViaDef,
        at: Point,
        owner: Owner,
        ctx: &ShapeSet,
        ws: &mut DrcScratch,
    ) -> bool {
        ws.probes += 1;
        ws.last_reject = None;
        let mut sink = CaptureFirst::new();
        if !self.via_pre_merged_sink(via, at, owner, ctx, ws, &mut sink) {
            ws.rejects += 1;
            ws.early_exits += 1;
            ws.last_reject = sink.take().map(|v| RejectInfo {
                rule: v.rule,
                subcheck: ws.stage,
            });
            return false;
        }
        true
    }

    /// Exact O(1) definite-reject test for the common merged-geometry
    /// shapes: a single bottom enclosure rect merging with at most one
    /// same-owner metal shape. Returns `Some(rule)` only when
    /// [`Self::via_merged_sink`] would provably reject as well (the rule
    /// names the violation proven); `None` means "unknown — run the real
    /// check". Only the boolean fast path ([`Self::via_placement_clean`])
    /// uses this, so the collected violation lists never change.
    fn merged_dirty_rule(
        &self,
        layer: LayerId,
        owner: Owner,
        ctx: &ShapeSet,
        bottom: &[Rect],
    ) -> Option<RuleKind> {
        let [r] = bottom else { return None };
        let r = *r;
        let l = self.tech.layer(layer);
        // Same window the merged check scans; more than one friend means
        // general multi-shape geometry — bail out to the full machinery.
        let mut first: Option<Rect> = None;
        let mut many = false;
        ctx.for_each_friend(layer, r.expanded(1), owner, |f| {
            if first.is_some() {
                many = true;
                return false;
            }
            first = Some(f);
            true
        });
        if many {
            return None;
        }
        // When the merged component is literally one rectangle, all three
        // merged rules collapse to closed forms (exact, both directions —
        // used only for reject here). Checked in the same order as
        // [`Self::check_merged_sink`] reports, so attribution matches.
        let single_rect_dirty = |u: Rect| -> Option<RuleKind> {
            if l.min_width > 0 && u.min_side() < l.min_width {
                return Some(RuleKind::MinWidth);
            }
            if l.min_area > 0 && u.area() < l.min_area {
                return Some(RuleKind::MinArea);
            }
            let rule = l.min_step?;
            let w_short = u.width() < rule.min_step_length;
            let h_short = u.height() < rule.min_step_length;
            let max_run: u32 = match (w_short, h_short) {
                (true, true) => 4,
                (true, false) | (false, true) => 1,
                (false, false) => 0,
            };
            (max_run > rule.max_edges).then_some(RuleKind::MinStep)
        };
        let Some(f) = first else {
            return single_rect_dirty(r);
        };
        if !f.touches(r) {
            return single_rect_dirty(r);
        }
        if f.contains_rect(r) {
            return single_rect_dirty(f);
        }
        if r.contains_rect(f) {
            return single_rect_dirty(r);
        }
        // Two properly overlapping rects, neither containing the other: a
        // side of one protruding past the other by less than the min-step
        // length leaves a boundary edge of exactly that length, provided
        // the other rect strictly sticks out on a perpendicular side (so
        // the short edge cannot merge with a collinear run). Only claimed
        // for plain `MAXEDGES 0` rules, where one short edge suffices.
        let rule = l.min_step?;
        if rule.max_edges != 0 || !r.overlaps(f) {
            return None;
        }
        let s = rule.min_step_length;
        let tab = |a: Rect, b: Rect| {
            let perp_x = b.xlo() < a.xlo() || b.xhi() > a.xhi();
            let perp_y = b.ylo() < a.ylo() || b.yhi() > a.yhi();
            (a.xhi() > b.xhi() && a.xhi() - b.xhi() < s && perp_y)
                || (a.xlo() < b.xlo() && b.xlo() - a.xlo() < s && perp_y)
                || (a.yhi() > b.yhi() && a.yhi() - b.yhi() < s && perp_x)
                || (a.ylo() < b.ylo() && b.ylo() - a.ylo() < s && perp_x)
        };
        (tab(r, f) || tab(f, r)).then_some(RuleKind::MinStep)
    }

    /// Everything except the merged-geometry check, cheapest sub-check
    /// first. Fills `ws.bottom`/`ws.cuts`/`ws.top` with the translated
    /// via shapes (`ws.bottom` is consumed by [`Self::via_merged_sink`]).
    fn via_pre_merged_sink(
        &self,
        via: &ViaDef,
        at: Point,
        owner: Owner,
        ctx: &ShapeSet,
        ws: &mut DrcScratch,
        sink: &mut impl DrcSink,
    ) -> bool {
        ws.bottom.clear();
        ws.bottom
            .extend(via.bottom_shapes.iter().map(|r| r.translated(at)));
        ws.cuts.clear();
        ws.cuts
            .extend(via.cut_shapes.iter().map(|r| r.translated(at)));
        ws.top.clear();
        ws.top
            .extend(via.top_shapes.iter().map(|r| r.translated(at)));

        ws.stage = SubCheck::Cut;
        for i in 0..ws.cuts.len() {
            let r = ws.cuts[i];
            if !self.check_cut_shape_sink(via.cut_layer, r, owner, ctx, sink) {
                return false;
            }
        }
        ws.stage = SubCheck::Bottom;
        for i in 0..ws.bottom.len() {
            let r = ws.bottom[i];
            if !self.check_shape_sink(via.bottom_layer, r, owner, ctx, sink) {
                return false;
            }
        }
        ws.stage = SubCheck::Top;
        let top_min_width = self.tech.layer(via.top_layer).min_width;
        for i in 0..ws.top.len() {
            let r = ws.top[i];
            if !self.check_shape_sink(via.top_layer, r, owner, ctx, sink) {
                return false;
            }
            // The top enclosure alone must satisfy min width.
            if top_min_width > 0
                && r.min_side() < top_min_width
                && !sink.report(DrcViolation::new(RuleKind::MinWidth, via.top_layer, r))
            {
                return false;
            }
        }
        true
    }

    /// Merged-geometry checks with the owner's own bottom-layer metal.
    /// Expects `ws.bottom` as filled by [`Self::via_pre_merged_sink`].
    fn via_merged_sink(
        &self,
        via: &ViaDef,
        owner: Owner,
        ctx: &ShapeSet,
        ws: &mut DrcScratch,
        sink: &mut impl DrcSink,
    ) -> bool {
        let window = ws
            .bottom
            .iter()
            .copied()
            .reduce(Rect::hull)
            .unwrap_or_default()
            .expanded(1);
        let friends = &mut ws.friends;
        friends.clear();
        ctx.for_each_friend(via.bottom_layer, window, owner, |r| {
            friends.push(r);
            true
        });
        let bottom = std::mem::take(&mut ws.bottom);
        let friends = std::mem::take(&mut ws.friends);
        let cont = self.check_merged_sink(via.bottom_layer, &bottom, &friends, ws, sink);
        ws.bottom = bottom;
        ws.friends = friends;
        cont
    }

    /// Exhaustively audits a shape set: every conflicting same-layer pair
    /// is checked for shorts and spacing (each unordered pair reported at
    /// most once), and cut layers for cut spacing.
    ///
    /// Used to score routed designs and to audit access points.
    #[must_use]
    pub fn audit(&self, ctx: &ShapeSet) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        self.audit_sink(ctx, &mut CollectAll::new(&mut out));
        out
    }

    /// `true` when the whole shape set is clean — [`FirstOnly`]
    /// short-circuit form of [`DrcEngine::audit`].
    #[must_use]
    pub fn audit_clean(&self, ctx: &ShapeSet) -> bool {
        let mut sink = FirstOnly::new();
        self.audit_sink(ctx, &mut sink);
        sink.is_clean()
    }

    /// Sink form of [`DrcEngine::audit`]. Returns `false` iff the sink
    /// stopped the audit early.
    pub fn audit_sink(&self, ctx: &ShapeSet, sink: &mut impl DrcSink) -> bool {
        for li in 0..ctx.num_layers() {
            let layer = LayerId(li as u32);
            let kind = self.tech.layer(layer).kind;
            let halo = match kind {
                LayerKind::Routing => self.halo(layer),
                LayerKind::Cut => self.tech.layer(layer).spacing,
            };
            for (a, oa) in ctx.iter_layer(layer) {
                let window = a.expanded(halo.max(1));
                let cont = ctx.for_each_in(layer, window, |b, ob| {
                    // Order pairs to avoid double-reporting: compare by
                    // (rect, owner) with self-pair skipped.
                    if !oa.conflicts_with(ob) || (b, ob) <= (a, oa) {
                        return true;
                    }
                    match kind {
                        LayerKind::Routing => match self.spacing_violation(layer, a, b) {
                            Some(v) => sink.report(v),
                            None => true,
                        },
                        LayerKind::Cut => {
                            if a.touches(b) {
                                sink.report(DrcViolation::new(
                                    RuleKind::Short,
                                    layer,
                                    gap_marker(a, b),
                                ))
                            } else if pao_geom::rect_dist(a, b)
                                < i128::from(halo) * i128::from(halo)
                            {
                                sink.report(DrcViolation::new(
                                    RuleKind::CutSpacing,
                                    layer,
                                    gap_marker(a, b),
                                ))
                            } else {
                                true
                            }
                        }
                    }
                });
                if !cont {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::Dir;
    use pao_tech::rules::{EolRule, MinStepRule};
    use pao_tech::Layer;

    fn tech() -> Tech {
        let mut t = Tech::new(1000);
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.min_step = Some(MinStepRule::simple(60));
        m1.min_area = 10_000;
        m1.eol_rules.push(EolRule {
            space: 90,
            eol_width: 80,
            within: 25,
        });
        t.add_layer(m1);
        t.add_layer(Layer::cut("V1", 70, 80));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        t
    }

    fn m1() -> LayerId {
        LayerId(0)
    }

    fn via(t: &Tech) -> ViaDef {
        ViaDef::new(
            "via1",
            t.layer_id("M1").unwrap(),
            vec![Rect::new(-65, -35, 65, 35)],
            t.layer_id("V1").unwrap(),
            vec![Rect::new(-35, -35, 35, 35)],
            t.layer_id("M2").unwrap(),
            vec![Rect::new(-35, -65, 35, 65)],
        )
    }

    #[test]
    fn spacing_simple() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let a = Rect::new(0, 0, 200, 60);
        // 70 required; 69 violates, 70 clean.
        assert!(e
            .spacing_violation(m1(), a, Rect::new(0, 129, 200, 189))
            .is_some());
        assert!(e
            .spacing_violation(m1(), a, Rect::new(0, 130, 200, 190))
            .is_none());
        // Overlap and touch are shorts.
        let short = e
            .spacing_violation(m1(), a, Rect::new(100, 0, 300, 60))
            .unwrap();
        assert_eq!(short.rule, RuleKind::Short);
        let touch = e
            .spacing_violation(m1(), a, Rect::new(200, 0, 300, 60))
            .unwrap();
        assert_eq!(touch.rule, RuleKind::Short);
    }

    #[test]
    fn spacing_corner_to_corner() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let a = Rect::new(0, 0, 100, 60);
        // Diagonal at (50, 49): sqrt(50²+49²) ≈ 70.01 > 70 clean.
        assert!(e
            .spacing_violation(m1(), a, Rect::new(150, 109, 250, 169))
            .is_none());
        // (40, 40): ≈ 56.6 < 70 violates.
        let v = e
            .spacing_violation(m1(), a, Rect::new(140, 100, 240, 160))
            .unwrap();
        assert_eq!(v.rule, RuleKind::MetalSpacing);
    }

    #[test]
    fn check_shape_uses_owner() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(3);
        ctx.insert(m1(), Rect::new(0, 0, 200, 60), Owner::pin(1));
        // Same owner: no violations even when overlapping.
        assert!(e
            .check_shape(m1(), Rect::new(100, 0, 300, 60), Owner::pin(1), &ctx)
            .is_empty());
        assert!(e.shape_clean(m1(), Rect::new(100, 0, 300, 60), Owner::pin(1), &ctx));
        // Different owner: short.
        assert!(!e
            .check_shape(m1(), Rect::new(100, 0, 300, 60), Owner::pin(2), &ctx)
            .is_empty());
        assert!(!e.shape_clean(m1(), Rect::new(100, 0, 300, 60), Owner::pin(2), &ctx));
    }

    #[test]
    fn eol_spacing_fires_only_for_narrow_edges() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(3);
        // A wall 80 away to the east of a narrow shape's right EOL edge.
        ctx.insert(m1(), Rect::new(180, 0, 240, 60), Owner::obs(0));
        // Height 60 < eol_width 80 → EOL; gap 80 < 90 → violation.
        let narrow = Rect::new(0, 0, 100, 60);
        let v = e.check_shape(m1(), narrow, Owner::pin(1), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::EolSpacing), "{v:?}");
        // A tall shape (height ≥ 80) has no vertical EOL edge; plain
        // spacing (70) is satisfied at gap 80.
        let tall = Rect::new(0, -20, 100, 60);
        let v = e.check_shape(m1(), tall, Owner::pin(1), &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn merged_min_step_detects_via_overhang() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Pin bar 400×60; via enclosure 130×70 sticking out 5 above and
        // below near the middle: edge run (5, 130, 5) all < 60 → min-step.
        let pin = Rect::new(0, 0, 400, 60);
        let enc = Rect::new(100, -5, 230, 65);
        let v = e.check_merged(m1(), &[enc], &[pin]);
        assert!(v.iter().any(|v| v.rule == RuleKind::MinStep), "{v:?}");
        // Enclosure aligned to the pin boundary: no step.
        let aligned = Rect::new(100, 0, 230, 60);
        let v = e.check_merged(m1(), &[aligned], &[pin]);
        assert!(v.iter().all(|v| v.rule != RuleKind::MinStep), "{v:?}");
    }

    #[test]
    fn merged_min_area_and_width() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Isolated 70×70 enclosure: area 4900 < 10000 → min-area.
        let v = e.check_merged(m1(), &[Rect::new(0, 0, 70, 70)], &[]);
        assert!(v.iter().any(|v| v.rule == RuleKind::MinArea));
        // Thin neck: min width violation.
        let v = e.check_merged(
            m1(),
            &[Rect::new(0, 0, 200, 60), Rect::new(200, 10, 260, 40)],
            &[],
        );
        assert!(v.iter().any(|v| v.rule == RuleKind::MinWidth), "{v:?}");
        // Friend that does not touch the candidate does not merge.
        let v = e.check_merged(
            m1(),
            &[Rect::new(0, 0, 70, 70)],
            &[Rect::new(1000, 0, 1400, 200)],
        );
        assert!(v.iter().any(|v| v.rule == RuleKind::MinArea));
    }

    #[test]
    fn cut_spacing() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let v1 = t.layer_id("V1").unwrap();
        let mut ctx = ShapeSet::new(3);
        ctx.insert(v1, Rect::new(0, 0, 70, 70), Owner::pin(1));
        // 79 away: violation (spacing 80); same for same-owner cuts.
        let v = e.check_cut_shape(v1, Rect::new(149, 0, 219, 70), Owner::pin(2), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::CutSpacing));
        let v = e.check_cut_shape(v1, Rect::new(149, 0, 219, 70), Owner::pin(1), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::CutSpacing));
        // 80 away: clean.
        let v = e.check_cut_shape(v1, Rect::new(150, 0, 220, 70), Owner::pin(2), &ctx);
        assert!(v.is_empty());
        // Identical same-owner cut: treated as the same via.
        let v = e.check_cut_shape(v1, Rect::new(0, 0, 70, 70), Owner::pin(1), &ctx);
        assert!(v.is_empty());
    }

    #[test]
    fn via_placement_clean_and_dirty() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let via = via(&t);
        let mut ws = DrcScratch::new();
        let mut ctx = ShapeSet::new(3);
        // A wide pin that fully contains the bottom enclosure.
        ctx.insert(m1(), Rect::new(-200, -35, 200, 35), Owner::pin(1));
        let v = e.check_via_placement(&via, Point::new(0, 0), Owner::pin(1), &ctx);
        assert!(v.is_empty(), "{v:?}");
        assert!(e.via_placement_clean(&via, Point::new(0, 0), Owner::pin(1), &ctx, &mut ws));
        assert_eq!(ws.last_reject(), None);
        // Same via for a different owner shorts against the pin.
        let v = e.check_via_placement(&via, Point::new(0, 0), Owner::pin(2), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::Short));
        assert!(!e.via_placement_clean(&via, Point::new(0, 0), Owner::pin(2), &ctx, &mut ws));
        assert_eq!(
            ws.last_reject(),
            Some(RejectInfo {
                rule: RuleKind::Short,
                subcheck: SubCheck::Bottom,
            })
        );
        // A narrow pin causes a min-step from the enclosure overhang.
        let mut ctx2 = ShapeSet::new(3);
        ctx2.insert(m1(), Rect::new(-200, -30, 200, 30), Owner::pin(1));
        let v = e.check_via_placement(&via, Point::new(0, 0), Owner::pin(1), &ctx2);
        assert!(v.iter().any(|v| v.rule == RuleKind::MinStep), "{v:?}");
        assert!(!e.via_placement_clean(&via, Point::new(0, 0), Owner::pin(1), &ctx2, &mut ws));
        assert_eq!(
            ws.last_reject(),
            Some(RejectInfo {
                rule: RuleKind::MinStep,
                subcheck: SubCheck::DefiniteReject,
            })
        );
        // Probe accounting: 3 probes, 2 rejects, both early (the short
        // fires in the pre-merged phase; the single-friend overhang
        // min-step is proven by the O(1) definite-reject test).
        assert_eq!(ws.probes(), 3);
        assert_eq!(ws.rejects(), 2);
        assert_eq!(ws.early_exits(), 2);
    }

    #[test]
    fn via_probe_reuse_reaches_steady_state_capacity() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let via = via(&t);
        let mut ctx = ShapeSet::new(3);
        // A pin tall enough to contain the enclosure, so clean probes run
        // the full merged machinery (exercising all scratch buffers).
        ctx.insert(m1(), Rect::new(-200, -35, 200, 35), Owner::pin(1));
        ctx.insert(m1(), Rect::new(-200, 200, 200, 260), Owner::pin(2));
        ctx.rebuild();
        let mut ws = DrcScratch::new();
        // Warm up, record the high-water mark, then probe a lot more.
        for x in -50..0 {
            let _ = e.via_placement_clean(&via, Point::new(x, 0), Owner::pin(1), &ctx, &mut ws);
        }
        let hiwater = ws.high_water();
        assert!(hiwater > 0);
        for x in 0..200 {
            let _ = e.via_placement_clean(&via, Point::new(x, 0), Owner::pin(1), &ctx, &mut ws);
        }
        assert_eq!(
            ws.high_water(),
            hiwater,
            "scratch buffers must stop growing after warm-up"
        );
    }

    #[test]
    fn audit_counts_each_pair_once() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(3);
        ctx.insert(m1(), Rect::new(0, 0, 200, 60), Owner::net(1));
        ctx.insert(m1(), Rect::new(0, 100, 200, 160), Owner::net(2)); // 40 gap
        ctx.insert(m1(), Rect::new(1000, 0, 1200, 60), Owner::net(3)); // far away
        ctx.rebuild();
        let v = e.audit(&ctx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleKind::MetalSpacing);
        assert!(!e.audit_clean(&ctx));
        let mut count = crate::sink::CountOnly::new();
        assert!(e.audit_sink(&ctx, &mut count));
        assert_eq!(count.count(), 1);
    }
}
