//! The design-rule check engine.

use crate::shapes::{Owner, ShapeSet};
use crate::violation::{DrcViolation, RuleKind};
use pao_geom::boundary::{edge_lengths, union_area, union_boundaries};
use pao_geom::{max_rects, Dbu, Interval, Point, Rect};
use pao_tech::{LayerId, LayerKind, Tech, ViaDef};

/// The rectangle spanning the gap (or overlap) between two shapes — used
/// as the violation marker.
fn gap_marker(a: Rect, b: Rect) -> Rect {
    let span = |ia: Interval, ib: Interval| -> Interval {
        ia.intersect(ib)
            .unwrap_or_else(|| Interval::new(ia.hi().min(ib.hi()), ia.lo().max(ib.lo())))
    };
    let xs = span(a.x_span(), b.x_span());
    let ys = span(a.y_span(), b.y_span());
    Rect::new(xs.lo(), ys.lo(), xs.hi(), ys.hi())
}

/// A design-rule checker bound to a technology.
///
/// See the [crate docs](crate) for the rule subset. All check methods
/// return the violations found (empty = clean); they never panic on clean
/// or dirty geometry, only on out-of-range layer ids.
#[derive(Debug, Clone, Copy)]
pub struct DrcEngine<'t> {
    tech: &'t Tech,
}

impl<'t> DrcEngine<'t> {
    /// Creates an engine for `tech`.
    #[must_use]
    pub fn new(tech: &'t Tech) -> DrcEngine<'t> {
        DrcEngine { tech }
    }

    /// The technology this engine checks against.
    #[must_use]
    pub fn tech(&self) -> &'t Tech {
        self.tech
    }

    /// Search halo for context queries on `layer`: the largest spacing any
    /// rule on the layer can require.
    #[must_use]
    pub fn halo(&self, layer: LayerId) -> Dbu {
        let l = self.tech.layer(layer);
        let table_max = l.spacing_table.as_ref().map_or(0, |t| t.max_spacing());
        let eol_max = l.eol_rules.iter().map(|r| r.space).max().unwrap_or(0);
        l.spacing.max(table_max).max(eol_max)
    }

    /// Checks metal spacing between two same-layer shapes of different
    /// owners. Returns a marker when they overlap/touch (short) or sit
    /// closer than the required spacing.
    #[must_use]
    pub fn spacing_violation(&self, layer: LayerId, a: Rect, b: Rect) -> Option<DrcViolation> {
        if a.touches(b) {
            return Some(DrcViolation::new(RuleKind::Short, layer, gap_marker(a, b)));
        }
        let l = self.tech.layer(layer);
        let (dx, dy) = a.dist_components(b);
        let width = a.min_side().max(b.min_side());
        let (dist_sq, prl) = if dx == 0 {
            // Stacked vertically: PRL is the x-projection overlap.
            (
                i128::from(dy) * i128::from(dy),
                a.x_span().overlap_len(b.x_span()),
            )
        } else if dy == 0 {
            (
                i128::from(dx) * i128::from(dx),
                a.y_span().overlap_len(b.y_span()),
            )
        } else {
            // Diagonal: corner-to-corner Euclidean distance, no PRL.
            (
                i128::from(dx) * i128::from(dx) + i128::from(dy) * i128::from(dy),
                0,
            )
        };
        let req = l.required_spacing(width, width, prl);
        if dist_sq < i128::from(req) * i128::from(req) {
            Some(DrcViolation::new(
                RuleKind::MetalSpacing,
                layer,
                gap_marker(a, b),
            ))
        } else {
            None
        }
    }

    /// Checks a candidate metal shape against conflicting context shapes:
    /// shorts, spacing, and the candidate's end-of-line edges.
    #[must_use]
    pub fn check_shape(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        let halo = self.halo(layer);
        let window = rect.expanded(halo.max(1));
        for (other, _) in ctx.conflicts(layer, window, owner) {
            if let Some(v) = self.spacing_violation(layer, rect, other) {
                out.push(v);
            }
        }
        out.extend(self.check_eol_edges(layer, rect, owner, ctx));
        out
    }

    /// Checks the end-of-line spacing rules for the four edges of `rect`.
    fn check_eol_edges(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        let l = self.tech.layer(layer);
        let mut out = Vec::new();
        for rule in &l.eol_rules {
            // Vertical EOL edges (left/right) have length = height.
            let mut regions: Vec<Rect> = Vec::new();
            if rect.height() < rule.eol_width {
                regions.push(Rect::new(
                    rect.xlo() - rule.space,
                    rect.ylo() - rule.within,
                    rect.xlo(),
                    rect.yhi() + rule.within,
                ));
                regions.push(Rect::new(
                    rect.xhi(),
                    rect.ylo() - rule.within,
                    rect.xhi() + rule.space,
                    rect.yhi() + rule.within,
                ));
            }
            if rect.width() < rule.eol_width {
                regions.push(Rect::new(
                    rect.xlo() - rule.within,
                    rect.ylo() - rule.space,
                    rect.xhi() + rule.within,
                    rect.ylo(),
                ));
                regions.push(Rect::new(
                    rect.xlo() - rule.within,
                    rect.yhi(),
                    rect.xhi() + rule.within,
                    rect.yhi() + rule.space,
                ));
            }
            for region in regions {
                for (other, _) in ctx.conflicts(layer, region, owner) {
                    // Region query is touch-inclusive; require real overlap
                    // so metal exactly at the spacing is legal.
                    if other.overlaps(region) {
                        out.push(DrcViolation::new(
                            RuleKind::EolSpacing,
                            layer,
                            gap_marker(rect, other),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Checks the merged metal formed by `candidates` and the touching
    /// `friends` (same-owner shapes): min step, min width and min area.
    ///
    /// This is the Fig. 3 check: a via enclosure fused with the pin shape
    /// may create boundary steps shorter than the layer's `MINSTEP`.
    #[must_use]
    pub fn check_merged(
        &self,
        layer: LayerId,
        candidates: &[Rect],
        friends: &[Rect],
    ) -> Vec<DrcViolation> {
        let l = self.tech.layer(layer);
        let mut out = Vec::new();
        // Only friends actually touching a candidate merge with it.
        let mut merged: Vec<Rect> = candidates.to_vec();
        let mut changed = true;
        let mut remaining: Vec<Rect> = friends.to_vec();
        while changed {
            changed = false;
            remaining.retain(|f| {
                if merged.iter().any(|c| c.touches(*f)) {
                    merged.push(*f);
                    changed = true;
                    false
                } else {
                    true
                }
            });
        }
        let marker = merged
            .iter()
            .copied()
            .reduce(Rect::hull)
            .unwrap_or_default();

        if let Some(rule) = l.min_step {
            for loop_ in union_boundaries(&merged) {
                let lens = edge_lengths(&loop_);
                let n = lens.len();
                // Count maximal runs of consecutive short edges around the
                // cycle.
                let mut run = 0u32;
                let mut max_run = 0u32;
                for i in 0..2 * n {
                    if lens[i % n] < rule.min_step_length {
                        run += 1;
                        max_run = max_run.max(run.min(n as u32));
                    } else {
                        run = 0;
                    }
                    if i >= n && run == 0 {
                        break;
                    }
                }
                if max_run > rule.max_edges {
                    out.push(DrcViolation::new(RuleKind::MinStep, layer, marker));
                    break;
                }
            }
        }
        if l.min_width > 0
            && max_rects(&merged)
                .iter()
                .any(|r| r.min_side() < l.min_width)
        {
            out.push(DrcViolation::new(RuleKind::MinWidth, layer, marker));
        }
        if l.min_area > 0 && union_area(&merged) < l.min_area {
            out.push(DrcViolation::new(RuleKind::MinArea, layer, marker));
        }
        out
    }

    /// Checks a cut shape against other cuts (cut spacing).
    #[must_use]
    pub fn check_cut_shape(
        &self,
        layer: LayerId,
        rect: Rect,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        debug_assert_eq!(self.tech.layer(layer).kind, LayerKind::Cut);
        let spacing = self.tech.layer(layer).spacing;
        let mut out = Vec::new();
        let window = rect.expanded(spacing.max(1));
        for (other, o) in ctx.query(layer, window) {
            // Same-owner stacked cuts at the same spot are one via; any
            // other proximity — same-owner or not — violates cut spacing.
            if o == owner && other == rect {
                continue;
            }
            if rect.touches(other) {
                out.push(DrcViolation::new(
                    RuleKind::Short,
                    layer,
                    gap_marker(rect, other),
                ));
                continue;
            }
            let d2 = pao_geom::rect_dist(rect, other);
            if d2 < i128::from(spacing) * i128::from(spacing) {
                out.push(DrcViolation::new(
                    RuleKind::CutSpacing,
                    layer,
                    gap_marker(rect, other),
                ));
            }
        }
        out
    }

    /// The framework's central query: can `via` land with its origin at
    /// `at`, on behalf of `owner`, given the context?
    ///
    /// Checks, in order: bottom-layer spacing/short/EOL against conflicting
    /// shapes, bottom-layer merged min-step/min-width/min-area with the
    /// owner's own metal, cut spacing, and top-layer spacing/short/EOL.
    #[must_use]
    pub fn check_via_placement(
        &self,
        via: &ViaDef,
        at: Point,
        owner: Owner,
        ctx: &ShapeSet,
    ) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        let bottom: Vec<Rect> = via.bottom_shapes.iter().map(|r| r.translated(at)).collect();
        let cuts: Vec<Rect> = via.cut_shapes.iter().map(|r| r.translated(at)).collect();
        let top: Vec<Rect> = via.top_shapes.iter().map(|r| r.translated(at)).collect();

        for &r in &bottom {
            out.extend(self.check_shape(via.bottom_layer, r, owner, ctx));
        }
        // Merged-geometry checks with the owner's own bottom-layer metal.
        let window = bottom
            .iter()
            .copied()
            .reduce(Rect::hull)
            .unwrap_or_default()
            .expanded(1);
        let friends: Vec<Rect> = ctx.friends(via.bottom_layer, window, owner).collect();
        out.extend(self.check_merged(via.bottom_layer, &bottom, &friends));

        for &r in &cuts {
            out.extend(self.check_cut_shape(via.cut_layer, r, owner, ctx));
        }
        for &r in &top {
            out.extend(self.check_shape(via.top_layer, r, owner, ctx));
            // The top enclosure alone must satisfy min width.
            let l = self.tech.layer(via.top_layer);
            if l.min_width > 0 && r.min_side() < l.min_width {
                out.push(DrcViolation::new(RuleKind::MinWidth, via.top_layer, r));
            }
        }
        out
    }

    /// Exhaustively audits a shape set: every conflicting same-layer pair
    /// is checked for shorts and spacing (each unordered pair reported at
    /// most once), and cut layers for cut spacing.
    ///
    /// Used to score routed designs and to audit access points.
    #[must_use]
    pub fn audit(&self, ctx: &ShapeSet) -> Vec<DrcViolation> {
        let mut out = Vec::new();
        for li in 0..ctx.num_layers() {
            let layer = LayerId(li as u32);
            let kind = self.tech.layer(layer).kind;
            let halo = match kind {
                LayerKind::Routing => self.halo(layer),
                LayerKind::Cut => self.tech.layer(layer).spacing,
            };
            let shapes: Vec<(Rect, Owner)> = ctx.iter_layer(layer).collect();
            for (i, &(a, oa)) in shapes.iter().enumerate() {
                let window = a.expanded(halo.max(1));
                for (b, ob) in ctx.query(layer, window) {
                    // Order pairs to avoid double-reporting: compare by
                    // (rect, owner) with self-pair skipped.
                    if !oa.conflicts_with(ob) || (b, ob) <= (a, oa) {
                        continue;
                    }
                    match kind {
                        LayerKind::Routing => {
                            if let Some(v) = self.spacing_violation(layer, a, b) {
                                out.push(v);
                            }
                        }
                        LayerKind::Cut => {
                            if a.touches(b) {
                                out.push(DrcViolation::new(
                                    RuleKind::Short,
                                    layer,
                                    gap_marker(a, b),
                                ));
                            } else if pao_geom::rect_dist(a, b)
                                < i128::from(halo) * i128::from(halo)
                            {
                                out.push(DrcViolation::new(
                                    RuleKind::CutSpacing,
                                    layer,
                                    gap_marker(a, b),
                                ));
                            }
                        }
                    }
                }
                let _ = i;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::Dir;
    use pao_tech::rules::{EolRule, MinStepRule};
    use pao_tech::Layer;

    fn tech() -> Tech {
        let mut t = Tech::new(1000);
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.min_step = Some(MinStepRule::simple(60));
        m1.min_area = 10_000;
        m1.eol_rules.push(EolRule {
            space: 90,
            eol_width: 80,
            within: 25,
        });
        t.add_layer(m1);
        t.add_layer(Layer::cut("V1", 70, 80));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        t
    }

    fn m1() -> LayerId {
        LayerId(0)
    }

    fn via(t: &Tech) -> ViaDef {
        ViaDef::new(
            "via1",
            t.layer_id("M1").unwrap(),
            vec![Rect::new(-65, -35, 65, 35)],
            t.layer_id("V1").unwrap(),
            vec![Rect::new(-35, -35, 35, 35)],
            t.layer_id("M2").unwrap(),
            vec![Rect::new(-35, -65, 35, 65)],
        )
    }

    #[test]
    fn spacing_simple() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let a = Rect::new(0, 0, 200, 60);
        // 70 required; 69 violates, 70 clean.
        assert!(e
            .spacing_violation(m1(), a, Rect::new(0, 129, 200, 189))
            .is_some());
        assert!(e
            .spacing_violation(m1(), a, Rect::new(0, 130, 200, 190))
            .is_none());
        // Overlap and touch are shorts.
        let short = e
            .spacing_violation(m1(), a, Rect::new(100, 0, 300, 60))
            .unwrap();
        assert_eq!(short.rule, RuleKind::Short);
        let touch = e
            .spacing_violation(m1(), a, Rect::new(200, 0, 300, 60))
            .unwrap();
        assert_eq!(touch.rule, RuleKind::Short);
    }

    #[test]
    fn spacing_corner_to_corner() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let a = Rect::new(0, 0, 100, 60);
        // Diagonal at (50, 49): sqrt(50²+49²) ≈ 70.01 > 70 clean.
        assert!(e
            .spacing_violation(m1(), a, Rect::new(150, 109, 250, 169))
            .is_none());
        // (40, 40): ≈ 56.6 < 70 violates.
        let v = e
            .spacing_violation(m1(), a, Rect::new(140, 100, 240, 160))
            .unwrap();
        assert_eq!(v.rule, RuleKind::MetalSpacing);
    }

    #[test]
    fn check_shape_uses_owner() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(3);
        ctx.insert(m1(), Rect::new(0, 0, 200, 60), Owner::pin(1));
        // Same owner: no violations even when overlapping.
        assert!(e
            .check_shape(m1(), Rect::new(100, 0, 300, 60), Owner::pin(1), &ctx)
            .is_empty());
        // Different owner: short.
        assert!(!e
            .check_shape(m1(), Rect::new(100, 0, 300, 60), Owner::pin(2), &ctx)
            .is_empty());
    }

    #[test]
    fn eol_spacing_fires_only_for_narrow_edges() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(3);
        // A wall 80 away to the east of a narrow shape's right EOL edge.
        ctx.insert(m1(), Rect::new(180, 0, 240, 60), Owner::obs(0));
        // Height 60 < eol_width 80 → EOL; gap 80 < 90 → violation.
        let narrow = Rect::new(0, 0, 100, 60);
        let v = e.check_shape(m1(), narrow, Owner::pin(1), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::EolSpacing), "{v:?}");
        // A tall shape (height ≥ 80) has no vertical EOL edge; plain
        // spacing (70) is satisfied at gap 80.
        let tall = Rect::new(0, -20, 100, 60);
        let v = e.check_shape(m1(), tall, Owner::pin(1), &ctx);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn merged_min_step_detects_via_overhang() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Pin bar 400×60; via enclosure 130×70 sticking out 5 above and
        // below near the middle: edge run (5, 130, 5) all < 60 → min-step.
        let pin = Rect::new(0, 0, 400, 60);
        let enc = Rect::new(100, -5, 230, 65);
        let v = e.check_merged(m1(), &[enc], &[pin]);
        assert!(v.iter().any(|v| v.rule == RuleKind::MinStep), "{v:?}");
        // Enclosure aligned to the pin boundary: no step.
        let aligned = Rect::new(100, 0, 230, 60);
        let v = e.check_merged(m1(), &[aligned], &[pin]);
        assert!(v.iter().all(|v| v.rule != RuleKind::MinStep), "{v:?}");
    }

    #[test]
    fn merged_min_area_and_width() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Isolated 70×70 enclosure: area 4900 < 10000 → min-area.
        let v = e.check_merged(m1(), &[Rect::new(0, 0, 70, 70)], &[]);
        assert!(v.iter().any(|v| v.rule == RuleKind::MinArea));
        // Thin neck: min width violation.
        let v = e.check_merged(
            m1(),
            &[Rect::new(0, 0, 200, 60), Rect::new(200, 10, 260, 40)],
            &[],
        );
        assert!(v.iter().any(|v| v.rule == RuleKind::MinWidth), "{v:?}");
        // Friend that does not touch the candidate does not merge.
        let v = e.check_merged(
            m1(),
            &[Rect::new(0, 0, 70, 70)],
            &[Rect::new(1000, 0, 1400, 200)],
        );
        assert!(v.iter().any(|v| v.rule == RuleKind::MinArea));
    }

    #[test]
    fn cut_spacing() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let v1 = t.layer_id("V1").unwrap();
        let mut ctx = ShapeSet::new(3);
        ctx.insert(v1, Rect::new(0, 0, 70, 70), Owner::pin(1));
        // 79 away: violation (spacing 80); same for same-owner cuts.
        let v = e.check_cut_shape(v1, Rect::new(149, 0, 219, 70), Owner::pin(2), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::CutSpacing));
        let v = e.check_cut_shape(v1, Rect::new(149, 0, 219, 70), Owner::pin(1), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::CutSpacing));
        // 80 away: clean.
        let v = e.check_cut_shape(v1, Rect::new(150, 0, 220, 70), Owner::pin(2), &ctx);
        assert!(v.is_empty());
        // Identical same-owner cut: treated as the same via.
        let v = e.check_cut_shape(v1, Rect::new(0, 0, 70, 70), Owner::pin(1), &ctx);
        assert!(v.is_empty());
    }

    #[test]
    fn via_placement_clean_and_dirty() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let via = via(&t);
        let mut ctx = ShapeSet::new(3);
        // A wide pin that fully contains the bottom enclosure.
        ctx.insert(m1(), Rect::new(-200, -35, 200, 35), Owner::pin(1));
        let v = e.check_via_placement(&via, Point::new(0, 0), Owner::pin(1), &ctx);
        assert!(v.is_empty(), "{v:?}");
        // Same via for a different owner shorts against the pin.
        let v = e.check_via_placement(&via, Point::new(0, 0), Owner::pin(2), &ctx);
        assert!(v.iter().any(|v| v.rule == RuleKind::Short));
        // A narrow pin causes a min-step from the enclosure overhang.
        let mut ctx2 = ShapeSet::new(3);
        ctx2.insert(m1(), Rect::new(-200, -30, 200, 30), Owner::pin(1));
        let v = e.check_via_placement(&via, Point::new(0, 0), Owner::pin(1), &ctx2);
        assert!(v.iter().any(|v| v.rule == RuleKind::MinStep), "{v:?}");
    }

    #[test]
    fn audit_counts_each_pair_once() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(3);
        ctx.insert(m1(), Rect::new(0, 0, 200, 60), Owner::net(1));
        ctx.insert(m1(), Rect::new(0, 100, 200, 160), Owner::net(2)); // 40 gap
        ctx.insert(m1(), Rect::new(1000, 0, 1200, 60), Owner::net(3)); // far away
        ctx.rebuild();
        let v = e.audit(&ctx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleKind::MetalSpacing);
    }
}
