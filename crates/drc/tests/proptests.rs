//! Property-based tests for the DRC engine.

use pao_drc::{DrcEngine, Owner, RuleKind, ShapeSet};
use pao_geom::{Dir, Point, Rect};
use pao_ptest::{check, Rng};
use pao_tech::rules::MinStepRule;
use pao_tech::{Layer, LayerId, Tech, ViaDef};

fn tech() -> Tech {
    let mut t = Tech::new(1000);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    t.add_layer(m1);
    t.add_layer(Layer::cut("V1", 50, 120));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let via = ViaDef::new(
        "via1_0",
        LayerId(0),
        vec![Rect::new(-65, -30, 65, 30)],
        LayerId(1),
        vec![Rect::new(-25, -25, 25, 25)],
        LayerId(2),
        vec![Rect::new(-30, -65, 30, 65)],
    );
    t.add_via(via);
    t
}

fn arb_rect(rng: &mut Rng) -> Rect {
    let x = rng.gen_range(-2_000i64..2_000);
    let y = rng.gen_range(-2_000i64..2_000);
    let w = rng.gen_range(60i64..400);
    let h = rng.gen_range(60i64..400);
    Rect::new(x, y, x + w, y + h)
}

fn arb_rects(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Rect> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| arb_rect(rng)).collect()
}

#[test]
fn spacing_violation_is_symmetric() {
    check("spacing_violation_is_symmetric", 128, |rng| {
        let a = arb_rect(rng);
        let b = arb_rect(rng);
        let t = tech();
        let e = DrcEngine::new(&t);
        let ab = e.spacing_violation(LayerId(0), a, b);
        let ba = e.spacing_violation(LayerId(0), b, a);
        assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.marker, y.marker);
        }
    });
}

#[test]
fn far_apart_shapes_never_violate() {
    check("far_apart_shapes_never_violate", 128, |rng| {
        let a = arb_rect(rng);
        let dx = rng.gen_range(1000i64..5000);
        let dy = rng.gen_range(1000i64..5000);
        let t = tech();
        let e = DrcEngine::new(&t);
        let b = a.translated(Point::new(a.width() + dx, a.height() + dy));
        assert!(e.spacing_violation(LayerId(0), a, b).is_none());
    });
}

#[test]
fn overlap_is_always_a_short() {
    check("overlap_is_always_a_short", 128, |rng| {
        let a = arb_rect(rng);
        let t = tech();
        let e = DrcEngine::new(&t);
        // Any rect overlapping `a` (shifted by less than its size) shorts.
        let b = a.translated(Point::new(a.width() / 2, 0));
        let v = e.spacing_violation(LayerId(0), a, b).expect("violation");
        assert_eq!(v.rule, RuleKind::Short);
    });
}

#[test]
fn same_owner_context_is_always_clean() {
    check("same_owner_context_is_always_clean", 128, |rng| {
        let shapes = arb_rects(rng, 1, 8);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        for &r in &shapes {
            ctx.insert(LayerId(0), r, Owner::pin(1));
        }
        ctx.rebuild();
        // A same-owner candidate can overlap everything freely.
        for &r in &shapes {
            assert!(e.check_shape(LayerId(0), r, Owner::pin(1), &ctx).is_empty());
        }
        // The audit of a single-owner set is empty.
        assert!(e.audit(&ctx).is_empty());
    });
}

#[test]
fn audit_counts_match_pairwise_checks() {
    check("audit_counts_match_pairwise_checks", 128, |rng| {
        let shapes = arb_rects(rng, 2, 8);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        for (i, &r) in shapes.iter().enumerate() {
            ctx.insert(LayerId(0), r, Owner::net(i as u64));
        }
        ctx.rebuild();
        let audit = e.audit(&ctx).len();
        let mut pairwise = 0usize;
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                if e.spacing_violation(LayerId(0), shapes[i], shapes[j])
                    .is_some()
                {
                    pairwise += 1;
                }
            }
        }
        assert_eq!(audit, pairwise);
    });
}

#[test]
fn via_nested_in_big_pin_is_clean() {
    check("via_nested_in_big_pin_is_clean", 128, |rng| {
        let cx = rng.gen_range(-500i64..500);
        let cy = rng.gen_range(-500i64..500);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        // A pin much larger than the enclosure, centered anywhere.
        let pin = Rect::centered_at(Point::new(cx, cy), 800, 400);
        ctx.insert(LayerId(0), pin, Owner::pin(0));
        ctx.rebuild();
        let via = t.via(pao_tech::ViaId(0));
        let v = e.check_via_placement(via, Point::new(cx, cy), Owner::pin(0), &ctx);
        assert!(v.is_empty(), "{v:?}");
    });
}

#[test]
fn via_overhang_below_min_step_is_dirty() {
    check("via_overhang_below_min_step_is_dirty", 64, |rng| {
        let overhang = rng.gen_range(1i64..59);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        // Pin exactly as tall as the enclosure minus 2×overhang.
        let pin = Rect::new(-400, -30 + overhang, 400, 30 - overhang);
        if pin.height() < 2 {
            return;
        }
        ctx.insert(LayerId(0), pin, Owner::pin(0));
        ctx.rebuild();
        let via = t.via(pao_tech::ViaId(0));
        let v = e.check_via_placement(via, Point::ORIGIN, Owner::pin(0), &ctx);
        assert!(
            v.iter().any(|v| v.rule == RuleKind::MinStep),
            "overhang {overhang}: {v:?}"
        );
    });
}

/// The audit is invariant under shape insertion order.
#[test]
fn audit_is_order_invariant() {
    check("audit_is_order_invariant", 64, |rng| {
        let shapes = arb_rects(rng, 2, 10);
        let t = tech();
        let e = DrcEngine::new(&t);
        let build = |order: &[usize]| {
            let mut ctx = ShapeSet::new(t.layers().len());
            for &i in order {
                ctx.insert(LayerId(0), shapes[i], Owner::net(i as u64));
            }
            ctx.rebuild();
            e.audit(&ctx).len()
        };
        let fwd: Vec<usize> = (0..shapes.len()).collect();
        let rev: Vec<usize> = (0..shapes.len()).rev().collect();
        assert_eq!(build(&fwd), build(&rev));
    });
}

/// Translating the whole context never changes the verdicts.
#[test]
fn checks_are_translation_invariant() {
    check("checks_are_translation_invariant", 64, |rng| {
        let shapes = arb_rects(rng, 1, 6);
        let dx = rng.gen_range(-10_000i64..10_000);
        let dy = rng.gen_range(-10_000i64..10_000);
        let t = tech();
        let e = DrcEngine::new(&t);
        let count = |delta: Point| {
            let mut ctx = ShapeSet::new(t.layers().len());
            for (i, &r) in shapes.iter().enumerate() {
                ctx.insert(LayerId(0), r.translated(delta), Owner::net(i as u64));
            }
            ctx.rebuild();
            e.audit(&ctx).len()
        };
        assert_eq!(count(Point::ORIGIN), count(Point::new(dx, dy)));
    });
}
