//! Property-based tests for the DRC engine.

use pao_drc::{CountOnly, DrcEngine, DrcScratch, Owner, RuleKind, ShapeSet};
use pao_geom::{Dir, Point, Rect};
use pao_ptest::{check, Rng};
use pao_tech::rules::{EolRule, MinStepRule};
use pao_tech::{Layer, LayerId, Tech, ViaDef};

fn tech() -> Tech {
    let mut t = Tech::new(1000);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    t.add_layer(m1);
    t.add_layer(Layer::cut("V1", 50, 120));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let via = ViaDef::new(
        "via1_0",
        LayerId(0),
        vec![Rect::new(-65, -30, 65, 30)],
        LayerId(1),
        vec![Rect::new(-25, -25, 25, 25)],
        LayerId(2),
        vec![Rect::new(-30, -65, 30, 65)],
    );
    t.add_via(via);
    t
}

fn arb_rect(rng: &mut Rng) -> Rect {
    let x = rng.gen_range(-2_000i64..2_000);
    let y = rng.gen_range(-2_000i64..2_000);
    let w = rng.gen_range(60i64..400);
    let h = rng.gen_range(60i64..400);
    Rect::new(x, y, x + w, y + h)
}

fn arb_rects(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Rect> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| arb_rect(rng)).collect()
}

#[test]
fn spacing_violation_is_symmetric() {
    check("spacing_violation_is_symmetric", 128, |rng| {
        let a = arb_rect(rng);
        let b = arb_rect(rng);
        let t = tech();
        let e = DrcEngine::new(&t);
        let ab = e.spacing_violation(LayerId(0), a, b);
        let ba = e.spacing_violation(LayerId(0), b, a);
        assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.marker, y.marker);
        }
    });
}

#[test]
fn far_apart_shapes_never_violate() {
    check("far_apart_shapes_never_violate", 128, |rng| {
        let a = arb_rect(rng);
        let dx = rng.gen_range(1000i64..5000);
        let dy = rng.gen_range(1000i64..5000);
        let t = tech();
        let e = DrcEngine::new(&t);
        let b = a.translated(Point::new(a.width() + dx, a.height() + dy));
        assert!(e.spacing_violation(LayerId(0), a, b).is_none());
    });
}

#[test]
fn overlap_is_always_a_short() {
    check("overlap_is_always_a_short", 128, |rng| {
        let a = arb_rect(rng);
        let t = tech();
        let e = DrcEngine::new(&t);
        // Any rect overlapping `a` (shifted by less than its size) shorts.
        let b = a.translated(Point::new(a.width() / 2, 0));
        let v = e.spacing_violation(LayerId(0), a, b).expect("violation");
        assert_eq!(v.rule, RuleKind::Short);
    });
}

#[test]
fn same_owner_context_is_always_clean() {
    check("same_owner_context_is_always_clean", 128, |rng| {
        let shapes = arb_rects(rng, 1, 8);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        for &r in &shapes {
            ctx.insert(LayerId(0), r, Owner::pin(1));
        }
        ctx.rebuild();
        // A same-owner candidate can overlap everything freely.
        for &r in &shapes {
            assert!(e.check_shape(LayerId(0), r, Owner::pin(1), &ctx).is_empty());
        }
        // The audit of a single-owner set is empty.
        assert!(e.audit(&ctx).is_empty());
    });
}

#[test]
fn audit_counts_match_pairwise_checks() {
    check("audit_counts_match_pairwise_checks", 128, |rng| {
        let shapes = arb_rects(rng, 2, 8);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        for (i, &r) in shapes.iter().enumerate() {
            ctx.insert(LayerId(0), r, Owner::net(i as u64));
        }
        ctx.rebuild();
        let audit = e.audit(&ctx).len();
        let mut pairwise = 0usize;
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                if e.spacing_violation(LayerId(0), shapes[i], shapes[j])
                    .is_some()
                {
                    pairwise += 1;
                }
            }
        }
        assert_eq!(audit, pairwise);
    });
}

#[test]
fn via_nested_in_big_pin_is_clean() {
    check("via_nested_in_big_pin_is_clean", 128, |rng| {
        let cx = rng.gen_range(-500i64..500);
        let cy = rng.gen_range(-500i64..500);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        // A pin much larger than the enclosure, centered anywhere.
        let pin = Rect::centered_at(Point::new(cx, cy), 800, 400);
        ctx.insert(LayerId(0), pin, Owner::pin(0));
        ctx.rebuild();
        let via = t.via(pao_tech::ViaId(0));
        let v = e.check_via_placement(via, Point::new(cx, cy), Owner::pin(0), &ctx);
        assert!(v.is_empty(), "{v:?}");
    });
}

#[test]
fn via_overhang_below_min_step_is_dirty() {
    check("via_overhang_below_min_step_is_dirty", 64, |rng| {
        let overhang = rng.gen_range(1i64..59);
        let t = tech();
        let e = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        // Pin exactly as tall as the enclosure minus 2×overhang.
        let pin = Rect::new(-400, -30 + overhang, 400, 30 - overhang);
        if pin.height() < 2 {
            return;
        }
        ctx.insert(LayerId(0), pin, Owner::pin(0));
        ctx.rebuild();
        let via = t.via(pao_tech::ViaId(0));
        let v = e.check_via_placement(via, Point::ORIGIN, Owner::pin(0), &ctx);
        assert!(
            v.iter().any(|v| v.rule == RuleKind::MinStep),
            "overhang {overhang}: {v:?}"
        );
    });
}

/// The audit is invariant under shape insertion order.
#[test]
fn audit_is_order_invariant() {
    check("audit_is_order_invariant", 64, |rng| {
        let shapes = arb_rects(rng, 2, 10);
        let t = tech();
        let e = DrcEngine::new(&t);
        let build = |order: &[usize]| {
            let mut ctx = ShapeSet::new(t.layers().len());
            for &i in order {
                ctx.insert(LayerId(0), shapes[i], Owner::net(i as u64));
            }
            ctx.rebuild();
            e.audit(&ctx).len()
        };
        let fwd: Vec<usize> = (0..shapes.len()).collect();
        let rev: Vec<usize> = (0..shapes.len()).rev().collect();
        assert_eq!(build(&fwd), build(&rev));
    });
}

/// A technology with randomized rule values, exercising every sub-check
/// the sink-based kernel can take (spacing, EOL, min step/width/area, cut
/// spacing).
fn arb_tech(rng: &mut Rng) -> Tech {
    let mut t = Tech::new(1000);
    let width = rng.gen_range(40i64..80);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, width, rng.gen_range(50i64..90));
    if rng.gen_bool(0.7) {
        m1.min_step = Some(MinStepRule::simple(rng.gen_range(30i64..80)));
    }
    m1.min_area = i128::from(rng.gen_range(0i64..20_000));
    if rng.gen_bool(0.5) {
        m1.eol_rules.push(EolRule {
            space: rng.gen_range(60i64..120),
            eol_width: rng.gen_range(50i64..100),
            within: rng.gen_range(0i64..40),
        });
    }
    t.add_layer(m1);
    t.add_layer(Layer::cut("V1", 50, rng.gen_range(60i64..140)));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let enc = rng.gen_range(25i64..70);
    t.add_via(ViaDef::new(
        "via1_0",
        LayerId(0),
        vec![Rect::new(-enc, -30, enc, 30)],
        LayerId(1),
        vec![Rect::new(-25, -25, 25, 25)],
        LayerId(2),
        vec![Rect::new(-30, -65, 30, 65)],
    ));
    t
}

/// A randomized multi-owner, multi-layer context.
fn arb_ctx(rng: &mut Rng, t: &Tech) -> ShapeSet {
    let mut ctx = ShapeSet::new(t.layers().len());
    for layer in [LayerId(0), LayerId(1), LayerId(2)] {
        for r in arb_rects(rng, 0, 5) {
            let owner = match rng.gen_range(0u32..3) {
                0 => Owner::pin(0),
                1 => Owner::net(rng.gen_range(0u64..3)),
                _ => Owner::obs(0),
            };
            ctx.insert(layer, r, owner);
        }
    }
    if rng.gen_bool(0.8) {
        ctx.rebuild();
    }
    ctx
}

/// `FirstOnly`'s verdict must equal `CollectAll` emptiness and `CountOnly`
/// must equal `CollectAll` length, for the via-placement kernel and the
/// audit, over randomized tech and geometry — including with a reused
/// (warm) scratch.
#[test]
fn sink_modes_agree_with_collect_all() {
    let mut warm = DrcScratch::new();
    check("sink_modes_agree_with_collect_all", 96, |rng| {
        let t = arb_tech(rng);
        let e = DrcEngine::new(&t);
        let ctx = arb_ctx(rng, &t);
        let via = t.via(pao_tech::ViaId(0));
        let at = Point::new(rng.gen_range(-600i64..600), rng.gen_range(-600i64..600));
        let owner = Owner::pin(0);

        let all = e.check_via_placement(via, at, owner, &ctx);
        assert_eq!(
            e.via_placement_clean(via, at, owner, &ctx, &mut warm),
            all.is_empty(),
            "FirstOnly verdict must equal CollectAll emptiness: {all:?}"
        );
        let mut count = CountOnly::new();
        assert!(e.check_via_placement_sink(via, at, owner, &ctx, &mut warm, &mut count));
        assert_eq!(count.count(), all.len());

        let audit = e.audit(&ctx);
        assert_eq!(e.audit_clean(&ctx), audit.is_empty());
        let mut count = CountOnly::new();
        assert!(e.audit_sink(&ctx, &mut count));
        assert_eq!(count.count(), audit.len());
    });
    // The tallies stay consistent across all cases.
    assert!(warm.rejects() <= warm.probes());
    assert!(warm.early_exits() <= warm.rejects());
}

/// The `ShapeSet` visitor queries must agree with a brute-force scan over
/// all inserted shapes, for rebuilt and non-rebuilt (overflow) sets.
#[test]
fn visitor_query_matches_brute_force() {
    check("visitor_query_matches_brute_force", 96, |rng| {
        let shapes = arb_rects(rng, 0, 20);
        let mut ctx = ShapeSet::new(1);
        let owner_of = |i: usize| Owner::net((i % 4) as u64);
        for (i, &r) in shapes.iter().enumerate() {
            ctx.insert(LayerId(0), r, owner_of(i));
        }
        if rng.gen_bool(0.5) {
            ctx.rebuild();
        }
        let window = arb_rect(rng);
        let probe = Owner::net(rng.gen_range(0u64..4));

        let mut got: Vec<(Rect, Owner)> = Vec::new();
        assert!(ctx.for_each_in(LayerId(0), window, |r, o| {
            got.push((r, o));
            true
        }));
        let mut want: Vec<(Rect, Owner)> = shapes
            .iter()
            .enumerate()
            .filter(|&(_, r)| r.touches(window))
            .map(|(i, &r)| (r, owner_of(i)))
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "visitor must see exactly the touching shapes");

        let mut conf: Vec<(Rect, Owner)> = Vec::new();
        assert!(ctx.for_each_conflict(LayerId(0), window, probe, |r, o| {
            conf.push((r, o));
            true
        }));
        let mut conf_want: Vec<(Rect, Owner)> = want
            .iter()
            .copied()
            .filter(|&(_, o)| o.conflicts_with(probe))
            .collect();
        conf.sort();
        conf_want.sort();
        assert_eq!(conf, conf_want);

        let mut fr: Vec<Rect> = Vec::new();
        assert!(ctx.for_each_friend(LayerId(0), window, probe, |r| {
            fr.push(r);
            true
        }));
        let mut fr_want: Vec<Rect> = want
            .iter()
            .copied()
            .filter_map(|(r, o)| (o == probe).then_some(r))
            .collect();
        fr.sort();
        fr_want.sort();
        assert_eq!(fr, fr_want);

        // Early exit visits exactly one touching shape (when any exist).
        if !want.is_empty() {
            let mut n = 0;
            assert!(!ctx.for_each_in(LayerId(0), window, |_, _| {
                n += 1;
                false
            }));
            assert_eq!(n, 1);
        }
    });
}

/// Translating the whole context never changes the verdicts.
#[test]
fn checks_are_translation_invariant() {
    check("checks_are_translation_invariant", 64, |rng| {
        let shapes = arb_rects(rng, 1, 6);
        let dx = rng.gen_range(-10_000i64..10_000);
        let dy = rng.gen_range(-10_000i64..10_000);
        let t = tech();
        let e = DrcEngine::new(&t);
        let count = |delta: Point| {
            let mut ctx = ShapeSet::new(t.layers().len());
            for (i, &r) in shapes.iter().enumerate() {
                ctx.insert(LayerId(0), r.translated(delta), Owner::net(i as u64));
            }
            ctx.rebuild();
            e.audit(&ctx).len()
        };
        assert_eq!(count(Point::ORIGIN), count(Point::new(dx, dy)));
    });
}
