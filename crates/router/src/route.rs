//! Net routing: terminals from pin access, MST decomposition, A* search,
//! shape commitment.

use crate::astar::{astar, AstarConfig};
use crate::grid::{GridNode, RouteGrid};
use pao_core::apgen::AccessPoint;
use pao_core::oracle::PaoResult;
use pao_core::unique::pin_owner;
use pao_design::{CompId, Design, NetPin};
use pao_drc::{DrcEngine, Owner, ShapeSet};
use pao_geom::{Dbu, Point, Rect};
use pao_tech::{LayerId, PinUse, Tech};

/// Owner used for all power rails (one electrical net).
const POWER_OWNER: Owner = Owner::Net(u64::MAX);
/// Owner used for all ground rails.
const GROUND_OWNER: Owner = Owner::Net(u64::MAX - 1);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// A* parameters.
    pub astar: AstarConfig,
    /// Penalty added per conflicting shape along a step (soft occupancy).
    pub occupancy_penalty: i64,
    /// Lowest routing layer used (name). Default `"metal2"`.
    pub layer_lo: String,
    /// Highest routing layer used (name). Default `"metal5"`.
    pub layer_hi: String,
    /// Extra full routing passes with history costs around the previous
    /// pass's violation markers (PathFinder-style negotiation). 0 routes
    /// once.
    pub history_passes: usize,
}

impl Default for RouteConfig {
    fn default() -> RouteConfig {
        RouteConfig {
            astar: AstarConfig::default(),
            occupancy_penalty: 12_000,
            layer_lo: "metal2".to_owned(),
            layer_hi: "metal5".to_owned(),
            history_passes: 1,
        }
    }
}

/// The result of routing a design: all committed shapes (pins,
/// obstructions, access vias, wires, wire vias) plus summary counters.
#[derive(Debug)]
pub struct RoutedDesign {
    /// Everything on the die, with net ownership.
    pub shapes: ShapeSet,
    /// Nets with all terminals connected.
    pub routed_nets: usize,
    /// MST edges that fell back to a direct (unsearched) route.
    pub fallback_routes: usize,
    /// Total routed wirelength in DBU.
    pub wirelength: i64,
    /// Number of vias placed (access + wire).
    pub via_count: usize,
    /// Terminals that had no access point at all (routed from the pin
    /// bounding-box center with the default via — usually dirty).
    pub forced_terminals: usize,
    /// Every committed via: `(definition, origin, owner)` — scored with
    /// the full rule set by [`score::audit_routed`](crate::score::audit_routed).
    pub vias: Vec<(pao_tech::ViaId, Point, Owner)>,
    /// The subset of `vias` that are *pin access* vias (index into
    /// `vias`): their violations are the paper's pin-access DRC metric.
    pub access_vias: Vec<usize>,
    /// Every committed wire rectangle `(net owner, layer, rect)` — the
    /// source for [`defout::write_routed_def`](crate::defout::write_routed_def).
    pub wires: Vec<(Owner, LayerId, Rect)>,
}

/// A net terminal: where the router must start/end.
#[derive(Debug, Clone, Copy)]
struct Terminal {
    layer: LayerId,
    pos: Point,
}

/// Wire end-extension on `layer`: how far a wire must extend past a via
/// center so the via enclosure never protrudes from the wire end (the
/// standard router end-extension rule; without it every via at a wire end
/// is a min-step violation).
fn end_extension(tech: &Tech, layer: LayerId) -> Dbu {
    let dir = tech.layer(layer).dir;
    let w = tech.layer(layer).width;
    tech.vias()
        .iter()
        .flat_map(|v| {
            let mut reach = Vec::new();
            if v.bottom_layer == layer {
                let bb = v.bottom_bbox();
                reach.push(match dir {
                    pao_geom::Dir::Horizontal => bb.width() / 2,
                    pao_geom::Dir::Vertical => bb.height() / 2,
                });
            }
            if v.top_layer == layer {
                let bb = v.top_bbox();
                reach.push(match dir {
                    pao_geom::Dir::Horizontal => bb.width() / 2,
                    pao_geom::Dir::Vertical => bb.height() / 2,
                });
            }
            reach
        })
        .max()
        .map_or(0, |r| (r - w / 2).max(0))
}

/// A metal patch centered at `pos` on `layer` long enough (along the
/// preferred direction) to satisfy the layer's min-area rule — dropped at
/// via-stack points that carry no wire.
fn min_area_patch(tech: &Tech, layer: LayerId, pos: Point) -> Rect {
    let l = tech.layer(layer);
    let w = l.width.max(1);
    let needed = if l.min_area > 0 {
        ((l.min_area / i128::from(w)) as Dbu).max(w)
    } else {
        w
    };
    match l.dir {
        pao_geom::Dir::Horizontal => Rect::centered_at(pos, needed, w),
        pao_geom::Dir::Vertical => Rect::centered_at(pos, w, needed),
    }
}

/// The detailed router scaffold.
#[derive(Debug)]
pub struct Router<'a> {
    tech: &'a Tech,
    design: &'a Design,
    cfg: RouteConfig,
}

impl<'a> Router<'a> {
    /// Creates a router over a placed design.
    #[must_use]
    pub fn new(tech: &'a Tech, design: &'a Design, cfg: RouteConfig) -> Router<'a> {
        Router { tech, design, cfg }
    }

    /// Routes every net using PAAF's selected access points.
    #[must_use]
    pub fn route_with_pao(&self, pao: &PaoResult) -> RoutedDesign {
        self.route_with_accessor(|c, p| pao.access_point(self.design, c, p))
    }

    /// Routes every net with an arbitrary pin-access accessor (PAAF,
    /// the baseline, or a distance-cost stand-in).
    ///
    /// With `history_passes > 0`, the whole design is re-routed after an
    /// audit, pricing the previous pass's violation neighborhoods — the
    /// PathFinder negotiation idea in its simplest form.
    #[must_use]
    pub fn route_with_accessor(
        &self,
        accessor: impl Fn(CompId, usize) -> Option<AccessPoint>,
    ) -> RoutedDesign {
        let mut history: pao_geom::RTree<()> = pao_geom::RTree::new();
        let mut best = self.route_once(&accessor, &history);
        for _ in 0..self.cfg.history_passes {
            let engine = DrcEngine::new(self.tech);
            let viols = engine.audit(&best.shapes);
            if viols.is_empty() {
                break;
            }
            history = viols
                .iter()
                .map(|v| {
                    (
                        v.marker.expanded(self.tech.layer(v.layer).spacing.max(1)),
                        (),
                    )
                })
                .collect();
            let again = self.route_once(&accessor, &history);
            let engine = DrcEngine::new(self.tech);
            if engine.audit(&again.shapes).len() < viols.len() {
                best = again;
            } else {
                break;
            }
        }
        best
    }

    /// One full routing pass; `history` prices regions that were in
    /// violation on the previous pass.
    fn route_once(
        &self,
        accessor: impl Fn(CompId, usize) -> Option<AccessPoint>,
        history: &pao_geom::RTree<()>,
    ) -> RoutedDesign {
        let tech = self.tech;
        let design = self.design;
        let engine = DrcEngine::new(tech);
        let lo = tech.layer_id(&self.cfg.layer_lo).unwrap_or(LayerId(0));
        let hi = tech
            .layer_id(&self.cfg.layer_hi)
            .unwrap_or(LayerId(tech.layers().len() as u32 - 1));
        let grid = RouteGrid::from_design(tech, design, lo, hi);

        // ---- Static context: pins (net-owned when connected), obs.
        let mut pin_net: std::collections::HashMap<(CompId, usize), u64> =
            std::collections::HashMap::new();
        for (ni, net) in design.nets().iter().enumerate() {
            for (comp, pin_name) in net.comp_pins() {
                if let Some(master) = design.component(comp).master_in(tech) {
                    if let Some(pi) = master.pins.iter().position(|p| p.name == pin_name) {
                        pin_net.insert((comp, pi), ni as u64);
                    }
                }
            }
        }
        let mut shapes = ShapeSet::new(tech.layers().len());
        for (ci, comp) in design.components().iter().enumerate() {
            let id = CompId(ci as u32);
            if !comp.is_placed {
                continue;
            }
            let Some(master) = comp.master_in(tech) else {
                continue;
            };
            for (pi, layer, rect) in design.placed_pin_shapes(tech, id) {
                let owner = match master.pins[pi].use_ {
                    PinUse::Power => POWER_OWNER,
                    PinUse::Ground => GROUND_OWNER,
                    _ => match pin_net.get(&(id, pi)) {
                        Some(&n) => Owner::net(n),
                        None => pin_owner(id, pi),
                    },
                };
                shapes.insert(layer, rect, owner);
            }
            for (layer, rect) in design.placed_obs_shapes(tech, id) {
                shapes.insert(layer, rect, Owner::obs(ci as u64));
            }
        }
        for (ii, io) in design.io_pins().iter().enumerate() {
            let owner = design
                .net_by_name(&io.net)
                .map_or(Owner::pin(0xFFFF_0000 + ii as u64), |n| {
                    Owner::net(u64::from(n.0))
                });
            shapes.insert(io.layer, io.placed_rect(), owner);
        }
        shapes.rebuild();

        // ---- Terminals + access vias per net.
        let mut result = RoutedDesign {
            shapes,
            routed_nets: 0,
            fallback_routes: 0,
            wirelength: 0,
            via_count: 0,
            forced_terminals: 0,
            vias: Vec::new(),
            access_vias: Vec::new(),
            wires: Vec::new(),
        };
        let mut net_terminals: Vec<Vec<Terminal>> = Vec::with_capacity(design.nets().len());
        for (ni, net) in design.nets().iter().enumerate() {
            let owner = Owner::net(ni as u64);
            let mut terms = Vec::new();
            for pin in &net.pins {
                match pin {
                    NetPin::Comp { comp, pin } => {
                        if !design.component(*comp).is_placed {
                            continue;
                        }
                        let Some(master) = design.component(*comp).master_in(tech) else {
                            continue;
                        };
                        let Some(pi) = master.pins.iter().position(|p| p.name == *pin) else {
                            continue;
                        };
                        let ap = accessor(*comp, pi);
                        let (via, pos, layer) = match &ap {
                            Some(ap) => (ap.primary_via(), ap.pos, ap.layer),
                            None => {
                                result.forced_terminals += 1;
                                let bbox = design
                                    .placed_pin_shapes(tech, *comp)
                                    .iter()
                                    .filter(|&&(p, _, _)| p == pi)
                                    .map(|&(_, _, r)| r)
                                    .reduce(Rect::hull)
                                    .unwrap_or_default();
                                let layer = design
                                    .placed_pin_shapes(tech, *comp)
                                    .iter()
                                    .find(|&&(p, _, _)| p == pi)
                                    .map_or(LayerId(0), |&(_, l, _)| l);
                                (
                                    tech.up_vias_from(layer).first().copied(),
                                    bbox.center(),
                                    layer,
                                )
                            }
                        };
                        match via {
                            Some(v) => {
                                for (l, r) in tech.via(v).placed_shapes(pos) {
                                    result.shapes.insert(l, r, owner);
                                }
                                result.access_vias.push(result.vias.len());
                                result.vias.push((v, pos, owner));
                                result.via_count += 1;
                                terms.push(Terminal {
                                    layer: tech.via(v).top_layer,
                                    pos,
                                });
                            }
                            None => {
                                // Planar-only access (macro pins): route on
                                // the pin's own layer.
                                terms.push(Terminal { layer, pos });
                            }
                        }
                    }
                    NetPin::Io { index } => {
                        let io = &design.io_pins()[*index as usize];
                        terms.push(Terminal {
                            layer: io.layer,
                            pos: io.placed_rect().center(),
                        });
                    }
                }
            }
            net_terminals.push(terms);
        }
        result.shapes.rebuild();

        // ---- Pre-pass: snap every terminal and commit its jog, for every
        // net, so the A* occupancy of each net sees all other nets' jogs.
        let net_nodes: Vec<Vec<Option<GridNode>>> = net_terminals
            .iter()
            .enumerate()
            .map(|(ni, terms)| {
                let owner = Owner::net(ni as u64);
                terms
                    .iter()
                    .map(|t| {
                        let n = grid
                            .snap(t.layer, t.pos)
                            .or_else(|| grid.snap(grid.layers[0], t.pos));
                        if let Some(n) = n {
                            if terms.len() >= 2 {
                                self.commit_jog(&grid, &mut result, owner, *t, n);
                            }
                        }
                        n
                    })
                    .collect()
            })
            .collect();
        result.shapes.rebuild();

        // ---- Route each net: Prim MST + A* per edge.
        for (ni, terms) in net_terminals.iter().enumerate() {
            if terms.len() < 2 {
                if !terms.is_empty() {
                    result.routed_nets += 1;
                }
                continue;
            }
            let owner = Owner::net(ni as u64);
            let nodes = &net_nodes[ni];
            // Prim MST over terminals.
            let mut in_tree = vec![false; terms.len()];
            in_tree[0] = true;
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for _ in 1..terms.len() {
                let mut best: Option<(i64, usize, usize)> = None;
                for (i, ti) in terms.iter().enumerate() {
                    if !in_tree[i] {
                        continue;
                    }
                    for (j, tj) in terms.iter().enumerate() {
                        if in_tree[j] {
                            continue;
                        }
                        let d = ti.pos.manhattan(tj.pos)
                            + i64::from(ti.layer.0.abs_diff(tj.layer.0)) * 100;
                        if best.is_none_or(|(bd, _, _)| d < bd) {
                            best = Some((d, i, j));
                        }
                    }
                }
                // With at least one node in and one out of the tree, the
                // double loop always finds an edge; bail out of the (then
                // fully spanned) loop rather than panic if it somehow
                // does not.
                let Some((_, i, j)) = best else { break };
                in_tree[j] = true;
                edges.push((i, j));
            }
            let mut all_ok = true;
            for (i, j) in edges {
                let ok = match (nodes[i], nodes[j]) {
                    (Some(a), Some(b)) => {
                        self.route_edge(&grid, &engine, &mut result, owner, a, b, history)
                    }
                    _ => false,
                };
                all_ok &= ok;
            }
            if all_ok {
                result.routed_nets += 1;
            }
        }
        result.shapes.rebuild();
        result
    }

    /// Routes one two-terminal connection; returns `false` when the A*
    /// fell back to a direct route.
    #[allow(clippy::too_many_arguments)]
    fn route_edge(
        &self,
        grid: &RouteGrid,
        engine: &DrcEngine<'_>,
        result: &mut RoutedDesign,
        owner: Owner,
        src: GridNode,
        dst: GridNode,
        history: &pao_geom::RTree<()>,
    ) -> bool {
        let tech = self.tech;
        let shapes = &result.shapes;
        // Per-layer clearance: wire half-width plus the layer's own worst
        // spacing requirement (NOT the cut spacing — that would block
        // every position near a neighboring via).
        let halos: Vec<Dbu> = grid
            .layers
            .iter()
            .map(|&l| tech.layer(l).width / 2 + engine.halo(l))
            .collect();
        // Terminal escape: when the strict search fails (a terminal hemmed
        // in by a neighboring net's access via), retry with free steps
        // adjacent to the endpoints — far better than the full-overlap
        // fallback route.
        let near = |n: GridNode, t: GridNode| -> bool {
            n.layer == t.layer && n.xi.abs_diff(t.xi) <= 1 && n.yi.abs_diff(t.yi) <= 1
        };
        // Conflict queries repeat enormously during A* re-expansions; the
        // shape set is frozen for the duration of one edge search, so the
        // results are memoizable.
        let memo: std::cell::RefCell<std::collections::HashMap<(GridNode, GridNode), bool>> =
            std::cell::RefCell::new(std::collections::HashMap::new());
        let engine = DrcEngine::new(tech);
        let conflict = |from: GridNode, to: GridNode| -> bool {
            let key = (from.min(to), from.max(to));
            if let Some(&c) = memo.borrow().get(&key) {
                return c;
            }
            let c = if from.layer != to.layer {
                // Via placement: price the enclosure and cut footprints
                // against foreign shapes (otherwise vias land blindly next
                // to other nets' vias and wires).
                let bottom = grid.layer_of(from).min(grid.layer_of(to));
                match tech.up_vias_from(bottom).first() {
                    Some(&vid) => {
                        let v = tech.via(vid);
                        let pos = grid.pos(from);
                        [
                            (v.bottom_layer, v.bottom_bbox()),
                            (v.top_layer, v.top_bbox()),
                            (v.cut_layer, v.cut_bbox()),
                        ]
                        .into_iter()
                        .any(|(l, bb)| {
                            let halo = match tech.layer(l).kind {
                                pao_tech::LayerKind::Routing => engine.halo(l),
                                pao_tech::LayerKind::Cut => tech.layer(l).spacing,
                            };
                            let win = bb.translated(pos).expanded(halo.max(1));
                            shapes.conflicts(l, win, owner).next().is_some()
                        })
                    }
                    None => false,
                }
            } else {
                let layer = grid.layer_of(to);
                let seg = Rect::from_points(grid.pos(from), grid.pos(to))
                    .expanded(halos[to.layer as usize]);
                shapes.conflicts(layer, seg, owner).next().is_some()
            };
            memo.borrow_mut().insert(key, c);
            c
        };
        let occupancy = |escape: bool| {
            let conflict = &conflict;
            move |from: GridNode, to: GridNode| -> i64 {
                if escape && (near(from, src) || near(to, dst)) {
                    return 0;
                }
                let mut cost = 0;
                if conflict(from, to) {
                    cost += self.cfg.occupancy_penalty;
                }
                if !history.is_empty()
                    && history.any_touching(Rect::from_points(grid.pos(from), grid.pos(to)))
                {
                    // Half-weight: trouble neighborhoods, not hard walls.
                    cost += self.cfg.occupancy_penalty / 2;
                }
                cost
            }
        };
        let path = astar(grid, src, dst, &self.cfg.astar, occupancy(false))
            .or_else(|| astar(grid, src, dst, &self.cfg.astar, occupancy(true)));
        if src == dst {
            // Both terminals land on the same grid node: bridge their
            // jogs/enclosures with a preferred-direction cover strip.
            let layer = grid.layer_of(src);
            let l = tech.layer(layer);
            let over = end_extension(tech, layer).max(l.min_step.map_or(0, |r| r.min_step_length));
            let pos = grid.pos(src);
            let r = match l.dir {
                pao_geom::Dir::Horizontal => Rect::new(
                    pos.x - l.width / 2 - over,
                    pos.y - l.width / 2,
                    pos.x + l.width / 2 + over,
                    pos.y + l.width / 2,
                ),
                pao_geom::Dir::Vertical => Rect::new(
                    pos.x - l.width / 2,
                    pos.y - l.width / 2 - over,
                    pos.x + l.width / 2,
                    pos.y + l.width / 2 + over,
                ),
            };
            result.shapes.insert(layer, r, owner);
            result.wires.push((owner, layer, r));
            return true;
        }
        let (path, ok) = match path {
            Some(p) => (p, true),
            None => {
                // Direct fallback: L on the grid corners.
                let corner = GridNode {
                    layer: src.layer,
                    xi: dst.xi,
                    yi: src.yi,
                };
                (vec![src, corner, dst], false)
            }
        };
        // Commit merged straight runs + vias. A run end is extended only
        // when a via lands there (turn corners must stay flush — an
        // extension tab past a same-layer corner is itself a min-step).
        let mut run_start = 0usize;
        let mut start_is_via = false;
        for k in 1..=path.len() {
            // A run ends at the path end, at a layer change, or when the
            // direction turns (so each committed rect is a straight wire).
            let boundary = k == path.len()
                || path[k].layer != path[run_start].layer
                || (k >= 2
                    && path[k].layer == path[k - 1].layer
                    && path[k - 1].layer == path[k - 2].layer
                    && {
                        let d1 = (path[k].xi != path[k - 1].xi, path[k].yi != path[k - 1].yi);
                        let d2 = (
                            path[k - 1].xi != path[k - 2].xi,
                            path[k - 1].yi != path[k - 2].yi,
                        );
                        d1 != d2
                    });
            if !boundary {
                continue;
            }
            // Wire run [run_start, k).
            let first = path[run_start];
            let last = path[k - 1];
            let layer = grid.layer_of(first);
            let w = tech.layer(layer).width;
            let p1 = grid.pos(first);
            let p2 = grid.pos(last);
            let end_is_via = k < path.len() && path[k].layer != last.layer;
            if p1 != p2 {
                let ext = end_extension(tech, layer);
                let (e1, e2) = (
                    if start_is_via { ext } else { 0 },
                    if end_is_via { ext } else { 0 },
                );
                let mut r = Rect::from_points(p1, p2).expanded(w / 2);
                if p1.y == p2.y {
                    // Horizontal run: p1 end is at min or max x.
                    let (lo_ext, hi_ext) = if p1.x <= p2.x { (e1, e2) } else { (e2, e1) };
                    r = Rect::new(r.xlo() - lo_ext, r.ylo(), r.xhi() + hi_ext, r.yhi());
                } else if p1.x == p2.x {
                    let (lo_ext, hi_ext) = if p1.y <= p2.y { (e1, e2) } else { (e2, e1) };
                    r = Rect::new(r.xlo(), r.ylo() - lo_ext, r.xhi(), r.yhi() + hi_ext);
                }
                result.shapes.insert(layer, r, owner);
                result.wires.push((owner, layer, r));
                result.wirelength += p1.manhattan(p2);
            } else if path.len() > 1 {
                // A via lands here with no same-layer wire (path start/end
                // or a stack-through): drop a min-area patch so the bare
                // enclosure neither under-runs min-area nor leaves
                // sub-min-step tabs against jog branches.
                let patch = min_area_patch(tech, layer, p1);
                result.shapes.insert(layer, patch, owner);
                result.wires.push((owner, layer, patch));
            }
            if k < path.len() {
                if path[k].layer != last.layer {
                    // Via between the two layers.
                    let l1 = grid.layer_of(last);
                    let l2 = grid.layer_of(path[k]);
                    let bottom = l1.min(l2);
                    if let Some(&vid) = tech.up_vias_from(bottom).first() {
                        let at = grid.pos(last);
                        for (l, r) in tech.via(vid).placed_shapes(at) {
                            result.shapes.insert(l, r, owner);
                        }
                        result.vias.push((vid, at, owner));
                        result.via_count += 1;
                    }
                    run_start = k;
                    start_is_via = true;
                } else {
                    // Direction turn: next run starts at the corner.
                    run_start = k - 1;
                    start_is_via = false;
                }
            }
        }
        if !ok {
            result.fallback_routes += 1;
        }
        ok
    }

    /// Connects a terminal to its snapped grid position.
    ///
    /// The jog is a *spine + branch*: a preferred-direction spine through
    /// the terminal covers the access via's elongated enclosure and
    /// overshoots every junction by at least the layer's min-step, so the
    /// merged metal never has sub-min-step tabs; a perpendicular branch
    /// (when needed) carries the off-track offset to the grid node.
    fn commit_jog(
        &self,
        grid: &RouteGrid,
        result: &mut RoutedDesign,
        owner: Owner,
        term: Terminal,
        node: GridNode,
    ) {
        let tech = self.tech;
        let grid_pos = grid.pos(node);
        let grid_layer = grid.layer_of(node);
        if term.pos != grid_pos {
            let layer = term.layer;
            let l = tech.layer(layer);
            let w = l.width;
            let ext = end_extension(tech, layer);
            let over = ext.max(l.min_step.map_or(0, |r| r.min_step_length));
            let mut wires: Vec<Rect> = Vec::new();
            match l.dir {
                pao_geom::Dir::Vertical => {
                    let ylo = term.pos.y.min(grid_pos.y) - w / 2 - over;
                    let yhi = term.pos.y.max(grid_pos.y) + w / 2 + over;
                    wires.push(Rect::new(term.pos.x - w / 2, ylo, term.pos.x + w / 2, yhi));
                    if term.pos.x != grid_pos.x {
                        let xs = pao_geom::Interval::new(term.pos.x, grid_pos.x);
                        wires.push(Rect::new(
                            xs.lo() - w / 2,
                            grid_pos.y - w / 2,
                            xs.hi() + w / 2,
                            grid_pos.y + w / 2,
                        ));
                    }
                }
                pao_geom::Dir::Horizontal => {
                    let xlo = term.pos.x.min(grid_pos.x) - w / 2 - over;
                    let xhi = term.pos.x.max(grid_pos.x) + w / 2 + over;
                    wires.push(Rect::new(xlo, term.pos.y - w / 2, xhi, term.pos.y + w / 2));
                    if term.pos.y != grid_pos.y {
                        let ys = pao_geom::Interval::new(term.pos.y, grid_pos.y);
                        wires.push(Rect::new(
                            grid_pos.x - w / 2,
                            ys.lo() - w / 2,
                            grid_pos.x + w / 2,
                            ys.hi() + w / 2,
                        ));
                    }
                }
            }
            for r in wires {
                result.shapes.insert(layer, r, owner);
                result.wires.push((owner, layer, r));
                result.wirelength += r.max_side() - w;
            }
        }
        if term.layer != grid_layer {
            let bottom = term.layer.min(grid_layer);
            if let Some(&vid) = tech.up_vias_from(bottom).first() {
                for (l, r) in tech.via(vid).placed_shapes(grid_pos) {
                    result.shapes.insert(l, r, owner);
                }
                result.vias.push((vid, grid_pos, owner));
                result.via_count += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_core::PinAccessOracle;
    use pao_testgen::{generate, SuiteCase};

    #[test]
    fn routes_smoke_case_with_pao_access() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let pao = PinAccessOracle::new().analyze(&tech, &design);
        let routed = Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&pao);
        assert!(routed.routed_nets > 0);
        assert!(routed.wirelength > 0);
        assert!(routed.via_count > 0);
        assert_eq!(routed.forced_terminals, 0, "PAAF covers every pin");
        // Most nets should route without fallback.
        assert!(
            routed.fallback_routes * 5 <= design.nets().len(),
            "{}",
            routed.fallback_routes
        );
    }

    #[test]
    fn routes_with_missing_access_fall_back_to_centers() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let routed =
            Router::new(&tech, &design, RouteConfig::default()).route_with_accessor(|_, _| None);
        assert!(routed.forced_terminals > 0);
        assert!(routed.routed_nets > 0);
    }
}
