//! Post-route DRC scoring (the `#DRCs` of Experiment 3).

use crate::route::RoutedDesign;
use pao_design::Design;
use pao_drc::{DrcEngine, DrcViolation, RuleKind};
use pao_tech::Tech;
use std::collections::{BTreeMap, HashSet};

/// Audits the routed design: every different-net pairwise violation
/// (shorts, spacing, cut spacing) **plus** a full-rule re-check of every
/// committed via in its final context (min-step, merged min-width /
/// min-area, EOL — the rules pin access exists to satisfy). Duplicate
/// findings are reported once.
#[must_use]
pub fn audit_routed(tech: &Tech, _design: &Design, routed: &RoutedDesign) -> Vec<DrcViolation> {
    let engine = DrcEngine::new(tech);
    let mut out = engine.audit(&routed.shapes);
    for &(vid, pos, owner) in &routed.vias {
        out.extend(engine.check_via_placement(tech.via(vid), pos, owner, &routed.shapes));
    }
    let mut seen = HashSet::new();
    out.retain(|v| seen.insert((v.rule, v.layer, v.marker)));
    out
}

/// The paper's pin-access metric: violations attributable to the **pin
/// access vias** alone, each re-checked with the full rule set in the
/// final routed context. PAAF's validated access keeps this at (or near)
/// zero; unvalidated access accumulates hundreds.
#[must_use]
pub fn access_drcs(tech: &Tech, _design: &Design, routed: &RoutedDesign) -> usize {
    let engine = DrcEngine::new(tech);
    let mut out = Vec::new();
    for &i in &routed.access_vias {
        let (vid, pos, owner) = routed.vias[i];
        out.extend(engine.check_via_placement(tech.via(vid), pos, owner, &routed.shapes));
    }
    let mut seen = HashSet::new();
    out.retain(|v| seen.insert((v.rule, v.layer, v.marker)));
    out.len()
}

/// The total number of DRC violations in the routed design.
#[must_use]
pub fn count_drcs(tech: &Tech, design: &Design, routed: &RoutedDesign) -> usize {
    audit_routed(tech, design, routed).len()
}

/// Violation counts per rule kind, sorted by kind.
#[must_use]
pub fn drc_breakdown(
    tech: &Tech,
    design: &Design,
    routed: &RoutedDesign,
) -> BTreeMap<RuleKind, usize> {
    let mut map = BTreeMap::new();
    for v in audit_routed(tech, design, routed) {
        *map.entry(v.rule).or_insert(0usize) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{RouteConfig, Router};
    use pao_core::PinAccessOracle;
    use pao_testgen::{generate, SuiteCase};

    #[test]
    fn pao_access_beats_center_access_on_drcs() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let router = Router::new(&tech, &design, RouteConfig::default());

        let pao = PinAccessOracle::new().analyze(&tech, &design);
        let with_pao = router.route_with_pao(&pao);
        let drcs_pao = count_drcs(&tech, &design, &with_pao);

        // "Distance-cost" access: always the pin center, default via — the
        // Dr.CU-like arm of Experiment 3.
        let naive = router.route_with_accessor(|_, _| None);
        let drcs_naive = count_drcs(&tech, &design, &naive);

        assert!(
            drcs_pao < drcs_naive,
            "PAAF access must reduce routed DRCs: {drcs_pao} vs {drcs_naive}"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let router = Router::new(&tech, &design, RouteConfig::default());
        let naive = router.route_with_accessor(|_, _| None);
        let total = count_drcs(&tech, &design, &naive);
        let sum: usize = drc_breakdown(&tech, &design, &naive).values().sum();
        assert_eq!(total, sum);
    }
}
