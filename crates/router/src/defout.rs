//! Routed-DEF output: the standard hand-off format to downstream signoff
//! tools.
//!
//! Wires are emitted as DEF 5.8 `ROUTED` center-line segments (the wire
//! width is the layer default; over-wide shapes such as min-area patches
//! are emitted as `RECT` deltas), vias as `( x y ) <vianame>` points.

use crate::route::RoutedDesign;
use pao_design::{Design, NetPin};
use pao_drc::Owner;
use pao_geom::Rect;
use pao_tech::Tech;
use std::fmt::Write as _;

/// One `+ ROUTED` piece for a wire rectangle: center-line form when the
/// rect is a default-width wire, `RECT` delta form otherwise.
fn wire_piece(tech: &Tech, layer: pao_tech::LayerId, r: Rect) -> String {
    let lname = &tech.layer(layer).name;
    let w = tech.layer(layer).width;
    let c = r.center();
    if r.height() == w {
        format!(
            "{lname} ( {} {} ) ( {} {} )",
            r.xlo() + w / 2,
            c.y,
            r.xhi() - w / 2,
            c.y
        )
    } else if r.width() == w {
        format!(
            "{lname} ( {} {} ) ( {} {} )",
            c.x,
            r.ylo() + w / 2,
            c.x,
            r.yhi() - w / 2
        )
    } else {
        // Non-default shape: RECT delta form relative to an anchor point.
        format!(
            "{lname} ( {} {} ) RECT ( {} {} {} {} )",
            c.x,
            c.y,
            r.xlo() - c.x,
            r.ylo() - c.y,
            r.xhi() - c.x,
            r.yhi() - c.y
        )
    }
}

/// Serializes the design with the routing result as a routed DEF: the
/// header sections from [`write_def`](pao_design::def::write_def) plus
/// `+ ROUTED` clauses per net.
#[must_use]
pub fn write_routed_def(tech: &Tech, design: &Design, routed: &RoutedDesign) -> String {
    // Reuse the plain writer and splice routing into the NETS section.
    let base = pao_design::def::write_def(design, tech);
    let mut out = String::new();
    for line in base.lines() {
        // Net lines start with " - <name>" inside NETS; we rewrite them.
        if let Some(rest) = line.strip_prefix(" - ") {
            let name = rest.split_whitespace().next().unwrap_or_default();
            if let Some(net_id) = design.net_by_name(name) {
                let net = design.net(net_id);
                // Re-emit terminals.
                let _ = write!(out, " - {name}");
                for pin in &net.pins {
                    match pin {
                        NetPin::Comp { comp, pin } => {
                            let _ = write!(out, " ( {} {} )", design.component(*comp).name, pin);
                        }
                        NetPin::Io { index } => {
                            let _ =
                                write!(out, " ( PIN {} )", design.io_pins()[*index as usize].name);
                        }
                    }
                }
                // Routing pieces for this net.
                let owner = Owner::net(u64::from(net_id.0));
                let mut pieces: Vec<String> = routed
                    .wires
                    .iter()
                    .filter(|&&(o, _, _)| o == owner)
                    .map(|&(_, l, r)| wire_piece(tech, l, r))
                    .collect();
                for &(vid, pos, o) in &routed.vias {
                    if o == owner {
                        let v = tech.via(vid);
                        pieces.push(format!(
                            "{} ( {} {} ) {}",
                            tech.layer(v.bottom_layer).name,
                            pos.x,
                            pos.y,
                            v.name
                        ));
                    }
                }
                for (i, p) in pieces.iter().enumerate() {
                    let kw = if i == 0 {
                        "\n   + ROUTED"
                    } else {
                        "\n     NEW"
                    };
                    let _ = write!(out, "{kw} {p}");
                }
                out.push_str(" ;\n");
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{RouteConfig, Router};
    use pao_core::PinAccessOracle;
    use pao_testgen::{generate, SuiteCase};

    #[test]
    fn routed_def_contains_routing_for_every_net() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let pao = PinAccessOracle::new().analyze(&tech, &design);
        let routed = Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&pao);
        let text = write_routed_def(&tech, &design, &routed);
        assert!(text.contains("+ ROUTED"));
        // Every multi-terminal net carries at least one routed piece (its
        // access vias at minimum).
        let routed_count = text.matches("+ ROUTED").count();
        let multi = design.nets().iter().filter(|n| n.degree() >= 2).count();
        assert!(routed_count >= multi, "{routed_count} < {multi}");
        // Via names appear.
        assert!(text.contains("via1_"));
        // The header still parses as plain DEF (ROUTED clauses are skipped
        // by our reader).
        let reparsed = pao_design::def::parse_def(&text, &tech).expect("parseable");
        assert_eq!(reparsed.components(), design.components());
    }

    #[test]
    fn wire_pieces_use_centerlines_for_default_width() {
        let (tech, _design) = generate(&SuiteCase::small_smoke());
        let m2 = tech.layer_id("metal2").unwrap();
        let w = tech.layer(m2).width;
        // Horizontal default-width wire.
        let piece = wire_piece(&tech, m2, Rect::new(0, -w / 2, 1000, w / 2));
        assert!(piece.contains("( 60 0 ) ( 940 0 )"), "{piece}");
        // A square patch falls back to RECT form.
        let piece = wire_piece(&tech, m2, Rect::new(0, 0, 300, 300));
        assert!(piece.contains("RECT"), "{piece}");
    }
}
