//! The TritonRoute v0.0.6.0-like baseline pin access ("TrRte" in the
//! paper's tables).
//!
//! The baseline reproduces the *behaviour* the paper measures, without
//! copying any code:
//!
//! * candidate points are **on-track × on-track only** (no half-track,
//!   shape-center or enclosure-boundary coordinates), falling back to the
//!   pin-rectangle center when no track crosses the pin;
//! * the up-via is chosen **geometrically** (the via whose bottom
//!   enclosure fits the pin rectangle best), not by trying alternatives
//!   under DRC;
//! * candidates are validated with an **incomplete rule set** — simple
//!   spacing and shorts only, checked by a linear scan over the cell's
//!   shapes (no spatial index, no early termination). Min-step,
//!   merged-metal, spacing-table, EOL and cut-context rules are missed,
//!   so dirty access points survive — the published TritonRoute v0.0.6.0
//!   failure mode the paper measures;
//! * each pin keeps its first candidate independently — there is no
//!   access pattern generation or boundary-conflict awareness.
//!
//! The linear scans also make the baseline *slower* than PAAF while
//! producing *worse* access — the paper's Table II shape.

use pao_core::apgen::AccessPoint;
use pao_core::coord::CoordType;
use pao_core::unique::{extract_unique_instances, UniqueInstance, UniqueInstanceId};
use pao_design::{CompId, Design};
use pao_geom::{Dir, Point, Rect};
use pao_tech::{LayerId, Tech, ViaId};

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Maximum candidates kept per pin.
    pub k: usize,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig { k: 3 }
    }
}

/// Per-unique-instance baseline access data.
#[derive(Debug, Clone)]
pub struct BaselineUnique {
    /// The unique instance.
    pub info: UniqueInstance,
    /// Unvalidated access points per master pin.
    pub pin_aps: Vec<Vec<AccessPoint>>,
}

/// The baseline's analysis result.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Per-unique-instance data.
    pub unique: Vec<BaselineUnique>,
    /// Unique instance of each component.
    pub comp_uniq: Vec<Option<UniqueInstanceId>>,
    /// Total candidate points generated.
    pub total_aps: usize,
    /// Wall time of the generation pass.
    pub elapsed: std::time::Duration,
}

impl BaselineResult {
    /// The baseline's selected access point for `(comp, pin_idx)` — always
    /// the first candidate — in the component's die frame.
    #[must_use]
    pub fn access_point(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Option<AccessPoint> {
        let ui = self.comp_uniq.get(comp.index()).copied().flatten()?;
        let u = &self.unique[ui.index()];
        let mut ap = u.pin_aps.get(pin_idx)?.first()?.clone();
        ap.pos += design.component(comp).location - design.component(u.info.rep).location;
        Some(ap)
    }
}

/// Picks the via whose bottom enclosure fits `pin_rect` best: prefer vias
/// whose enclosure nests inside the pin when centered; among those (or
/// failing that, among all) minimize the overhang area. Purely geometric —
/// exactly the kind of heuristic that misses min-step and context DRCs.
fn best_fit_via(tech: &Tech, layer: LayerId, pin_rect: Rect) -> Option<ViaId> {
    let candidates = tech.up_vias_from(layer);
    candidates.iter().copied().min_by_key(|&vid| {
        let bb = tech.via(vid).bottom_bbox();
        let over_x = (bb.width() - pin_rect.width()).max(0);
        let over_y = (bb.height() - pin_rect.height()).max(0);
        (over_x + over_y, vid)
    })
}

/// The baseline's incomplete validity check: every via shape must be at
/// least the layer's *simple* spacing away from every other-pin shape of
/// the cell, scanned linearly. Returns `true` when the candidate passes.
fn simple_rules_pass(
    tech: &Tech,
    all_rects: &[(LayerId, Rect)],
    own_rects: &[(LayerId, Rect)],
    via: pao_tech::ViaId,
    pos: Point,
) -> bool {
    for (vl, vr) in tech.via(via).placed_shapes(pos) {
        if !tech.layer(vl).is_routing() {
            continue; // cut context rules are not checked — missed rules
        }
        let spacing = tech.layer(vl).spacing;
        for &(l, r) in all_rects {
            if l != vl {
                continue;
            }
            // Shapes of the candidate's own pin merge with the via.
            if own_rects.iter().any(|&(ol, or)| ol == l && or == r) {
                continue;
            }
            if vr.touches(r) {
                return false; // short
            }
            let (dx, dy) = vr.dist_components(r);
            let d2 = i128::from(dx) * i128::from(dx) + i128::from(dy) * i128::from(dy);
            if d2 < i128::from(spacing) * i128::from(spacing) {
                return false;
            }
        }
    }
    true
}

/// Runs the baseline pin access analysis.
#[must_use]
pub fn baseline_pin_access(tech: &Tech, design: &Design, cfg: &BaselineConfig) -> BaselineResult {
    let t0 = std::time::Instant::now();
    let infos = extract_unique_instances(tech, design);
    let mut comp_uniq: Vec<Option<UniqueInstanceId>> = vec![None; design.components().len()];
    for info in &infos {
        for &m in &info.members {
            comp_uniq[m.index()] = Some(info.id);
        }
    }
    let mut unique = Vec::with_capacity(infos.len());
    let mut total_aps = 0usize;
    for info in infos {
        // An unknown master yields an empty (no-access) entry so `unique`
        // stays index-aligned with `comp_uniq`, instead of aborting.
        let Some(master) = tech.macro_by_name(&info.master) else {
            unique.push(BaselineUnique {
                info,
                pin_aps: Vec::new(),
            });
            continue;
        };
        let shapes = design.placed_pin_shapes(tech, info.rep);
        // The "era-faithful" linear context scan: for every candidate the
        // baseline sweeps all cell shapes once (no spatial index).
        let all_rects: Vec<(LayerId, Rect)> = shapes.iter().map(|&(_, l, r)| (l, r)).collect();
        let mut pin_aps: Vec<Vec<AccessPoint>> = vec![Vec::new(); master.pins.len()];
        for (pin_idx, pin) in master.pins.iter().enumerate() {
            if pin.use_.is_supply() {
                continue;
            }
            let rects: Vec<(LayerId, Rect)> = shapes
                .iter()
                .filter(|&&(pi, _, _)| pi == pin_idx)
                .map(|&(_, l, r)| (l, r))
                .collect();
            if rects.is_empty() {
                continue;
            }
            let mut aps = Vec::new();
            for &(layer, rect) in &rects {
                if !tech.layer(layer).is_routing() {
                    continue;
                }
                let via = best_fit_via(tech, layer, rect);
                let pref = tech.layer(layer).dir;
                // On-track candidates only.
                let (ys, xs) = on_track_coords(tech, design, layer, rect, pref);
                let mut candidates: Vec<(Point, CoordType, CoordType)> = Vec::new();
                for &y in &ys {
                    for &x in &xs {
                        candidates.push((Point::new(x, y), CoordType::OnTrack, CoordType::OnTrack));
                    }
                }
                if candidates.is_empty() {
                    // v0.0.6.0-style fallback: the rectangle center.
                    candidates.push((
                        rect.center(),
                        CoordType::ShapeCenter,
                        CoordType::ShapeCenter,
                    ));
                }
                for (pos, t0ty, t1ty) in candidates {
                    if aps.len() >= cfg.k {
                        break;
                    }
                    // Partial validation, era-faithful: simple spacing and
                    // shorts against every other-pin shape of the cell,
                    // found by a full linear scan (no spatial index). The
                    // rules this misses (min-step, merged metal, spacing
                    // tables, EOL, cut context) are exactly where the
                    // dirty APs come from.
                    let clean = match via {
                        None => true,
                        Some(v) => simple_rules_pass(tech, &all_rects, &rects, v, pos),
                    };
                    if !clean {
                        continue;
                    }
                    aps.push(AccessPoint {
                        pos,
                        layer,
                        pref_type: t0ty,
                        nonpref_type: t1ty,
                        vias: via.into_iter().collect(),
                        planar: Vec::new(),
                    });
                }
            }
            total_aps += aps.len();
            pin_aps[pin_idx] = aps;
        }
        unique.push(BaselineUnique { info, pin_aps });
    }
    BaselineResult {
        unique,
        comp_uniq,
        total_aps,
        elapsed: t0.elapsed(),
    }
}

/// On-track candidate coordinates: preferred-direction tracks of the pin's
/// layer × the upper layer's perpendicular tracks (both restricted to the
/// pin rectangle).
fn on_track_coords(
    tech: &Tech,
    design: &Design,
    layer: LayerId,
    rect: Rect,
    pref: Dir,
) -> (Vec<i64>, Vec<i64>) {
    let own: Vec<i64> = design
        .track_patterns_for(layer, pref)
        .iter()
        .flat_map(|p| {
            let (lo, hi) = match pref {
                Dir::Horizontal => (rect.ylo(), rect.yhi()),
                Dir::Vertical => (rect.xlo(), rect.xhi()),
            };
            p.coords_in(lo, hi)
        })
        .collect();
    let cross_dir = pref.perp();
    let upper = tech.routing_layer_above(layer);
    let cross: Vec<i64> = upper
        .map(|up| {
            design
                .track_patterns_for(up, cross_dir)
                .iter()
                .flat_map(|p| {
                    let (lo, hi) = match cross_dir {
                        Dir::Horizontal => (rect.ylo(), rect.yhi()),
                        Dir::Vertical => (rect.xlo(), rect.xhi()),
                    };
                    p.coords_in(lo, hi)
                })
                .collect()
        })
        .unwrap_or_default();
    // Map back to (ys, xs) regardless of the layer's direction.
    match pref {
        Dir::Horizontal => {
            let xs = if cross.is_empty() {
                vec![rect.center().x]
            } else {
                cross
            };
            (own, xs)
        }
        Dir::Vertical => {
            let ys = if cross.is_empty() {
                vec![rect.center().y]
            } else {
                cross
            };
            (ys, own)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_core::oracle::count_failed_pins_with;
    use pao_core::unique::{build_instance_context, local_pin_owner};
    use pao_drc::DrcEngine;
    use pao_testgen::{generate, SuiteCase};

    fn world() -> (Tech, Design) {
        generate(&SuiteCase::small_smoke())
    }

    #[test]
    fn baseline_generates_candidates_for_all_pins() {
        let (tech, design) = world();
        let r = baseline_pin_access(&tech, &design, &BaselineConfig::default());
        assert!(!r.unique.is_empty());
        assert!(r.total_aps > 0);
        for u in &r.unique {
            let master = tech.macro_by_name(&u.info.master).unwrap();
            for (pi, pin) in master.pins.iter().enumerate() {
                if pin.use_.is_supply() {
                    continue;
                }
                assert!(!u.pin_aps[pi].is_empty(), "{} {}", u.info.master, pin.name);
            }
        }
    }

    #[test]
    fn baseline_only_on_track_or_center() {
        let (tech, design) = world();
        let r = baseline_pin_access(&tech, &design, &BaselineConfig::default());
        for u in &r.unique {
            for aps in &u.pin_aps {
                for ap in aps {
                    assert!(
                        (ap.pref_type == CoordType::OnTrack
                            && ap.nonpref_type == CoordType::OnTrack)
                            || ap.pref_type == CoordType::ShapeCenter,
                        "{ap:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn baseline_has_dirty_aps_where_paaf_has_none() {
        let (tech, design) = world();
        let engine = DrcEngine::new(&tech);
        let r = baseline_pin_access(&tech, &design, &BaselineConfig::default());
        let mut dirty = 0usize;
        for u in &r.unique {
            let ctx = build_instance_context(&tech, &design, u.info.rep);
            for (pi, aps) in u.pin_aps.iter().enumerate() {
                for ap in aps {
                    if let Some(v) = ap.primary_via() {
                        if !engine
                            .check_via_placement(tech.via(v), ap.pos, local_pin_owner(pi), &ctx)
                            .is_empty()
                        {
                            dirty += 1;
                        }
                    }
                }
            }
        }
        assert!(dirty > 0, "the unvalidated baseline must produce dirty APs");
    }

    #[test]
    fn baseline_fails_pins() {
        let (tech, design) = world();
        let r = baseline_pin_access(&tech, &design, &BaselineConfig::default());
        let (total, failed) =
            count_failed_pins_with(&tech, &design, |c, p| r.access_point(&design, c, p));
        assert_eq!(total, design.connected_pin_count());
        assert!(
            failed > 0,
            "baseline should fail some pins on this workload"
        );
    }
}
