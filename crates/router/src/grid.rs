//! The routing track grid.

use pao_design::Design;
use pao_geom::{Dbu, Dir};
use pao_tech::{LayerId, Tech};

/// A 3-D track grid: the cross product of the die's horizontal track
/// coordinates (`ys`), vertical track coordinates (`xs`) and a contiguous
/// range of routing layers.
///
/// Node `(layer, xi, yi)` sits at `(xs[xi], ys[yi])` on `layers[layer]`.
#[derive(Debug, Clone)]
pub struct RouteGrid {
    /// Sorted unique x coordinates (vertical tracks).
    pub xs: Vec<Dbu>,
    /// Sorted unique y coordinates (horizontal tracks).
    pub ys: Vec<Dbu>,
    /// The routing layers used, bottom-up.
    pub layers: Vec<LayerId>,
    /// Preferred direction of each grid layer (parallel to `layers`).
    pub dirs: Vec<Dir>,
}

/// A node in the grid (indices, not coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridNode {
    /// Index into [`RouteGrid::layers`].
    pub layer: u16,
    /// Index into [`RouteGrid::xs`].
    pub xi: u32,
    /// Index into [`RouteGrid::ys`].
    pub yi: u32,
}

impl RouteGrid {
    /// Builds the grid from the design's track patterns, restricted to
    /// routing layers `lo..=hi` of the technology stack (e.g. metal2 to
    /// metal5 for standard-cell routing above the pin layer).
    ///
    /// # Panics
    ///
    /// Panics when no track coordinates exist in the range.
    #[must_use]
    pub fn from_design(tech: &Tech, design: &Design, lo: LayerId, hi: LayerId) -> RouteGrid {
        let layers: Vec<LayerId> = tech
            .routing_layers()
            .into_iter()
            .filter(|&l| l >= lo && l <= hi)
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &l in &layers {
            let dir = tech.layer(l).dir;
            for p in design.track_patterns_for(l, dir) {
                match dir {
                    Dir::Vertical => xs.extend(p.coords()),
                    Dir::Horizontal => ys.extend(p.coords()),
                }
            }
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        assert!(
            !xs.is_empty() && !ys.is_empty(),
            "grid needs tracks in both directions"
        );
        let dirs = layers.iter().map(|&l| tech.layer(l).dir).collect();
        RouteGrid {
            xs,
            ys,
            layers,
            dirs,
        }
    }

    /// `true` when grid layer `layer_index` routes horizontally.
    #[must_use]
    pub fn is_horizontal(&self, layer_index: u16) -> bool {
        self.dirs[layer_index as usize] == Dir::Horizontal
    }

    /// The die position of a node.
    #[must_use]
    pub fn pos(&self, n: GridNode) -> pao_geom::Point {
        pao_geom::Point::new(self.xs[n.xi as usize], self.ys[n.yi as usize])
    }

    /// The technology layer of a node.
    #[must_use]
    pub fn layer_of(&self, n: GridNode) -> LayerId {
        self.layers[n.layer as usize]
    }

    /// Index of the grid coordinate nearest to `v` in a sorted axis.
    fn nearest(axis: &[Dbu], v: Dbu) -> u32 {
        match axis.binary_search(&v) {
            Ok(i) => i as u32,
            Err(0) => 0,
            Err(i) if i == axis.len() => (axis.len() - 1) as u32,
            Err(i) => {
                if v - axis[i - 1] <= axis[i] - v {
                    (i - 1) as u32
                } else {
                    i as u32
                }
            }
        }
    }

    /// The grid node nearest to `(pos, layer)`; `None` when the layer is
    /// not part of the grid.
    #[must_use]
    pub fn snap(&self, layer: LayerId, pos: pao_geom::Point) -> Option<GridNode> {
        let li = self.layers.iter().position(|&l| l == layer)?;
        Some(GridNode {
            layer: li as u16,
            xi: Self::nearest(&self.xs, pos.x),
            yi: Self::nearest(&self.ys, pos.y),
        })
    }

    /// Manhattan-plus-layer distance between nodes — the admissible A*
    /// heuristic (`via_cost` per layer hop).
    #[must_use]
    pub fn heuristic(&self, a: GridNode, b: GridNode, via_cost: i64) -> i64 {
        let pa = self.pos(a);
        let pb = self.pos(b);
        pa.manhattan(pb) + i64::from(a.layer.abs_diff(b.layer)) * via_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::TrackPattern;
    use pao_geom::{Point, Rect};
    use pao_tech::Layer;

    fn world() -> (Tech, Design) {
        let mut t = Tech::new(1000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 70));
        t.add_layer(Layer::cut("V1", 70, 80));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        t.add_layer(Layer::cut("V2", 70, 80));
        t.add_layer(Layer::routing("M3", Dir::Horizontal, 300, 60, 70));
        let mut d = Design::new("g", Rect::new(0, 0, 2000, 2000));
        d.tracks.push(TrackPattern::new(
            Dir::Vertical,
            100,
            200,
            10,
            vec![LayerId(2)],
        ));
        d.tracks.push(TrackPattern::new(
            Dir::Horizontal,
            150,
            300,
            6,
            vec![LayerId(4)],
        ));
        (t, d)
    }

    #[test]
    fn grid_collects_coords() {
        let (t, d) = world();
        let g = RouteGrid::from_design(&t, &d, LayerId(2), LayerId(4));
        assert_eq!(g.layers, vec![LayerId(2), LayerId(4)]);
        assert_eq!(g.xs.len(), 10);
        assert_eq!(g.ys.len(), 6);
    }

    #[test]
    fn snap_picks_nearest() {
        let (t, d) = world();
        let g = RouteGrid::from_design(&t, &d, LayerId(2), LayerId(4));
        let n = g.snap(LayerId(2), Point::new(210, 160)).unwrap();
        assert_eq!(g.pos(n), Point::new(300, 150));
        let n = g.snap(LayerId(2), Point::new(-50, 5000)).unwrap();
        assert_eq!(g.pos(n), Point::new(100, 1650));
        assert!(g.snap(LayerId(0), Point::ORIGIN).is_none());
    }

    #[test]
    fn heuristic_is_manhattan_plus_vias() {
        let (t, d) = world();
        let g = RouteGrid::from_design(&t, &d, LayerId(2), LayerId(4));
        let a = g.snap(LayerId(2), Point::new(100, 150)).unwrap();
        let b = g.snap(LayerId(4), Point::new(500, 450)).unwrap();
        assert_eq!(g.heuristic(a, b, 1000), 400 + 300 + 1000);
        assert_eq!(g.heuristic(a, a, 1000), 0);
    }
}

#[cfg(test)]
mod snap_property_tests {
    use super::*;
    use pao_design::TrackPattern;
    use pao_geom::{Point, Rect};
    use pao_tech::Layer;

    /// Snap always returns the node minimizing Manhattan distance on the
    /// snapped layer (brute-force cross-check on a small grid).
    #[test]
    fn snap_is_optimal() {
        let mut t = Tech::new(1000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 70));
        t.add_layer(Layer::cut("V1", 70, 80));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 170, 60, 70));
        let mut d = Design::new("g", Rect::new(0, 0, 3000, 3000));
        d.tracks.push(TrackPattern::new(
            Dir::Vertical,
            85,
            170,
            17,
            vec![LayerId(2)],
        ));
        d.tracks.push(TrackPattern::new(
            Dir::Horizontal,
            100,
            200,
            14,
            vec![LayerId(0)],
        ));
        let g = RouteGrid::from_design(&t, &d, LayerId(0), LayerId(2));
        // Deterministic pseudo-random probes via an LCG.
        let mut state: u64 = 0xDEAD_BEEF;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 4000) as i64 - 500
        };
        for _ in 0..200 {
            let p = Point::new(rnd(), rnd());
            let n = g.snap(LayerId(2), p).expect("layer in grid");
            let got = g.pos(n).manhattan(p);
            let best =
                g.xs.iter()
                    .flat_map(|&x| g.ys.iter().map(move |&y| Point::new(x, y)))
                    .map(|q| q.manhattan(p))
                    .min()
                    .expect("grid nonempty");
            // Nearest-per-axis equals the global Manhattan optimum on a
            // product grid.
            assert_eq!(got, best, "probe {p}");
        }
    }
}
