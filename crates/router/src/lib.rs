#![warn(missing_docs)]

//! Detailed-routing scaffolding and the baseline pin access used by the
//! paper's experiments.
//!
//! Three pieces:
//!
//! * [`baseline`] — a faithful caricature of the TritonRoute v0.0.6.0 pin
//!   access the paper compares against: on-track-only candidate points,
//!   geometric via choice, **no DRC validation**, per-pin greedy selection
//!   (no patterns). Its access points are audited with the same engine as
//!   PAAF's, reproducing the "dirty APs" and "failed pins" columns of
//!   Tables II/III.
//! * [`grid`] + [`astar`] + [`route`] — a track-graph detailed router: net
//!   decomposition (Prim MST over terminals), A* path search on the track
//!   grid with wrong-way/via penalties and soft occupancy costs, and
//!   shape commitment (wires + vias) into a global shape set.
//! * [`score`] — post-route DRC scoring (Experiment 3's `#DRCs`).
//!
//! # Examples
//!
//! ```
//! use pao_router::route::{RouteConfig, Router};
//! use pao_core::PinAccessOracle;
//! use pao_testgen::{generate, SuiteCase};
//!
//! let (tech, design) = generate(&SuiteCase::small_smoke());
//! let access = PinAccessOracle::new().analyze(&tech, &design);
//! let routed = Router::new(&tech, &design, RouteConfig::default())
//!     .route_with_pao(&access);
//! let drcs = pao_router::score::count_drcs(&tech, &design, &routed);
//! assert!(routed.routed_nets > 0);
//! # let _ = drcs;
//! ```

pub mod astar;
pub mod baseline;
pub mod defout;
pub mod grid;
pub mod route;
pub mod score;

pub use baseline::{baseline_pin_access, BaselineConfig, BaselineResult};
pub use grid::RouteGrid;
pub use route::{RouteConfig, RoutedDesign, Router};
