//! A* path search on the track grid.

use crate::grid::{GridNode, RouteGrid};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Search parameters.
#[derive(Debug, Clone, Copy)]
pub struct AstarConfig {
    /// Cost per DBU of travel in the layer's preferred direction.
    pub unit_cost: i64,
    /// Multiplier for wrong-way (non-preferred) travel.
    pub wrong_way_mult: i64,
    /// Cost of one via (layer hop).
    pub via_cost: i64,
    /// Node-expansion budget; `None` is returned when exhausted.
    pub max_expansions: usize,
    /// Heuristic weight in percent (100 = admissible A*; 125 trades a
    /// little path optimality for much faster convergence in congestion).
    pub heuristic_pct: i64,
}

impl Default for AstarConfig {
    fn default() -> AstarConfig {
        AstarConfig {
            unit_cost: 1,
            wrong_way_mult: 8,
            via_cost: 800,
            max_expansions: 100_000,
            heuristic_pct: 125,
        }
    }
}

/// Finds a cheapest path from `src` to `dst` on the grid.
///
/// `extra_cost(from, to)` lets the caller price congestion/occupancy per
/// step (return 0 for free edges). Returns the node sequence including
/// both endpoints, or `None` when unreachable within the expansion budget.
#[must_use]
pub fn astar(
    grid: &RouteGrid,
    src: GridNode,
    dst: GridNode,
    cfg: &AstarConfig,
    mut extra_cost: impl FnMut(GridNode, GridNode) -> i64,
) -> Option<Vec<GridNode>> {
    let mut open: BinaryHeap<Reverse<(i64, GridNode)>> = BinaryHeap::new();
    let mut best: HashMap<GridNode, (i64, GridNode)> = HashMap::new();
    best.insert(src, (0, src));
    let h = |n: GridNode| grid.heuristic(n, dst, cfg.via_cost) * cfg.heuristic_pct / 100;
    open.push(Reverse((h(src), src)));
    let mut expansions = 0usize;

    while let Some(Reverse((_, node))) = open.pop() {
        if node == dst {
            // Trace back.
            let mut path = vec![node];
            let mut cur = node;
            while cur != src {
                cur = best[&cur].1;
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        expansions += 1;
        if expansions > cfg.max_expansions {
            return None;
        }
        let g = best[&node].0;
        let horizontal = grid.is_horizontal(node.layer);
        let (xi, yi, li) = (node.xi as usize, node.yi as usize, node.layer as usize);
        let mut neighbors: Vec<(GridNode, i64)> = Vec::with_capacity(6);
        if xi + 1 < grid.xs.len() {
            let step = (grid.xs[xi + 1] - grid.xs[xi]) * cfg.unit_cost;
            let mult = if horizontal { 1 } else { cfg.wrong_way_mult };
            neighbors.push((
                GridNode {
                    xi: node.xi + 1,
                    ..node
                },
                step * mult,
            ));
        }
        if xi > 0 {
            let step = (grid.xs[xi] - grid.xs[xi - 1]) * cfg.unit_cost;
            let mult = if horizontal { 1 } else { cfg.wrong_way_mult };
            neighbors.push((
                GridNode {
                    xi: node.xi - 1,
                    ..node
                },
                step * mult,
            ));
        }
        if yi + 1 < grid.ys.len() {
            let step = (grid.ys[yi + 1] - grid.ys[yi]) * cfg.unit_cost;
            let mult = if horizontal { cfg.wrong_way_mult } else { 1 };
            neighbors.push((
                GridNode {
                    yi: node.yi + 1,
                    ..node
                },
                step * mult,
            ));
        }
        if yi > 0 {
            let step = (grid.ys[yi] - grid.ys[yi - 1]) * cfg.unit_cost;
            let mult = if horizontal { cfg.wrong_way_mult } else { 1 };
            neighbors.push((
                GridNode {
                    yi: node.yi - 1,
                    ..node
                },
                step * mult,
            ));
        }
        if li + 1 < grid.layers.len() {
            neighbors.push((
                GridNode {
                    layer: node.layer + 1,
                    ..node
                },
                cfg.via_cost,
            ));
        }
        if li > 0 {
            neighbors.push((
                GridNode {
                    layer: node.layer - 1,
                    ..node
                },
                cfg.via_cost,
            ));
        }
        for (next, step) in neighbors {
            let extra = extra_cost(node, next);
            let ng = g + step + extra;
            if best.get(&next).is_none_or(|&(old, _)| ng < old) {
                best.insert(next, (ng, node));
                open.push(Reverse((ng + h(next), next)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::{Dbu, Dir};
    use pao_tech::LayerId;

    fn grid3() -> RouteGrid {
        RouteGrid {
            xs: (0..20).map(|i| i * 100).collect::<Vec<Dbu>>(),
            ys: (0..20).map(|i| i * 100).collect(),
            layers: vec![LayerId(2), LayerId(4), LayerId(6)],
            // metal2 vertical, metal3 horizontal, metal4 vertical.
            dirs: vec![Dir::Vertical, Dir::Horizontal, Dir::Vertical],
        }
    }

    fn node(layer: u16, xi: u32, yi: u32) -> GridNode {
        GridNode { layer, xi, yi }
    }

    #[test]
    fn straight_line_on_preferred_layer() {
        let g = grid3();
        let cfg = AstarConfig::default();
        // Vertical layer 0: straight y run.
        let path = astar(&g, node(0, 5, 0), node(0, 5, 10), &cfg, |_, _| 0).unwrap();
        assert_eq!(path.len(), 11);
        assert!(path.iter().all(|n| n.xi == 5 && n.layer == 0));
    }

    #[test]
    fn l_route_uses_two_layers() {
        let g = grid3();
        let cfg = AstarConfig::default();
        let path = astar(&g, node(0, 2, 2), node(0, 8, 12), &cfg, |_, _| 0).unwrap();
        assert_eq!(*path.first().unwrap(), node(0, 2, 2));
        assert_eq!(*path.last().unwrap(), node(0, 8, 12));
        // The x travel should occur on the horizontal layer (index 1):
        // wrong-way cost (×4 over 600 dbu = 2400) exceeds 2 vias (1600).
        assert!(path.iter().any(|n| n.layer == 1), "{path:?}");
    }

    #[test]
    fn obstacle_cost_forces_detour() {
        let g = grid3();
        let cfg = AstarConfig::default();
        // Block the direct column x=5 between y=3..7 on layer 0.
        let blocked = |_: GridNode, to: GridNode| {
            if to.layer == 0 && to.xi == 5 && (3..=7).contains(&to.yi) {
                1_000_000
            } else {
                0
            }
        };
        let path = astar(&g, node(0, 5, 0), node(0, 5, 10), &cfg, blocked).unwrap();
        assert!(path
            .iter()
            .all(|n| !(n.layer == 0 && n.xi == 5 && (3..=7).contains(&n.yi))));
    }

    #[test]
    fn unreachable_when_budget_exhausted() {
        let g = grid3();
        let cfg = AstarConfig {
            max_expansions: 3,
            ..AstarConfig::default()
        };
        assert!(astar(&g, node(0, 0, 0), node(2, 19, 19), &cfg, |_, _| 0).is_none());
    }

    #[test]
    fn src_equals_dst() {
        let g = grid3();
        let cfg = AstarConfig::default();
        let path = astar(&g, node(1, 3, 3), node(1, 3, 3), &cfg, |_, _| 0).unwrap();
        assert_eq!(path, vec![node(1, 3, 3)]);
    }
}
