//! A minimal SVG document builder.

use pao_geom::{Point, Rect};
use std::fmt::Write as _;

/// An SVG document over a layout-space viewport.
///
/// Layout coordinates are y-up; the builder flips them so the rendered
/// image matches the usual die orientation. One layout DBU maps to one SVG
/// unit (scale in the viewer).
#[derive(Debug)]
pub struct SvgDoc {
    window: Rect,
    body: String,
}

impl SvgDoc {
    /// Creates a document showing `window` (layout coordinates).
    #[must_use]
    pub fn new(window: Rect) -> SvgDoc {
        SvgDoc {
            window,
            body: String::new(),
        }
    }

    fn flip_y(&self, y: i64) -> i64 {
        // Map layout y (y-up, window-relative) into viewBox y (y-down,
        // starting at 0): the window's top edge becomes 0.
        self.window.yhi() - y
    }

    /// Adds a filled rectangle; `stroke` adds an outline when given.
    pub fn rect(&mut self, r: Rect, fill: &str, opacity: f64, stroke: Option<&str>) {
        let y = self.flip_y(r.yhi());
        let stroke_attr = stroke.map_or(String::new(), |s| {
            format!(
                r#" stroke="{s}" stroke-width="{}""#,
                (r.min_side() / 20).max(2)
            )
        });
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}" fill-opacity="{:.2}"{}/>"#,
            r.xlo(),
            y,
            r.width().max(1),
            r.height().max(1),
            fill,
            opacity,
            stroke_attr
        );
    }

    /// Adds a dashed outline rectangle (the DRC marker style of Fig. 8).
    pub fn marker(&mut self, r: Rect, color: &str, dash: i64) {
        let y = self.flip_y(r.yhi());
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="none" stroke="{color}" stroke-width="{}" stroke-dasharray="{dash},{dash}"/>"#,
            r.xlo(),
            y,
            r.width().max(1),
            r.height().max(1),
            dash.max(2),
        );
    }

    /// Adds a line.
    pub fn line(&mut self, a: Point, b: Point, color: &str, width: i64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{color}" stroke-width="{width}"/>"#,
            a.x,
            self.flip_y(a.y),
            b.x,
            self.flip_y(b.y),
        );
    }

    /// Adds a circle marker (access points).
    pub fn circle(&mut self, c: Point, r: i64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{r}" fill="{fill}"/>"#,
            c.x,
            self.flip_y(c.y),
        );
    }

    /// Adds a text label.
    pub fn text(&mut self, at: Point, size: i64, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{}" y="{}" font-size="{size}" font-family="monospace">{escaped}</text>"#,
            at.x,
            self.flip_y(at.y),
        );
    }

    /// Serializes the document.
    #[must_use]
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{} {} {} {}\" width=\"900\">\n<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#ffffff\"/>\n{}</svg>\n",
            self.window.xlo(),
            0,
            self.window.width(),
            self.window.height(),
            self.window.xlo(),
            0,
            self.window.width(),
            self.window.height(),
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(Rect::new(0, 0, 100, 100));
        doc.rect(Rect::new(10, 10, 30, 20), "#ff0000", 1.0, None);
        doc.marker(Rect::new(0, 0, 50, 50), "#aa0000", 4);
        doc.line(Point::new(0, 0), Point::new(100, 100), "#000", 1);
        doc.circle(Point::new(50, 50), 3, "#00ff00");
        doc.text(Point::new(5, 95), 10, "pin <A>");
        let s = doc.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<rect").count(), 3); // background + fill + marker
        assert!(s.contains("stroke-dasharray"));
        assert!(s.contains("pin &lt;A&gt;"));
    }

    #[test]
    fn y_axis_flips() {
        let mut doc = SvgDoc::new(Rect::new(0, 0, 100, 100));
        // A rect at the layout top must render near SVG y=0.
        doc.rect(Rect::new(0, 90, 10, 100), "#000", 1.0, None);
        let s = doc.finish();
        assert!(
            s.contains(r#"<rect x="0" y="0" width="10" height="10""#),
            "{s}"
        );
    }
}
// (regression test for windows not anchored at y = 0)
#[cfg(test)]
mod flip_tests {
    use super::*;

    #[test]
    fn high_window_content_lands_in_viewbox() {
        let win = Rect::new(9_000, 80_000, 17_000, 88_000);
        let mut doc = SvgDoc::new(win);
        // A rect at the window's top-left corner renders at viewBox (x, 0).
        doc.rect(Rect::new(9_000, 87_000, 10_000, 88_000), "#000", 1.0, None);
        let s = doc.finish();
        assert!(
            s.contains(r#"<rect x="9000" y="0" width="1000" height="1000""#),
            "{s}"
        );
        // And one at the bottom edge renders at y = h - height.
        let mut doc = SvgDoc::new(win);
        doc.rect(Rect::new(9_000, 80_000, 10_000, 81_000), "#000", 1.0, None);
        assert!(doc.finish().contains(r#"y="7000""#));
    }
}
