//! Layout rendering.

use crate::svg::SvgDoc;
use pao_core::apgen::AccessPoint;
use pao_core::oracle::PaoResult;
use pao_design::{CompId, Design};
use pao_drc::{DrcViolation, ShapeSet};
use pao_geom::{Point, Rect};
use pao_tech::{LayerKind, Tech};

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Draw routing tracks as hairlines.
    pub tracks: bool,
    /// Draw cell outlines.
    pub cell_outlines: bool,
    /// Highest layer to draw (inclusive index into the tech stack);
    /// `None` draws everything.
    pub max_layer: Option<u32>,
}

impl Default for RenderOptions {
    fn default() -> RenderOptions {
        RenderOptions {
            tracks: false,
            cell_outlines: true,
            max_layer: None,
        }
    }
}

/// Color for routing layer `i` (cycled palette, metal1 first).
fn layer_color(i: usize) -> &'static str {
    const PALETTE: [&str; 9] = [
        "#4c72b0", "#dd8452", "#55a868", "#c44e52", "#8172b3", "#937860", "#da8bc3", "#8c8c8c",
        "#ccb974",
    ];
    PALETTE[i % PALETTE.len()]
}

/// Renders a window of the design: cell outlines, pin/obs shapes, any
/// routed shapes, access-point markers and DRC markers (Fig. 8 style).
#[must_use]
pub fn render_window(
    tech: &Tech,
    design: &Design,
    shapes: Option<&ShapeSet>,
    aps: &[(Point, bool)],
    violations: &[DrcViolation],
    window: Rect,
    opts: &RenderOptions,
) -> String {
    let mut doc = SvgDoc::new(window);
    if opts.tracks {
        for t in &design.tracks {
            for c in t.coords() {
                match t.dir {
                    pao_geom::Dir::Horizontal => {
                        if window.y_span().contains(c) {
                            doc.line(
                                Point::new(window.xlo(), c),
                                Point::new(window.xhi(), c),
                                "#dddddd",
                                2,
                            );
                        }
                    }
                    pao_geom::Dir::Vertical => {
                        if window.x_span().contains(c) {
                            doc.line(
                                Point::new(c, window.ylo()),
                                Point::new(c, window.yhi()),
                                "#dddddd",
                                2,
                            );
                        }
                    }
                }
            }
        }
    }
    if opts.cell_outlines {
        for (ci, comp) in design.components().iter().enumerate() {
            if comp.master_in(tech).is_none() {
                continue;
            }
            let bbox = comp.bbox(tech);
            if bbox.touches(window) {
                doc.rect(bbox, "none", 0.0, Some("#bbbbbb"));
                let _ = ci;
            }
        }
    }
    match shapes {
        Some(set) => {
            for (li, layer) in tech.layers().iter().enumerate() {
                if opts.max_layer.is_some_and(|m| li as u32 > m) {
                    continue;
                }
                let opacity = if layer.kind == LayerKind::Cut {
                    0.95
                } else {
                    0.55
                };
                for (r, _) in set.query(pao_tech::LayerId(li as u32), window) {
                    doc.rect(r, layer_color(li / 2), opacity, None);
                }
            }
        }
        None => {
            // Static view: pin and obstruction shapes from the masters.
            for (ci, comp) in design.components().iter().enumerate() {
                let id = CompId(ci as u32);
                if comp.master_in(tech).is_none() || !comp.bbox(tech).touches(window) {
                    continue;
                }
                for (_, layer, r) in design.placed_pin_shapes(tech, id) {
                    if r.touches(window) {
                        doc.rect(r, layer_color(layer.index() / 2), 0.55, None);
                    }
                }
                for (layer, r) in design.placed_obs_shapes(tech, id) {
                    if r.touches(window) {
                        doc.rect(r, layer_color(layer.index() / 2), 0.25, None);
                    }
                }
            }
        }
    }
    // Access points: green = clean, orange = dirty.
    let ap_r = (window.width() / 150).max(4);
    for &(pos, clean) in aps {
        if window.contains(pos) {
            doc.circle(pos, ap_r, if clean { "#2ca02c" } else { "#ff7f0e" });
        }
    }
    // DRC markers: dashed red boxes (paper Fig. 8).
    for v in violations {
        if v.marker.touches(window) {
            doc.marker(
                v.marker.expanded(window.width() / 300),
                "#d62728",
                (window.width() / 200).max(4),
            );
        }
    }
    doc.finish()
}

/// Renders one placed instance with its selected access points
/// (Fig. 9 style: standard-cell pin accesses, off-track points visible).
#[must_use]
pub fn render_cell_access(
    tech: &Tech,
    design: &Design,
    result: &PaoResult,
    comp: CompId,
) -> String {
    let bbox = design.component(comp).bbox(tech);
    let window = bbox.expanded(bbox.height() / 6);
    let mut aps: Vec<(Point, bool)> = Vec::new();
    if let Some(master) = design.component(comp).master_in(tech) {
        for (pi, _) in master.pins.iter().enumerate() {
            if let Some(ap) = result.access_point(design, comp, pi) {
                aps.push((ap.pos, true));
            }
        }
    }
    render_window(
        tech,
        design,
        None,
        &aps,
        &[],
        window,
        &RenderOptions {
            tracks: true,
            ..RenderOptions::default()
        },
    )
}

/// Extracts `(position, is_clean)` markers from a list of access points
/// (all PAAF points are clean by construction; pass dirtiness from an
/// audit for baselines).
#[must_use]
pub fn ap_markers(aps: &[AccessPoint], dirty: &[bool]) -> Vec<(Point, bool)> {
    aps.iter()
        .enumerate()
        .map(|(i, ap)| (ap.pos, !dirty.get(i).copied().unwrap_or(false)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_core::PinAccessOracle;
    use pao_testgen::{generate, SuiteCase};

    #[test]
    fn renders_static_window() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let window = Rect::new(0, 0, 20_000, 8_000);
        let svg = render_window(
            &tech,
            &design,
            None,
            &[],
            &[],
            window,
            &RenderOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.matches("<rect").count() > 10, "shapes drawn");
    }

    #[test]
    fn renders_cell_with_access_points() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let result = PinAccessOracle::new().analyze(&tech, &design);
        let svg = render_cell_access(&tech, &design, &result, CompId(0));
        assert!(svg.contains("<circle"), "access points drawn");
        assert!(svg.contains("<line"), "tracks drawn");
    }

    #[test]
    fn dirty_markers_rendered_in_orange() {
        use pao_core::coord::CoordType;
        let ap = AccessPoint {
            pos: Point::new(500, 500),
            layer: pao_tech::LayerId(0),
            pref_type: CoordType::OnTrack,
            nonpref_type: CoordType::OnTrack,
            vias: vec![],
            planar: vec![],
        };
        let markers = ap_markers(&[ap.clone(), ap], &[true, false]);
        assert!(!markers[0].1);
        assert!(markers[1].1);
    }
}
