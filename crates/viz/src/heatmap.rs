//! Reject-density heatmaps: where on the die access-point candidates die.
//!
//! The decision ledger records a die position on every rejected candidate
//! ([`LedgerEvent::ApReject`](pao_obs::LedgerEvent::ApReject)); binning
//! those positions into a per-layer grid shows the access-poor hotspots —
//! blocked channels, congested macro edges, rows of unfriendly masters —
//! at a glance. `pao report --heatmap` drives this renderer.

use pao_geom::{Point, Rect};
use std::fmt::Write as _;

/// Per-band pixel height of the rendered grid (SVG units are layout DBU,
/// so bands reuse the window's own height); gap between layer bands.
const BAND_GAP_FRAC: i64 = 12;

/// Renders one grid-binned density band per layer, stacked vertically.
///
/// `layers` supplies `(label, reject positions)` per routing layer in the
/// order they should appear (top band first); positions outside `window`
/// are clamped into the edge cells so nothing is silently dropped. `grid`
/// is the bin count along the longer window axis (the shorter axis scales
/// proportionally, minimum 1). Opacity is shared across bands — the
/// hottest cell anywhere sets the scale — so bands are comparable.
///
/// Output is pure function of the inputs: byte-identical across runs and
/// thread counts whenever the ledger dump feeding it is.
#[must_use]
pub fn render_reject_heatmap(window: Rect, layers: &[(String, Vec<Point>)], grid: usize) -> String {
    let grid = grid.max(1) as i64;
    let (w, h) = (window.width().max(1), window.height().max(1));
    // Bin counts per axis, proportional to the window's aspect ratio.
    let (gx, gy) = if w >= h {
        (grid, ((grid * h) / w).max(1))
    } else {
        (((grid * w) / h).max(1), grid)
    };
    let bands: Vec<(&str, Vec<u64>)> = layers
        .iter()
        .map(|(label, pts)| {
            let mut bins = vec![0u64; (gx * gy) as usize];
            for p in pts {
                let cx = ((p.x - window.xlo()) * gx / w).clamp(0, gx - 1);
                let cy = ((p.y - window.ylo()) * gy / h).clamp(0, gy - 1);
                bins[(cy * gx + cx) as usize] += 1;
            }
            (label.as_str(), bins)
        })
        .collect();
    let hottest = bands
        .iter()
        .flat_map(|(_, b)| b.iter().copied())
        .max()
        .unwrap_or(0)
        .max(1);

    let gap = (h / BAND_GAP_FRAC).max(1);
    let label_h = gap * 2;
    let band_stride = h + label_h + gap;
    let total_h = band_stride * bands.len().max(1) as i64;
    let mut body = String::new();
    let (cw, ch) = (w / gx, h / gy);
    for (bi, (label, bins)) in bands.iter().enumerate() {
        let oy = bi as i64 * band_stride + label_h;
        let total: u64 = bins.iter().sum();
        let _ = writeln!(
            body,
            r#"<text x="0" y="{}" font-size="{label_h}" font-family="monospace">{} — {} rejects</text>"#,
            oy - gap / 2,
            xml_escape(label),
            total,
        );
        let _ = writeln!(
            body,
            r##"<rect x="0" y="{oy}" width="{w}" height="{h}" fill="#ffffff" stroke="#888888" stroke-width="{}"/>"##,
            (gap / 8).max(1),
        );
        for cy in 0..gy {
            for cx in 0..gx {
                let n = bins[(cy * gx + cx) as usize];
                if n == 0 {
                    continue;
                }
                // Layout y is up; band rows render top-down.
                let _ = writeln!(
                    body,
                    r##"<rect x="{}" y="{}" width="{cw}" height="{ch}" fill="#c0392b" fill-opacity="{:.3}"/>"##,
                    cx * cw,
                    oy + (gy - 1 - cy) * ch,
                    n as f64 / hottest as f64,
                );
            }
        }
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w} {total_h}\" width=\"900\">\n{body}</svg>\n"
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cells_and_scale() {
        let window = Rect::new(0, 0, 1000, 500);
        let layers = vec![
            (
                "M1".to_owned(),
                vec![Point::new(10, 10), Point::new(20, 20), Point::new(990, 490)],
            ),
            ("M2".to_owned(), vec![Point::new(500, 250)]),
        ];
        let svg = render_reject_heatmap(window, &layers, 10);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("M1 — 3 rejects"));
        assert!(svg.contains("M2 — 1 rejects"));
        // Two points share the low-left cell → it carries full opacity;
        // singles get half of the hottest (2).
        assert!(svg.contains(r#"fill-opacity="1.000""#), "{svg}");
        assert!(svg.contains(r#"fill-opacity="0.500""#), "{svg}");
    }

    #[test]
    fn out_of_window_points_clamp() {
        let window = Rect::new(0, 0, 100, 100);
        let layers = vec![("M1".to_owned(), vec![Point::new(-50, 500)])];
        let svg = render_reject_heatmap(window, &layers, 4);
        assert!(svg.contains("1 rejects"));
        assert!(svg.contains(r#"fill-opacity="1.000""#));
    }

    #[test]
    fn empty_input_is_valid_svg() {
        let svg = render_reject_heatmap(Rect::new(0, 0, 10, 10), &[], 8);
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn label_escapes_markup() {
        let layers = vec![("<M&1>".to_owned(), vec![])];
        let svg = render_reject_heatmap(Rect::new(0, 0, 10, 10), &layers, 2);
        assert!(svg.contains("&lt;M&amp;1&gt;"));
    }

    #[test]
    fn deterministic_output() {
        let window = Rect::new(0, 0, 300, 300);
        let layers = vec![("M1".to_owned(), vec![Point::new(5, 5), Point::new(250, 20)])];
        assert_eq!(
            render_reject_heatmap(window, &layers, 16),
            render_reject_heatmap(window, &layers, 16)
        );
    }
}
