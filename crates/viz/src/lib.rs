#![warn(missing_docs)]

//! SVG rendering of layouts, pins, access points and DRC markers.
//!
//! Regenerates the paper's qualitative figures: pin access close-ups with
//! DRC markers (Fig. 8) and standard-cell pin access overviews (Fig. 9).
//!
//! ```
//! use pao_viz::svg::SvgDoc;
//! use pao_geom::Rect;
//!
//! let mut doc = SvgDoc::new(Rect::new(0, 0, 1000, 1000));
//! doc.rect(Rect::new(100, 100, 400, 200), "#4c72b0", 0.8, None);
//! let text = doc.finish();
//! assert!(text.starts_with("<svg"));
//! ```

pub mod heatmap;
pub mod layout;
pub mod svg;

pub use heatmap::render_reject_heatmap;
pub use layout::{render_cell_access, render_window, RenderOptions};
pub use svg::SvgDoc;
