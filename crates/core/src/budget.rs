//! Deadline-aware anytime execution: cancellation tokens, per-phase
//! budget allocation, and the stall-watchdog configuration.
//!
//! PAAF is an oracle consulted by a detailed router under a wall-clock
//! budget. This module makes the whole pipeline *anytime*: a
//! [`CancelToken`] (an atomic flag plus an optional monotonic
//! [`Instant`] deadline) is polled by every executor variant between
//! work items, so an expired budget finishes in-flight items, marks the
//! remaining ones skipped, and lets every phase degrade exactly like a
//! quarantined item would (PR 4 semantics) — the oracle always returns a
//! usable partial result, never aborts.
//!
//! All duration and deadline arithmetic in this module (and everywhere
//! in the pipeline) uses the **monotonic** [`Instant`] clock. The
//! wall-clock ISO-8601 formatter in `pao_obs::clock` is for trace/
//! provenance timestamps only and must never feed an elapsed-time or
//! deadline comparison.

use crate::error::Phase;
use crate::stats::PaoStats;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a run (or phase) was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The monotonic deadline expired.
    Deadline,
    /// The watchdog detected a stalled worker and tripped the token.
    Stall,
    /// An explicit caller-side cancellation (e.g. a test, or an embedding
    /// router revoking the query).
    External,
}

impl CancelReason {
    /// Stable lowercase name (used in reports and skip records).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Stall => "stall",
            CancelReason::External => "external",
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One stalled worker observed by the watchdog: the worker made no
/// heartbeat progress on its claimed item for longer than the adaptive
/// threshold, so the phase was cancelled instead of hanging forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallRecord {
    /// Executor phase label (e.g. `"apgen.instance"`).
    pub label: String,
    /// Worker index within the phase's pool.
    pub worker: usize,
    /// Input index of the item the worker was stuck on.
    pub item: usize,
    /// How long the heartbeat had been silent when the watchdog fired.
    pub stalled: Duration,
    /// The threshold in force (a multiple of the observed per-item time,
    /// floored at the configured minimum).
    pub threshold: Duration,
}

impl fmt::Display for StallRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] worker {} stalled on item {} for {:.3}s (threshold {:.3}s)",
            self.label,
            self.worker,
            self.item,
            self.stalled.as_secs_f64(),
            self.threshold.as_secs_f64()
        )
    }
}

/// Work items of one phase skipped by an expired budget (or a tripped
/// watchdog). The items were never started; on resume from a checkpoint
/// they run normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipRecord {
    /// The phase whose items were skipped.
    pub phase: Phase,
    /// How many items were skipped.
    pub items: usize,
    /// Why the phase was cut short.
    pub reason: CancelReason,
}

impl fmt::Display for SkipRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({})", self.phase, self.items, self.reason)
    }
}

/// Everything the deadline/watchdog machinery did to a run: which phases
/// lost items and which workers stalled. Carried in
/// [`PaoStats::deadline`](crate::stats::PaoStats::deadline).
///
/// Skip sets depend on wall-clock timing, so this report is **excluded**
/// from [`PaoStats::counters_eq`] — the thread-count identity contract
/// covers unlimited-budget runs; deadline-partial runs are reconciled via
/// checkpoint resume instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlineReport {
    /// The configured budget (`None` = unlimited).
    pub budget: Option<Duration>,
    /// Per-phase skip tallies, in pipeline order.
    pub skipped: Vec<SkipRecord>,
    /// Stalls detected by the watchdog.
    pub stalls: Vec<StallRecord>,
}

impl DeadlineReport {
    /// `true` when any work was skipped or any stall fired — i.e. the
    /// result is usable but partial.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        !self.skipped.is_empty() || !self.stalls.is_empty()
    }

    /// Total skipped items across all phases.
    #[must_use]
    pub fn skipped_items(&self) -> usize {
        self.skipped.iter().map(|s| s.items).sum()
    }
}

impl fmt::Display for DeadlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget {
            Some(b) => write!(f, "budget {:.3}s", b.as_secs_f64())?,
            None => write!(f, "budget unlimited")?,
        }
        write!(f, ", skipped {}", self.skipped_items())?;
        if !self.skipped.is_empty() {
            let parts: Vec<String> = self.skipped.iter().map(SkipRecord::to_string).collect();
            write!(f, " ({})", parts.join(", "))?;
        }
        write!(f, ", stalls {}", self.stalls.len())
    }
}

/// Shared cancellation state. See [`CancelToken`].
#[derive(Debug)]
struct TokenState {
    cancelled: AtomicBool,
    /// Deterministic cut index for [`CancelToken::cancel_at`]: items with
    /// input index strictly greater than this are skipped even if a
    /// concurrent worker already computed them, which keeps deterministic
    /// cancellations bit-identical across thread counts.
    cut: AtomicUsize,
    deadline: Option<Instant>,
    reason: Mutex<Option<CancelReason>>,
    stalls: Mutex<Vec<StallRecord>>,
}

impl Default for TokenState {
    fn default() -> TokenState {
        TokenState {
            cancelled: AtomicBool::new(false),
            cut: AtomicUsize::new(usize::MAX),
            deadline: None,
            reason: Mutex::new(None),
            stalls: Mutex::new(Vec::new()),
        }
    }
}

/// A cooperative cancellation token: an atomic flag plus an optional
/// monotonic deadline. Cloning is cheap (`Arc`); all clones observe the
/// same cancellation.
///
/// The executor polls [`is_cancelled`](CancelToken::is_cancelled) between
/// items: in-flight items always finish, unstarted items are skipped.
/// With no deadline the poll is a single relaxed atomic load, so the
/// always-on cancellation path costs nothing measurable (the bench gate
/// holds it under 1% end to end).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

impl CancelToken {
    /// A token that never expires on its own (it can still be
    /// [`cancel`](CancelToken::cancel)led explicitly).
    #[must_use]
    pub fn never() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires at the given monotonic instant.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenState {
                deadline: Some(deadline),
                ..TokenState::default()
            }),
        }
    }

    /// A token that expires `budget` from now. A budget too large to
    /// represent degrades to never-expiring.
    #[must_use]
    pub fn after(budget: Duration) -> CancelToken {
        match Instant::now().checked_add(budget) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        }
    }

    /// The absolute deadline, if one is set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` = no deadline; zero when
    /// already expired).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Trips the token. The first recorded reason wins; later calls only
    /// ensure the flag stays set.
    pub fn cancel(&self, reason: CancelReason) {
        let mut slot = self
            .inner
            .reason
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(reason);
        }
        drop(slot);
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Trips the token *at a specific input index*: items with index
    /// `<= index` keep their results, later items are skipped even if a
    /// concurrent worker already computed them. This is what makes a
    /// deterministic cancellation (triggered from inside item `index`)
    /// produce bit-identical output at every thread count.
    pub fn cancel_at(&self, index: usize, reason: CancelReason) {
        self.inner.cut.fetch_min(index, Ordering::SeqCst);
        self.cancel(reason);
    }

    /// The deterministic cut index set by
    /// [`cancel_at`](CancelToken::cancel_at) (`usize::MAX` when the token
    /// was cancelled without one, or not at all).
    #[must_use]
    pub fn cut(&self) -> usize {
        self.inner.cut.load(Ordering::SeqCst)
    }

    /// `true` once the token is tripped — explicitly, or lazily when the
    /// monotonic deadline has passed (the first observer latches the
    /// flag, so later polls are a single atomic load).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancel(CancelReason::Deadline);
                true
            }
            _ => false,
        }
    }

    /// The first cancellation reason, once tripped.
    #[must_use]
    pub fn reason(&self) -> Option<CancelReason> {
        *self
            .inner
            .reason
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a watchdog stall against this token.
    pub fn record_stall(&self, stall: StallRecord) {
        self.inner
            .stalls
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stall);
    }

    /// Drains the recorded stalls (the oracle collects them into
    /// [`DeadlineReport::stalls`] after each phase).
    #[must_use]
    pub fn take_stalls(&self) -> Vec<StallRecord> {
        std::mem::take(
            &mut *self
                .inner
                .stalls
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// Stall-watchdog configuration. The watchdog is a monitor thread that
/// samples per-worker heartbeats every `poll`; a worker that has been
/// inside the *same* item for more than
/// `max(min_stall, multiple × observed mean item time)` is declared
/// stalled: the stall is recorded, `watchdog.stalls` is bumped, and the
/// phase's cancel token is tripped with [`CancelReason::Stall`] so every
/// healthy worker drains cooperatively. The stalled item itself must
/// eventually return (cooperative model — the watchdog converts a hung
/// *run* into a degraded one, it cannot kill a thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Stall threshold as a multiple of the observed mean per-item time.
    pub multiple: u32,
    /// Threshold floor — also the effective threshold before any item of
    /// the phase has completed (no observed mean yet).
    pub min_stall: Duration,
    /// Heartbeat sampling period of the monitor thread.
    pub poll: Duration,
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog {
            multiple: 32,
            min_stall: Duration::from_millis(250),
            poll: Duration::from_millis(2),
        }
    }
}

impl Watchdog {
    /// A watchdog with a custom threshold floor (the CLI's
    /// `--watchdog-ms`).
    #[must_use]
    pub fn with_min_stall(min_stall: Duration) -> Watchdog {
        Watchdog {
            min_stall,
            ..Watchdog::default()
        }
    }
}

/// Relative wall-time weights of the five pipeline phases, used to split
/// an overall deadline. Indexed `[apgen, pattern, select, repair, audit]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFractions(pub [f64; 5]);

impl PhaseFractions {
    /// Default split, measured from this repo's bench history on the
    /// testgen suite (apgen dominates; see DESIGN.md §13).
    pub const DEFAULT: PhaseFractions = PhaseFractions([0.55, 0.18, 0.12, 0.09, 0.06]);

    /// Derives fractions from a finished run's per-phase executor busy
    /// totals; falls back to [`DEFAULT`](PhaseFractions::DEFAULT) when the
    /// run recorded no busy time.
    #[must_use]
    pub fn from_stats(stats: &PaoStats) -> PhaseFractions {
        let busy = [
            stats.apgen_exec.total_busy_us(),
            stats.pattern_exec.total_busy_us(),
            stats.cluster_exec.total_busy_us(),
            stats.repair_exec.total_busy_us(),
            stats.audit_exec.total_busy_us(),
        ];
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return PhaseFractions::DEFAULT;
        }
        let mut f = [0f64; 5];
        for (slot, &b) in f.iter_mut().zip(&busy) {
            *slot = b as f64 / total as f64;
        }
        PhaseFractions(f).normalized()
    }

    /// Clamps every fraction to a small positive floor and rescales to
    /// sum 1, so no phase is ever allocated a zero budget.
    #[must_use]
    pub fn normalized(self) -> PhaseFractions {
        const FLOOR: f64 = 0.01;
        let mut f = self
            .0
            .map(|x| if x.is_finite() && x > FLOOR { x } else { FLOOR });
        let sum: f64 = f.iter().sum();
        for x in &mut f {
            *x /= sum;
        }
        PhaseFractions(f)
    }

    /// Serializes as one `FRACS` line for the checkpoint history file.
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "FRACS {:.6} {:.6} {:.6} {:.6} {:.6}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4]
        )
    }

    /// Parses a line produced by [`to_line`](PhaseFractions::to_line).
    #[must_use]
    pub fn parse_line(line: &str) -> Option<PhaseFractions> {
        let rest = line.trim().strip_prefix("FRACS ")?;
        let mut f = [0f64; 5];
        let mut it = rest.split_whitespace();
        for slot in &mut f {
            *slot = it.next()?.parse().ok()?;
        }
        it.next()
            .is_none()
            .then_some(PhaseFractions(f).normalized())
    }

    fn index(phase: Phase) -> Option<usize> {
        match phase {
            Phase::Apgen => Some(0),
            Phase::Pattern => Some(1),
            Phase::Select => Some(2),
            Phase::Repair => Some(3),
            Phase::Audit => Some(4),
            Phase::Cache | Phase::Input => None,
        }
    }
}

impl Default for PhaseFractions {
    fn default() -> PhaseFractions {
        PhaseFractions::DEFAULT
    }
}

/// Shared phase-fraction history for a resident process serving many
/// requests: readers take an immutable [`snapshot`](SharedFractions::snapshot)
/// (a `Copy` of the fractions) when they mint their budget, and finished
/// runs [`publish`](SharedFractions::publish) updated measurements. A
/// request's [`BudgetAllocator`] is built from its snapshot, so a
/// concurrent publish — another request finishing and rolling its
/// history forward — can never mutate the split an in-flight request
/// already observed. (One-shot CLI runs read fractions once from the
/// checkpoint store; the hazard only exists for long-lived daemons.)
#[derive(Debug, Clone, Default)]
pub struct SharedFractions {
    inner: std::sync::Arc<std::sync::Mutex<PhaseFractions>>,
}

impl SharedFractions {
    /// Starts the history at `fractions`.
    #[must_use]
    pub fn new(fractions: PhaseFractions) -> SharedFractions {
        SharedFractions {
            inner: std::sync::Arc::new(std::sync::Mutex::new(fractions.normalized())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PhaseFractions> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// An immutable copy of the current fractions. This is the only way
    /// requests read the history: the returned value is detached, so
    /// later publishes cannot reach a budget derived from it.
    #[must_use]
    pub fn snapshot(&self) -> PhaseFractions {
        *self.lock()
    }

    /// Replaces the history with a newer measurement (normalized).
    pub fn publish(&self, fractions: PhaseFractions) {
        *self.lock() = fractions.normalized();
    }
}

/// Splits an overall deadline across the five pipeline phases by their
/// historical wall-time fractions, **rolling unused time forward**: each
/// phase's token is minted when the phase starts, from the time actually
/// remaining to the overall deadline, so a phase that finishes early
/// donates its slack to every later phase (proportionally to their
/// fractions).
#[derive(Debug)]
pub struct BudgetAllocator {
    deadline: Option<Instant>,
    fractions: PhaseFractions,
}

impl BudgetAllocator {
    /// Anchors the overall deadline `budget` from now (`None` =
    /// unlimited).
    #[must_use]
    pub fn new(budget: Option<Duration>, fractions: PhaseFractions) -> BudgetAllocator {
        BudgetAllocator {
            deadline: budget.and_then(|b| Instant::now().checked_add(b)),
            fractions: fractions.normalized(),
        }
    }

    /// The absolute overall deadline, if bounded.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The (normalized) fractions this allocator was built with. The
    /// allocator owns its copy — mutating whatever source produced it
    /// (e.g. a [`SharedFractions`] publish) cannot change this value.
    #[must_use]
    pub fn fractions(&self) -> PhaseFractions {
        self.fractions
    }

    /// A token bounded only by the overall deadline (used for work that
    /// spans phases, e.g. the incremental fast path).
    #[must_use]
    pub fn overall_token(&self) -> CancelToken {
        match self.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        }
    }

    /// Mints the cancel token for `phase`, called when the phase starts:
    /// its share is `remaining × fraction(phase) / Σ fraction(phase..)`,
    /// capped at the overall deadline. Phases outside the five-phase
    /// pipeline (cache/input) get the overall token.
    #[must_use]
    pub fn phase_token(&self, phase: Phase) -> CancelToken {
        let Some(end) = self.deadline else {
            return CancelToken::never();
        };
        let Some(i) = PhaseFractions::index(phase) else {
            return CancelToken::with_deadline(end);
        };
        let now = Instant::now();
        if now >= end {
            // Already over budget: the token reads expired on first poll.
            return CancelToken::with_deadline(end);
        }
        let remaining = end - now;
        let tail: f64 = self.fractions.0[i..].iter().sum();
        let share = if tail > 0.0 {
            remaining.mul_f64((self.fractions.0[i] / tail).clamp(0.0, 1.0))
        } else {
            remaining
        };
        CancelToken::with_deadline((now + share).min(end))
    }
}

/// The per-run budget handed to
/// [`PinAccessOracle::analyze_with_budget`](crate::PinAccessOracle::analyze_with_budget):
/// an optional overall deadline, the phase split, an optional stall
/// watchdog, and an optional phase-granular checkpoint store for
/// cut/crash resume.
#[derive(Debug, Default)]
pub struct RunBudget<'a> {
    /// Overall wall-clock budget (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// How the budget splits across phases (see [`BudgetAllocator`]).
    pub fractions: PhaseFractions,
    /// Stall watchdog (`None` = no monitoring).
    pub watchdog: Option<Watchdog>,
    /// Phase-granular checkpoint store: completed apgen/pattern items are
    /// persisted after each phase and restored on the next run, so a cut
    /// or crashed run resumes without redoing finished work.
    pub checkpoint: Option<&'a mut crate::persist::CheckpointStore>,
}

impl RunBudget<'static> {
    /// No deadline, no watchdog, no checkpointing — plain
    /// [`analyze`](crate::PinAccessOracle::analyze) behavior.
    #[must_use]
    pub fn unlimited() -> RunBudget<'static> {
        RunBudget::default()
    }

    /// A budget with the given overall deadline and default fractions.
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> RunBudget<'static> {
        RunBudget {
            deadline: Some(deadline),
            ..RunBudget::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_fractions_snapshot_is_immutable_per_request() {
        // Regression: one request's roll-forward (publishing measured
        // fractions) must not mutate the split a concurrent request's
        // allocator already derived from its snapshot.
        let shared = SharedFractions::new(PhaseFractions([0.5, 0.2, 0.1, 0.1, 0.1]));
        let snap = shared.snapshot();
        let alloc = BudgetAllocator::new(Some(Duration::from_secs(1)), snap);
        let before = alloc.fractions();

        // A "finished request" publishes a very different history, from
        // another thread, while our allocator is conceptually in flight.
        let publisher = shared.clone();
        std::thread::spawn(move || {
            publisher.publish(PhaseFractions([0.01, 0.01, 0.01, 0.01, 0.96]));
        })
        .join()
        .expect("publisher thread");

        // The in-flight allocator still holds its snapshot bit-for-bit…
        assert_eq!(alloc.fractions(), before);
        assert_eq!(alloc.fractions(), snap.normalized());
        // …while new requests observe the published history.
        let fresh = shared.snapshot();
        assert!((fresh.0[4] - 0.96).abs() < 1e-6, "{fresh:?}");
        assert_ne!(fresh, before);
    }

    #[test]
    fn shared_fractions_concurrent_snapshots_are_consistent() {
        // Snapshots taken while a publisher churns must always be one of
        // the published values — never a torn mix of two. `new`/`publish`
        // re-normalize what they store (and normalization is not
        // bit-idempotent), so capture the exact stored representation of
        // each value via a serial round-trip first.
        let raw_a = PhaseFractions([0.5, 0.2, 0.1, 0.1, 0.1]);
        let raw_b = PhaseFractions([0.05, 0.05, 0.3, 0.3, 0.3]);
        let shared = SharedFractions::new(raw_a);
        let a = shared.snapshot();
        shared.publish(raw_b);
        let b = shared.snapshot();
        shared.publish(raw_a);
        std::thread::scope(|scope| {
            let publisher = shared.clone();
            scope.spawn(move || {
                for i in 0..500 {
                    publisher.publish(if i % 2 == 0 { raw_b } else { raw_a });
                }
            });
            for _ in 0..4 {
                let reader = shared.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        let s = reader.snapshot();
                        assert!(s == a || s == b, "torn snapshot: {s:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn token_never_is_inert() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
        assert_eq!(t.cut(), usize::MAX);
    }

    #[test]
    fn token_expires_at_deadline() {
        let t = CancelToken::after(Duration::ZERO);
        assert!(t.is_cancelled(), "zero budget expires immediately");
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        let far = CancelToken::after(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far
            .remaining()
            .is_some_and(|r| r > Duration::from_secs(3000)));
    }

    #[test]
    fn first_cancel_reason_wins_and_clones_share_state() {
        let t = CancelToken::never();
        let c = t.clone();
        c.cancel(CancelReason::Stall);
        t.cancel(CancelReason::External);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Stall));
    }

    #[test]
    fn cancel_at_latches_minimum_cut() {
        let t = CancelToken::never();
        t.cancel_at(9, CancelReason::External);
        t.cancel_at(4, CancelReason::External);
        t.cancel_at(7, CancelReason::External);
        assert_eq!(t.cut(), 4);
        assert!(t.is_cancelled());
    }

    #[test]
    fn stalls_accumulate_and_drain() {
        let t = CancelToken::never();
        t.record_stall(StallRecord {
            label: "apgen.instance".into(),
            worker: 1,
            item: 5,
            stalled: Duration::from_millis(300),
            threshold: Duration::from_millis(100),
        });
        let drained = t.take_stalls();
        assert_eq!(drained.len(), 1);
        assert!(drained[0]
            .to_string()
            .contains("worker 1 stalled on item 5"));
        assert!(t.take_stalls().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn fractions_normalize_and_roundtrip() {
        let f = PhaseFractions([0.0, 0.0, 0.0, 0.0, 1.0]).normalized();
        assert!((f.0.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f.0[0] > 0.0, "floor keeps every phase fundable");
        let line = PhaseFractions::DEFAULT.to_line();
        let back = PhaseFractions::parse_line(&line).expect("roundtrip");
        for (a, b) in back.0.iter().zip(&PhaseFractions::DEFAULT.0) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!(PhaseFractions::parse_line("FRACS 1 2 3").is_none());
        assert!(PhaseFractions::parse_line("nope").is_none());
    }

    #[test]
    fn fractions_from_stats_follow_busy_time() {
        let mut stats = PaoStats::default();
        assert_eq!(PhaseFractions::from_stats(&stats), PhaseFractions::DEFAULT);
        stats.apgen_exec = crate::parallel::ExecReport {
            threads: 1,
            busy_us: vec![900],
        };
        stats.audit_exec = crate::parallel::ExecReport {
            threads: 1,
            busy_us: vec![100],
        };
        let f = PhaseFractions::from_stats(&stats);
        assert!(f.0[0] > 0.8, "{f:?}");
        assert!(f.0[4] < 0.2, "{f:?}");
    }

    #[test]
    fn allocator_splits_and_rolls_forward() {
        let alloc = BudgetAllocator::new(Some(Duration::from_secs(100)), PhaseFractions::DEFAULT);
        let end = alloc.deadline().expect("bounded");
        // First phase gets roughly its fraction of the whole budget.
        let apgen = alloc.phase_token(Phase::Apgen).deadline().expect("bounded");
        assert!(apgen < end, "apgen must not consume the whole budget");
        // The last phase's token reaches the overall deadline: everything
        // unspent by earlier phases rolled forward to it.
        let audit = alloc.phase_token(Phase::Audit).deadline().expect("bounded");
        let slack = end.saturating_duration_since(audit);
        assert!(
            slack < Duration::from_secs(1),
            "audit gets all remaining time"
        );
        // Unlimited allocator mints inert tokens.
        let unlimited = BudgetAllocator::new(None, PhaseFractions::DEFAULT);
        assert!(unlimited.phase_token(Phase::Apgen).deadline().is_none());
    }

    #[test]
    fn expired_allocator_tokens_cancel_immediately() {
        let alloc = BudgetAllocator::new(Some(Duration::ZERO), PhaseFractions::DEFAULT);
        let t = alloc.phase_token(Phase::Pattern);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn deadline_report_summarizes() {
        let mut r = DeadlineReport::default();
        assert!(!r.is_partial());
        r.budget = Some(Duration::from_millis(100));
        r.skipped.push(SkipRecord {
            phase: Phase::Apgen,
            items: 12,
            reason: CancelReason::Deadline,
        });
        assert!(r.is_partial());
        assert_eq!(r.skipped_items(), 12);
        let text = r.to_string();
        assert!(text.contains("budget 0.100s"), "{text}");
        assert!(text.contains("apgen 12 (deadline)"), "{text}");
    }
}
