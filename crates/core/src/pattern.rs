//! Unique-instance access pattern generation (paper Section III-B,
//! Algorithms 2 and 3).

use crate::apgen::AccessPoint;
use crate::cost::{DRC_COST, NON_DEFAULT_VIA_COST, PENALTY_COST, UNIT_AP_COST};
use pao_drc::{DrcEngine, Owner, ShapeSet};
use pao_geom::Point;
use pao_obs::{ledger, LedgerEvent, LedgerRecord};
use pao_tech::Tech;
use std::collections::HashSet;

/// An access pattern: one access-point choice per analyzed pin of a unique
/// instance, mutually DRC-compatible (paper Section II-B.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPattern {
    /// For each *ordered* pin (see [`order_pins`]), the index into that
    /// pin's access-point list.
    pub choice: Vec<usize>,
    /// Total DP path cost of the pattern (lower is better).
    pub cost: i64,
    /// `true` when the whole-pattern DRC validation found no violations
    /// (patterns failing validation are normally discarded; a dirty
    /// pattern is only kept as a last resort).
    pub validated: bool,
}

/// Configuration for pattern generation.
#[derive(Debug, Clone)]
pub struct PatternConfig {
    /// Pin-ordering weight α in `x_avg + α·y_avg` (paper: 0.3).
    pub alpha: f64,
    /// Maximum number of diverse patterns to generate (paper: up to 3).
    pub max_patterns: usize,
    /// Boundary-conflict-aware penalty enabled (paper "w/ BCA").
    pub bca: bool,
    /// History-aware (`prev − 1`) DRC cost enabled.
    pub history: bool,
}

impl Default for PatternConfig {
    fn default() -> PatternConfig {
        PatternConfig {
            alpha: 0.3,
            max_patterns: 3,
            bca: true,
            history: true,
        }
    }
}

/// **Pin ordering** (paper Fig. 5): indices of the pins that have at least
/// one access point, sorted by `x_avg + α·y_avg` of their access points.
/// The first and last pins in the returned order are the *boundary pins*.
#[must_use]
pub fn order_pins(pin_aps: &[Vec<AccessPoint>], alpha: f64) -> Vec<usize> {
    let mut keys: Vec<(f64, usize)> = pin_aps
        .iter()
        .enumerate()
        .filter(|(_, aps)| !aps.is_empty())
        .map(|(i, aps)| {
            let n = aps.len() as f64;
            let xavg = aps.iter().map(|a| a.pos.x as f64).sum::<f64>() / n;
            let yavg = aps.iter().map(|a| a.pos.y as f64).sum::<f64>() / n;
            (xavg + alpha * yavg, i)
        })
        .collect();
    keys.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keys.into_iter().map(|(_, i)| i).collect()
}

/// Checks whether the primary vias of two access points are mutually
/// DRC-clean when dropped together (the `isDRCClean` of Algorithm 3).
///
/// `offset_a` / `offset_b` translate each point's via into a common frame
/// (zero for intra-instance checks; instance placement deltas for
/// inter-cell checks in step 3).
#[must_use]
pub fn aps_compatible(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    a: &AccessPoint,
    offset_a: Point,
    b: &AccessPoint,
    offset_b: Point,
) -> bool {
    let mut ctx = ShapeSet::new(tech.layers().len());
    aps_compatible_scratch(tech, engine, a, offset_a, b, offset_b, &mut ctx)
}

/// [`aps_compatible`] with a caller-owned scratch [`ShapeSet`] (cleared
/// and refilled per probe), so hot compatibility loops reuse the tree
/// allocations instead of building a fresh context per pair. The audit
/// runs in first-violation short-circuit mode — only the verdict is
/// needed.
#[must_use]
pub fn aps_compatible_scratch(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    a: &AccessPoint,
    offset_a: Point,
    b: &AccessPoint,
    offset_b: Point,
    ctx: &mut ShapeSet,
) -> bool {
    let (Some(va), Some(vb)) = (a.primary_via(), b.primary_via()) else {
        // Planar-only access points cannot via-conflict.
        return true;
    };
    vias_compatible(
        tech,
        engine,
        va,
        a.pos + offset_a,
        vb,
        b.pos + offset_b,
        ctx,
    )
}

/// Pairwise via probe underneath [`aps_compatible_scratch`]: drops the
/// two vias at their absolute positions into the scratch context and
/// audits. The context is deliberately **not** repacked — a pair context
/// holds a handful of shapes, so the index's linear overflow scan beats
/// the per-probe repack allocation, making the steady-state probe path
/// allocation-free. The verdict is independent of insertion order, so
/// memoizing it per (via, via, offset-delta) is sound.
#[must_use]
pub fn vias_compatible(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    va: pao_tech::ViaId,
    pa: Point,
    vb: pao_tech::ViaId,
    pb: Point,
    ctx: &mut ShapeSet,
) -> bool {
    ctx.clear();
    for (layer, rect) in tech.via(va).each_placed_shape(pa) {
        ctx.insert(layer, rect, Owner::net(1));
    }
    for (layer, rect) in tech.via(vb).each_placed_shape(pb) {
        ctx.insert(layer, rect, Owner::net(2));
    }
    engine.audit_clean(ctx)
}

/// State for one DP vertex.
#[derive(Debug, Clone, Copy)]
struct DpCell {
    cost: i64,
    /// AP index chosen at the previous pin (usize::MAX = none).
    prev: usize,
}

/// The access-point quality term of the edge cost.
fn ap_cost(tech: &Tech, ap: &AccessPoint) -> i64 {
    let via_pref = match ap.primary_via() {
        Some(v) if tech.via(v).is_default => 0,
        Some(_) => NON_DEFAULT_VIA_COST,
        None => NON_DEFAULT_VIA_COST,
    };
    UNIT_AP_COST * i64::from(ap.type_cost()) + via_pref
}

/// **Algorithms 2 + 3** — generates up to `cfg.max_patterns` diverse access
/// patterns for one unique instance.
///
/// `pin_aps` holds the access points per master pin; pins without access
/// points are excluded from the DP (they are *failed pins* — reported by
/// the caller). Patterns are expressed over [`order_pins`]' ordering.
///
/// Each DP run reuses Algorithm 2 with Algorithm 3 edge costs; after each
/// run the boundary access points used are recorded so the BCA penalty
/// steers later runs toward different boundary choices. Every candidate
/// pattern is post-validated by dropping **all** its primary vias together
/// and auditing (catching non-neighbor conflicts the pin-ordering
/// assumption misses); dirty patterns are discarded unless nothing clean
/// exists.
#[must_use]
pub fn generate_patterns(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    pin_aps: &[Vec<AccessPoint>],
    cfg: &PatternConfig,
) -> (Vec<usize>, Vec<AccessPattern>) {
    generate_patterns_tagged(tech, engine, pin_aps, cfg, 0)
}

/// [`generate_patterns`] with a unique-instance id stamped on the decision
/// ledger records it emits (pruned DP edges, BCA penalties, validation
/// verdicts). The oracle uses this form; `instance` becomes the high bits
/// of each record's entity (`instance << 16 | master_pin_idx`).
#[must_use]
#[allow(clippy::if_same_then_else)] // the arms mirror Algorithm 3's cases
pub fn generate_patterns_tagged(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    pin_aps: &[Vec<AccessPoint>],
    cfg: &PatternConfig,
    instance: u64,
) -> (Vec<usize>, Vec<AccessPattern>) {
    let entity_base = instance << 16;
    let order = order_pins(pin_aps, cfg.alpha);
    if order.is_empty() {
        return (order, Vec::new());
    }
    let m = order.len();
    // Observability tallies: plain local adds in the DP loops, published
    // as `pattern.*` counters once per call. The compat counters live in
    // `Cell`s because the memo closure needs them while holding the
    // cache borrow.
    let mut dp_runs = 0u64;
    let mut dp_vertices = 0u64;
    let mut dp_edges = 0u64;
    let mut bca_penalties = 0u64;
    let mut validations = 0u64;
    let compat_probes = std::cell::Cell::new(0u64);
    let compat_misses = std::cell::Cell::new(0u64);
    // Pairwise compatibility memo: the DP queries the same AP pairs on
    // every run.
    let mut compat_cache: std::collections::HashMap<(usize, usize, usize, usize), bool> =
        std::collections::HashMap::new();
    let mut compat_ctx = ShapeSet::new(tech.layers().len());
    let mut compat = |pa: usize, na: usize, pb: usize, nb: usize| -> bool {
        compat_probes.set(compat_probes.get() + 1);
        *compat_cache.entry((pa, na, pb, nb)).or_insert_with(|| {
            compat_misses.set(compat_misses.get() + 1);
            aps_compatible_scratch(
                tech,
                engine,
                &pin_aps[pa][na],
                Point::ORIGIN,
                &pin_aps[pb][nb],
                Point::ORIGIN,
                &mut compat_ctx,
            )
        })
    };
    let mut used_boundary: HashSet<(usize, usize)> = HashSet::new(); // (ordered pin, ap idx)
    let mut patterns: Vec<AccessPattern> = Vec::new();
    let mut dirty_fallback: Option<AccessPattern> = None;
    let mut seen_choices: HashSet<Vec<usize>> = HashSet::new();
    let mut val_ctx = ShapeSet::new(tech.layers().len());

    for _ in 0..cfg.max_patterns {
        dp_runs += 1;
        // dp[m][n]
        let mut dp: Vec<Vec<DpCell>> = order
            .iter()
            .map(|&pin| {
                vec![
                    DpCell {
                        cost: i64::MAX,
                        prev: usize::MAX,
                    };
                    pin_aps[pin].len()
                ]
            })
            .collect();
        dp_vertices += dp.iter().map(Vec::len).sum::<usize>() as u64;
        // Source: first pin's vertices.
        for (n, cell) in dp[0].iter_mut().enumerate() {
            let ap = &pin_aps[order[0]][n];
            let mut c = ap_cost(tech, ap);
            if cfg.bca && used_boundary.contains(&(0, n)) {
                c += PENALTY_COST;
                bca_penalties += 1;
            }
            cell.cost = c;
        }
        for mi in 1..m {
            let (head, tail) = dp.split_at_mut(mi);
            let prev_cells = &head[mi - 1];
            let curr_cells = &mut tail[0];
            let prev_pin = order[mi - 1];
            let curr_pin = order[mi];
            for (n, cell) in curr_cells.iter_mut().enumerate() {
                let curr_ap = &pin_aps[curr_pin][n];
                for (np, pcell) in prev_cells.iter().enumerate() {
                    if pcell.cost == i64::MAX {
                        continue;
                    }
                    let prev_ap = &pin_aps[prev_pin][np];
                    dp_edges += 1;
                    // Algorithm 3 edge cost. Each penalized arm leaves an
                    // attribution record when the ledger is on.
                    let edge = if cfg.bca && mi - 1 == 0 && used_boundary.contains(&(0, np)) {
                        bca_penalties += 1;
                        if pao_obs::ledger_enabled() {
                            ledger::record(
                                LedgerRecord::new(
                                    LedgerEvent::PatEdgeBca,
                                    entity_base | prev_pin as u64,
                                    np as u32,
                                )
                                .with_aux(0),
                            );
                        }
                        PENALTY_COST
                    } else if cfg.bca && mi == m - 1 && used_boundary.contains(&(m - 1, n)) {
                        bca_penalties += 1;
                        if pao_obs::ledger_enabled() {
                            ledger::record(
                                LedgerRecord::new(
                                    LedgerEvent::PatEdgeBca,
                                    entity_base | curr_pin as u64,
                                    n as u32,
                                )
                                .with_aux(1),
                            );
                        }
                        PENALTY_COST
                    } else if !compat(prev_pin, np, curr_pin, n) {
                        if pao_obs::ledger_enabled() {
                            ledger::record(
                                LedgerRecord::new(
                                    LedgerEvent::PatEdgeDrc,
                                    entity_base | curr_pin as u64,
                                    n as u32,
                                )
                                .with_aux(np as u32),
                            );
                        }
                        DRC_COST
                    } else if cfg.history
                        && mi >= 2
                        && pcell.prev != usize::MAX
                        && !compat(order[mi - 2], pcell.prev, curr_pin, n)
                    {
                        if pao_obs::ledger_enabled() {
                            ledger::record(
                                LedgerRecord::new(
                                    LedgerEvent::PatEdgeHistory,
                                    entity_base | curr_pin as u64,
                                    n as u32,
                                )
                                .with_aux(pcell.prev as u32),
                            );
                        }
                        DRC_COST
                    } else {
                        ap_cost(tech, prev_ap) + ap_cost(tech, curr_ap)
                    };
                    let path = pcell.cost.saturating_add(edge);
                    if path < cell.cost {
                        cell.cost = path;
                        cell.prev = np;
                    }
                }
            }
        }
        // Trace back from the cheapest last-pin vertex.
        let Some((mut n, end)) = dp[m - 1]
            .iter()
            .enumerate()
            .filter(|(_, c)| c.cost < i64::MAX)
            .min_by_key(|(_, c)| c.cost)
        else {
            break;
        };
        let total = end.cost;
        let mut choice = vec![0usize; m];
        for mi in (0..m).rev() {
            choice[mi] = n;
            n = dp[mi][n].prev;
        }
        if !seen_choices.insert(choice.clone()) {
            break; // converged: BCA can no longer diversify
        }
        // Record boundary usage for the BCA penalty of later runs.
        used_boundary.insert((0, choice[0]));
        used_boundary.insert((m - 1, choice[m - 1]));

        // Whole-pattern validation: drop every primary via together.
        val_ctx.clear();
        for (mi, &ap_idx) in choice.iter().enumerate() {
            let ap = &pin_aps[order[mi]][ap_idx];
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
                    val_ctx.insert(layer, rect, Owner::net(mi as u64));
                }
            }
        }
        val_ctx.rebuild();
        validations += 1;
        let clean = engine.audit_clean(&val_ctx);
        if pao_obs::ledger_enabled() {
            ledger::record(
                LedgerRecord::new(
                    LedgerEvent::PatternValidated,
                    entity_base,
                    (dp_runs - 1) as u32,
                )
                .with_aux(u32::from(clean))
                .with_pos(total, 0),
            );
        }
        let pat = AccessPattern {
            choice,
            cost: total,
            validated: clean,
        };
        if clean {
            patterns.push(pat);
        } else if dirty_fallback.is_none() {
            dirty_fallback = Some(pat);
        }
    }
    if patterns.is_empty() {
        if let Some(p) = dirty_fallback {
            if pao_obs::ledger_enabled() {
                ledger::record(
                    LedgerRecord::new(LedgerEvent::PatternFallback, entity_base, 0)
                        .with_pos(p.cost, 0),
                );
            }
            patterns.push(p);
        }
    }
    if pao_obs::metrics_enabled() {
        pao_obs::counter_add("pattern.dp_runs", dp_runs);
        pao_obs::counter_add("pattern.dp_vertices", dp_vertices);
        pao_obs::counter_add("pattern.dp_edges", dp_edges);
        pao_obs::counter_add("pattern.bca_penalties", bca_penalties);
        pao_obs::counter_add("pattern.compat_probes", compat_probes.get());
        pao_obs::counter_add("pattern.compat_misses", compat_misses.get());
        pao_obs::counter_add("pattern.validations", validations);
        pao_obs::counter_add("pattern.patterns_out", patterns.len() as u64);
    }
    (order, patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::CoordType;
    use pao_geom::{Dir, Rect};
    use pao_tech::{Layer, LayerId, ViaDef, ViaId};

    fn tech() -> Tech {
        let mut t = Tech::new(1000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 70));
        t.add_layer(Layer::cut("V1", 70, 80));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        let mut via = ViaDef::new(
            "via1_0",
            LayerId(0),
            vec![Rect::new(-65, -35, 65, 35)],
            LayerId(1),
            vec![Rect::new(-35, -35, 35, 35)],
            LayerId(2),
            vec![Rect::new(-35, -65, 35, 65)],
        );
        via.is_default = true;
        t.add_via(via);
        t
    }

    fn ap(x: i64, y: i64) -> AccessPoint {
        AccessPoint {
            pos: Point::new(x, y),
            layer: LayerId(0),
            pref_type: CoordType::OnTrack,
            nonpref_type: CoordType::OnTrack,
            vias: vec![ViaId(0)],
            planar: vec![],
        }
    }

    #[test]
    fn pin_ordering_by_weighted_average() {
        // Pin 0 far right, pin 1 left, pin 2 middle; pin 3 has no APs.
        let pins = vec![vec![ap(1000, 0)], vec![ap(0, 0)], vec![ap(500, 0)], vec![]];
        assert_eq!(order_pins(&pins, 0.3), vec![1, 2, 0]);
        // With a large α, a high-y pin moves later in the order.
        let pins = vec![vec![ap(0, 10_000)], vec![ap(100, 0)]];
        assert_eq!(order_pins(&pins, 0.0), vec![0, 1]);
        assert_eq!(order_pins(&pins, 0.3), vec![1, 0]);
    }

    #[test]
    fn compatible_vias_far_apart() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let a = ap(0, 0);
        let b = ap(600, 0);
        assert!(aps_compatible(&t, &e, &a, Point::ORIGIN, &b, Point::ORIGIN));
        // Too close: bottom enclosures 130 wide at distance 130 < spacing.
        let c = ap(150, 0);
        assert!(!aps_compatible(
            &t,
            &e,
            &a,
            Point::ORIGIN,
            &c,
            Point::ORIGIN
        ));
        // Offsets shift the frames.
        assert!(aps_compatible(
            &t,
            &e,
            &a,
            Point::ORIGIN,
            &c,
            Point::new(600, 0)
        ));
    }

    #[test]
    fn dp_picks_clean_combination() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Pin 0 at x≈0, pin 1 at x≈260: the (0,0)–(260,0) pair conflicts
        // (gap 130 < 140 required due widths? bottom enclosures: [..65] and
        // [195..325]: gap 130 ≥ 70 → actually clean). Make them closer:
        // x=180 → gap 50 < 70 → conflict; alternative AP at x=320 is clean.
        let pins = vec![vec![ap(0, 0)], vec![ap(180, 0), ap(320, 0)]];
        let (order, pats) = generate_patterns(&t, &e, &pins, &PatternConfig::default());
        assert_eq!(order, vec![0, 1]);
        assert!(!pats.is_empty());
        let best = &pats[0];
        assert!(best.validated);
        assert_eq!(best.choice, vec![0, 1], "DP must avoid the conflicting AP");
    }

    #[test]
    fn bca_diversifies_boundary_choices() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Two pins, two clean APs each (all mutually clean).
        let pins = vec![vec![ap(0, 0), ap(0, 400)], vec![ap(600, 0), ap(600, 400)]];
        let cfg = PatternConfig::default();
        let (_, pats) = generate_patterns(&t, &e, &pins, &cfg);
        assert!(
            pats.len() >= 2,
            "BCA should yield diverse patterns, got {pats:?}"
        );
        // Boundary choices differ across patterns.
        assert_ne!(pats[0].choice[0], pats[1].choice[0]);
        // Without BCA only one pattern is produced (duplicates converge).
        let cfg = PatternConfig { bca: false, ..cfg };
        let (_, pats) = generate_patterns(&t, &e, &pins, &cfg);
        assert_eq!(pats.len(), 1);
    }

    #[test]
    fn empty_and_single_pin_instances() {
        let t = tech();
        let e = DrcEngine::new(&t);
        let (order, pats) = generate_patterns(&t, &e, &[], &PatternConfig::default());
        assert!(order.is_empty() && pats.is_empty());
        // Single pin: pattern = its best AP.
        let pins = vec![vec![ap(0, 0), ap(0, 200)]];
        let (order, pats) = generate_patterns(&t, &e, &pins, &PatternConfig::default());
        assert_eq!(order, vec![0]);
        assert!(!pats.is_empty());
        assert_eq!(pats[0].choice.len(), 1);
    }

    #[test]
    fn forced_conflict_yields_dirty_fallback() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Two pins whose only APs conflict.
        let pins = vec![vec![ap(0, 0)], vec![ap(100, 0)]];
        let (_, pats) = generate_patterns(&t, &e, &pins, &PatternConfig::default());
        assert_eq!(pats.len(), 1);
        assert!(!pats[0].validated);
        assert!(pats[0].cost >= DRC_COST);
    }

    #[test]
    fn history_cost_catches_skip_level_conflicts() {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Three pins; middle pin is planar-only (no via conflicts) so the
        // prev/curr check never fires between 0↔1 or 1↔2, but pins 0 and 2
        // conflict directly. History-aware cost must catch it and pick the
        // clean AP of pin 2.
        let mut planar_mid = ap(80, 0);
        planar_mid.vias.clear();
        planar_mid.planar.push(PlanarDir::East);
        let pins = vec![
            vec![ap(0, 0)],
            vec![planar_mid],
            vec![ap(160, 0), ap(600, 0)],
        ];
        let cfg = PatternConfig::default();
        let (_, pats) = generate_patterns(&t, &e, &pins, &cfg);
        assert!(!pats.is_empty());
        assert_eq!(pats[0].choice[2], 1, "history cost should steer to x=600");
        assert!(pats[0].validated);
        // Without history the DP picks the nearer (conflicting) AP and the
        // post-validation flags it.
        let cfg = PatternConfig {
            history: false,
            ..cfg
        };
        let (_, pats) = generate_patterns(&t, &e, &pins, &cfg);
        // Post-validation discards the dirty first pattern, but a later
        // BCA-diversified run may still find the clean one; at minimum the
        // dirty pattern is never reported as validated.
        assert!(pats.iter().all(|p| p.validated || p.choice[2] == 0));
    }

    use crate::apgen::PlanarDir;
}
