//! Minimal scoped-thread parallel map (the paper's future-work item (ii):
//! multi-threading to further reduce runtime).
//!
//! Unique instances are analyzed independently, so steps 1 and 2
//! parallelize trivially. This helper avoids an external thread-pool
//! dependency: inputs are split into contiguous chunks, one scoped thread
//! per chunk, and outputs are reassembled in order.

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// order. With `threads <= 1` (or one item) this runs inline, matching the
/// paper's single-threaded measurement mode exactly.
///
/// ```
/// let squares = pao_core::parallel::parallel_map(4, vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    // Split from the back to keep pops O(1), then restore order.
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let f = &f;
    let mut out: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut flat = Vec::with_capacity(n);
    for v in &mut out {
        flat.append(v);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<i64> = (0..1000).collect();
        let expect: Vec<i64> = input.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(threads, input.clone(), |x| x * 2),
                expect,
                "{threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(8, Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(8, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(100, vec![1, 2, 3], |x| x), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn propagates_panics() {
        let _ = parallel_map(2, vec![1, 2, 3, 4], |x| {
            assert!(x != 3, "boom");
            x
        });
    }
}
