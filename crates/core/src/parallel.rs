//! Self-scheduling parallel executor (the paper's future-work item (ii):
//! multi-threading to further reduce runtime).
//!
//! Unique instances, pattern DPs, cluster groups, repair scans and audit
//! shards are all independent units of work with wildly uneven costs (a
//! RAM macro's pin takes orders of magnitude longer than an inverter's).
//! A static chunking scheme stalls on the unlucky worker that drew the
//! expensive chunk; instead every worker *claims* the next unprocessed
//! index from a shared atomic counter, so load balances itself at
//! per-item granularity with no work-queue allocation and no external
//! thread-pool dependency — scoped threads and two atomics, std only.
//!
//! Results are written into a pre-sized slot table indexed by the claimed
//! position, so output order equals input order regardless of which
//! worker finished what — callers observe output identical to the
//! sequential mode (`threads <= 1`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one parallel phase did: how many workers ran and how long each
/// was busy (claimed items, excluding idle/steal time). Powers the
/// per-step parallel-efficiency lines in [`crate::stats::PaoStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Worker threads that participated (1 for the inline mode).
    pub threads: usize,
    /// Busy time per worker, in microseconds (empty for empty inputs).
    pub busy_us: Vec<u64>,
}

impl ExecReport {
    /// Total busy time across workers, in microseconds.
    #[must_use]
    pub fn total_busy_us(&self) -> u64 {
        self.busy_us.iter().sum()
    }

    /// Merges another report (phases run in several calls — e.g. repair
    /// rounds — accumulate into one report).
    pub fn merge(&mut self, other: &ExecReport) {
        self.threads = self.threads.max(other.threads);
        for (i, &b) in other.busy_us.iter().enumerate() {
            if i < self.busy_us.len() {
                self.busy_us[i] += b;
            } else {
                self.busy_us.push(b);
            }
        }
    }
}

/// Maps `f` over `items` with a self-scheduling pool of up to `threads`
/// workers, preserving order. With `threads <= 1` (or one item) this runs
/// inline on the caller's thread, matching the paper's single-threaded
/// measurement mode exactly.
///
/// ```
/// let squares = pao_core::parallel::parallel_map(4, vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_report(threads, items, f).0
}

/// [`parallel_map`] that also reports worker count and per-worker busy
/// time for the phase.
///
/// A worker panic is re-raised on the caller with its original payload
/// (via [`std::panic::resume_unwind`]), so assertion messages from inside
/// `f` survive the thread boundary.
pub fn parallel_map_report<T, R, F>(threads: usize, items: Vec<T>, f: F) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_labeled(threads, "item", items, f)
}

/// [`parallel_map_report`] with an observability label: when span
/// recording is on ([`pao_obs::enable_trace`]), every item becomes one
/// span named `label` on the claiming worker's track (worker `w` records
/// on track `w + 1`; the labels reuse the busy-time instants, so tracing
/// adds no clock reads to the hot loop). When recording is off the label
/// is inert.
pub fn parallel_map_labeled<T, R, F>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    f: F,
) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_scratch(threads, label, items, || (), |(), item| f(item))
}

/// [`parallel_map_labeled`] with per-worker scratch state: `init` runs
/// once on each worker thread (and once for the inline mode), and every
/// item call receives that worker's `&mut S`. This is how per-worker
/// arenas (e.g. [`pao_drc::DrcScratch`]) reach fine-grained scans — the
/// repair and audit phases probe one pin per item and would otherwise
/// re-allocate the DRC workspace per probe.
///
/// The scratch is dropped when its worker finishes; state that must
/// outlive the phase (observability tallies) should be published from
/// inside `f`.
pub fn parallel_map_scratch<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let start = Instant::now();
        let mut scratch = init();
        let out: Vec<R> = items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
        let elapsed = start.elapsed();
        if n > 0 {
            pao_obs::record_span_at(label, start, elapsed);
        }
        let report = ExecReport {
            threads: 1,
            busy_us: vec![duration_us(elapsed)],
        };
        return (out, report);
    }
    let threads = threads.min(n);

    // Items move into per-index slots the workers drain; results come back
    // through parallel slots. Mutex<Option<T>> per slot keeps this safe
    // without unsafe code; each slot is locked exactly once per side, so
    // contention is nil.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let done: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let busy_us = {
        let (work, done, next, f, init) = (&work, &done, &next, &f, &init);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        if pao_obs::trace_enabled() {
                            // Worker w of every phase shares track w + 1,
                            // so one Perfetto row shows a worker's whole run.
                            pao_obs::trace::set_track(w as u32 + 1, &format!("worker {w}"));
                        }
                        let mut scratch = init();
                        let mut busy = Duration::ZERO;
                        loop {
                            // Claim the next unprocessed index; self-scheduling
                            // makes uneven item costs balance automatically.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                // Scope exit does not wait for TLS
                                // destructors; push buffered spans and
                                // metrics out while still joinable.
                                pao_obs::flush_thread();
                                return duration_us(busy);
                            }
                            let item = work[i]
                                .lock()
                                .expect("work slot")
                                .take()
                                .expect("claimed once");
                            let start = Instant::now();
                            let out = f(&mut scratch, item);
                            let elapsed = start.elapsed();
                            busy += elapsed;
                            pao_obs::record_span_at(label, start, elapsed);
                            *done[i].lock().expect("done slot") = Some(out);
                        }
                    })
                })
                .collect();
            let mut busy_us = Vec::with_capacity(threads);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(us) => busy_us.push(us),
                    // Keep joining the rest so no worker outlives the scope
                    // borrow, then re-raise the first payload.
                    Err(payload) => panic = panic.or(Some(payload)),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
            busy_us
        })
    };

    let out: Vec<R> = done
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("done slot")
                .expect("every index processed")
        })
        .collect();
    (out, ExecReport { threads, busy_us })
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<i64> = (0..1000).collect();
        let expect: Vec<i64> = input.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(threads, input.clone(), |x| x * 2),
                expect,
                "{threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(8, Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(8, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(100, vec![1, 2, 3], |x| x), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panic_payload() {
        // The original assertion message must survive the worker boundary.
        let _ = parallel_map(2, vec![1, 2, 3, 4], |x| {
            assert!(x != 3, "boom");
            x
        });
    }

    #[test]
    fn balances_uneven_work() {
        // One huge item and many tiny ones: self-scheduling must not leave
        // workers starved behind the huge one. (Functional check only —
        // timing is not asserted; single-CPU CI cannot show speedup.)
        let mut items = vec![200_000u64];
        items.extend(std::iter::repeat_n(10, 63));
        let expect: Vec<u64> = items
            .iter()
            .map(|&spin| (0..spin).fold(0u64, |a, b| a.wrapping_add(b * b)))
            .collect();
        let got = parallel_map(4, items, |spin| {
            (0..spin).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn reports_threads_and_busy_time() {
        let (out, rep) = parallel_map_report(3, (0..64).collect::<Vec<u32>>(), |x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(rep.threads, 3);
        assert_eq!(rep.busy_us.len(), 3);
        // Inline mode reports a single worker.
        let (_, rep1) = parallel_map_report(1, vec![1, 2, 3], |x| x);
        assert_eq!(rep1.threads, 1);
        assert_eq!(rep1.busy_us.len(), 1);
    }

    #[test]
    fn labeled_run_records_spans_covering_busy_time() {
        pao_obs::enable_trace();
        let (out, rep) = parallel_map_labeled(3, "test.core.tick", (0..64u64).collect(), |x| {
            (0..20_000 + x).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        pao_obs::disable_all();
        let dump = pao_obs::take_trace();
        assert_eq!(out.len(), 64);
        // Other tests in this binary may record spans concurrently; judge
        // only our own label.
        let ours: Vec<_> = dump
            .events
            .iter()
            .filter(|e| e.name == "test.core.tick")
            .collect();
        assert_eq!(ours.len(), 64, "one span per item");
        // Every span sits on a worker track (1..=threads), and the span
        // total matches the executor's busy total to µs rounding: the
        // spans reuse the busy-time instants, so coverage is structural.
        assert!(ours.iter().all(|e| (1..=3).contains(&e.track)));
        let span_ns: u64 = ours.iter().map(|e| e.dur_ns).sum();
        let busy_ns = rep.total_busy_us() * 1000;
        assert!(
            span_ns + 1000 >= busy_ns,
            "span total {span_ns}ns must cover busy total {busy_ns}ns"
        );
    }

    #[test]
    fn scratch_state_persists_per_worker() {
        for threads in [1, 3] {
            let (out, _) = parallel_map_scratch(
                threads,
                "test.scratch",
                (0..100u32).collect::<Vec<_>>(),
                || 0u32,
                |seen, x| {
                    *seen += 1;
                    (x, *seen)
                },
            );
            // Order preserved; every worker's counter is monotone from 1.
            assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i as u32));
            assert!(out.iter().all(|&(_, s)| s >= 1));
            let max_seen = out.iter().map(|&(_, s)| s).max().unwrap();
            assert!(
                max_seen as usize >= 100 / threads.max(1),
                "scratch must persist across items on a worker"
            );
        }
    }

    #[test]
    fn merge_accumulates_reports() {
        let mut a = ExecReport {
            threads: 2,
            busy_us: vec![5, 7],
        };
        a.merge(&ExecReport {
            threads: 4,
            busy_us: vec![1, 1, 2, 3],
        });
        assert_eq!(a.threads, 4);
        assert_eq!(a.busy_us, vec![6, 8, 2, 3]);
    }
}
