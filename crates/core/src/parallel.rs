//! Self-scheduling parallel executor (the paper's future-work item (ii):
//! multi-threading to further reduce runtime).
//!
//! Unique instances, pattern DPs, cluster groups, repair scans and audit
//! shards are all independent units of work with wildly uneven costs (a
//! RAM macro's pin takes orders of magnitude longer than an inverter's).
//! A static chunking scheme stalls on the unlucky worker that drew the
//! expensive chunk; instead every worker *claims* the next unprocessed
//! index from a shared atomic counter, so load balances itself at
//! per-item granularity with no work-queue allocation and no external
//! thread-pool dependency — scoped threads and two atomics, std only.
//!
//! Results are written into a pre-sized slot table indexed by the claimed
//! position, so output order equals input order regardless of which
//! worker finished what — callers observe output identical to the
//! sequential mode (`threads <= 1`).

//! **Fault isolation.** Every work item runs under
//! [`std::panic::catch_unwind`], so one panicking item cannot take down
//! the phase: the quarantine-mode entry point
//! ([`parallel_map_quarantine`]) yields the panic as a per-item `Err`
//! while every other item completes, and the strict entry points
//! re-raise the first payload only after the full phase has drained.
//! Slot mutexes recover from poisoning (`PoisonError::into_inner`) so a
//! fault in one item can never cascade into an unrelated "done slot"
//! panic on another thread.

//! **Deadlines and the watchdog.** The budget-mode entry point
//! ([`parallel_map_budget`]) threads a [`CancelToken`] through the claim
//! loop: every worker polls it *before* claiming the next index, so an
//! expired budget (or an explicit cancellation) finishes in-flight items
//! and yields the unstarted ones as `Err(ItemFault::Skipped)`. Because
//! indices are handed out strictly in order and claimed items always
//! finish, the completed results always form a prefix of the input. A
//! deterministic cancellation via [`CancelToken::cancel_at`]
//! additionally discards any results that racing workers computed past
//! the cut index, which keeps such cancellations bit-identical at every
//! thread count. When a [`Watchdog`] is armed, a monitor thread samples
//! per-worker heartbeats and trips the token (recording a
//! [`StallRecord`] and bumping `watchdog.stalls`) when a worker sits in
//! one item for longer than a multiple of the observed per-item time —
//! a hung run becomes a degraded one.

use crate::budget::{CancelReason, CancelToken, StallRecord, Watchdog};
use std::any::Any;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A caught worker-panic payload (kept intact so strict callers can
/// re-raise it with the original assertion message).
type Payload = Box<dyn Any + Send + 'static>;

/// Renders a caught panic payload as the quarantine reason string.
fn payload_reason(payload: &Payload) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_owned())
}

/// Why one work item produced no result in budget mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemFault {
    /// The item panicked (quarantined); the payload message.
    Panic(String),
    /// The item was never run: the phase's budget expired, the watchdog
    /// tripped, or the token was cancelled before the item was claimed.
    Skipped(CancelReason),
}

impl fmt::Display for ItemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemFault::Panic(reason) => f.write_str(reason),
            ItemFault::Skipped(reason) => write!(f, "skipped ({reason})"),
        }
    }
}

/// Internal per-item outcome: completed, panicked, or never started.
enum Dropped {
    Panic(Payload),
    Skipped(CancelReason),
}

/// The budget under which one phase runs: the cancel token polled
/// between items plus the optional stall watchdog.
#[derive(Debug, Clone, Copy)]
pub struct PhaseBudget<'a> {
    /// Cancellation/deadline token; polled before every item claim.
    pub token: &'a CancelToken,
    /// Stall watchdog configuration (`None` = no monitor thread).
    pub watchdog: Option<Watchdog>,
}

impl<'a> PhaseBudget<'a> {
    /// A budget over `token` with an optional watchdog.
    #[must_use]
    pub fn new(token: &'a CancelToken, watchdog: Option<Watchdog>) -> PhaseBudget<'a> {
        PhaseBudget { token, watchdog }
    }
}

/// What one parallel phase did: how many workers ran and how long each
/// was busy (claimed items, excluding idle/steal time). Powers the
/// per-step parallel-efficiency lines in [`crate::stats::PaoStats`].
///
/// On Linux, per-worker busy time is the worker thread's **on-CPU time**
/// (`/proc/thread-self/schedstat`), capped by its wall-clock item total.
/// Wall clocks alone count involuntary preemption as busy: on a host
/// with fewer cores than workers they inflate `busy_us` by the
/// oversubscription factor even though no extra work ran. Off Linux the
/// wall-clock item total is reported unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Worker threads that participated (1 for the inline mode).
    pub threads: usize,
    /// Busy time per worker, in microseconds (empty for empty inputs).
    pub busy_us: Vec<u64>,
}

impl ExecReport {
    /// Total busy time across workers, in microseconds.
    #[must_use]
    pub fn total_busy_us(&self) -> u64 {
        self.busy_us.iter().sum()
    }

    /// Merges another report (phases run in several calls — e.g. repair
    /// rounds — accumulate into one report).
    pub fn merge(&mut self, other: &ExecReport) {
        self.threads = self.threads.max(other.threads);
        for (i, &b) in other.busy_us.iter().enumerate() {
            if i < self.busy_us.len() {
                self.busy_us[i] += b;
            } else {
                self.busy_us.push(b);
            }
        }
    }
}

/// Maps `f` over `items` with a self-scheduling pool of up to `threads`
/// workers, preserving order. With `threads <= 1` (or one item) this runs
/// inline on the caller's thread, matching the paper's single-threaded
/// measurement mode exactly.
///
/// ```
/// let squares = pao_core::parallel::parallel_map(4, vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_report(threads, items, f).0
}

/// [`parallel_map`] that also reports worker count and per-worker busy
/// time for the phase.
///
/// A worker panic is re-raised on the caller with its original payload
/// (via [`std::panic::resume_unwind`]), so assertion messages from inside
/// `f` survive the thread boundary.
pub fn parallel_map_report<T, R, F>(threads: usize, items: Vec<T>, f: F) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_labeled(threads, "item", items, f)
}

/// [`parallel_map_report`] with an observability label: when span
/// recording is on ([`pao_obs::enable_trace`]), every item becomes one
/// span named `label` on the claiming worker's track (worker `w` records
/// on track `w + 1`; the labels reuse the busy-time instants, so tracing
/// adds no clock reads to the hot loop). When recording is off the label
/// is inert.
pub fn parallel_map_labeled<T, R, F>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    f: F,
) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_scratch(threads, label, items, || (), |(), item| f(item))
}

/// [`parallel_map_labeled`] with per-worker scratch state: `init` runs
/// once on each worker thread (and once for the inline mode), and every
/// item call receives that worker's `&mut S`. This is how per-worker
/// arenas (e.g. [`pao_drc::DrcScratch`]) reach fine-grained scans — the
/// repair and audit phases probe one pin per item and would otherwise
/// re-allocate the DRC workspace per probe.
///
/// The scratch is dropped when its worker finishes; state that must
/// outlive the phase (observability tallies) should be published from
/// inside `f`.
pub fn parallel_map_scratch<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let token = CancelToken::never();
    let (outcomes, report) = run_isolated(
        threads,
        label,
        items,
        init,
        f,
        PhaseBudget::new(&token, None),
    );
    let mut panic: Option<Payload> = None;
    let out: Vec<R> = outcomes
        .into_iter()
        .filter_map(|o| match o {
            Ok(r) => Some(r),
            Err(Dropped::Panic(payload)) => {
                panic = panic.take().or(Some(payload));
                None
            }
            // Unreachable with a never-cancelled token; degrade to the
            // strict panic path rather than silently dropping the slot.
            Err(Dropped::Skipped(reason)) => {
                panic = panic
                    .take()
                    .or_else(|| Some(Box::new(format!("executor: item skipped ({reason})"))));
                None
            }
        })
        .collect();
    if let Some(payload) = panic {
        // Strict contract: the whole phase drained (no half-poisoned
        // state), then the first payload is re-raised with its original
        // assertion message.
        std::panic::resume_unwind(payload);
    }
    (out, report)
}

/// Fault-isolated map: like [`parallel_map_scratch`], but a panicking
/// work item yields `Err(reason)` in its output slot (its quarantine
/// record) while **every other item completes normally**. The executor
/// and its slot mutexes stay fully usable afterwards — quarantine is
/// per item, not per phase.
///
/// A worker whose item panicked gets a fresh scratch (`init` is re-run)
/// before claiming its next item, since the old scratch may have been
/// left mid-update by the unwind.
///
/// ```
/// let (out, _) = pao_core::parallel::parallel_map_quarantine(
///     2,
///     "docs.quarantine",
///     vec![1, 2, 3],
///     || (),
///     |(), x| {
///         assert!(x != 2, "two is right out");
///         x * 10
///     },
/// );
/// assert_eq!(out[0], Ok(10));
/// assert!(out[1].as_ref().unwrap_err().contains("two is right out"));
/// assert_eq!(out[2], Ok(30));
/// ```
pub fn parallel_map_quarantine<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<Result<R, String>>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let token = CancelToken::never();
    let (outcomes, report) = run_isolated(
        threads,
        label,
        items,
        init,
        f,
        PhaseBudget::new(&token, None),
    );
    let out = outcomes
        .into_iter()
        .map(|o| {
            o.map_err(|d| match d {
                Dropped::Panic(payload) => payload_reason(&payload),
                Dropped::Skipped(reason) => format!("executor: item skipped ({reason})"),
            })
        })
        .collect();
    (out, report)
}

/// Deadline-aware fault-isolated map: like [`parallel_map_quarantine`],
/// but additionally polls `budget.token` before every item claim and
/// (optionally) runs a stall watchdog. An item that was never started
/// because the token tripped yields `Err(ItemFault::Skipped(reason))`;
/// a panicking item yields `Err(ItemFault::Panic(reason))`. In-flight
/// items always finish, so the `Ok` results form a prefix of the input
/// (plus, for non-deterministic cancellations, whatever racing workers
/// had already claimed).
pub fn parallel_map_budget<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
    budget: PhaseBudget<'_>,
) -> (Vec<Result<R, ItemFault>>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let (outcomes, report) = run_isolated(threads, label, items, init, f, budget);
    let out = outcomes
        .into_iter()
        .map(|o| {
            o.map_err(|d| match d {
                Dropped::Panic(payload) => ItemFault::Panic(payload_reason(&payload)),
                Dropped::Skipped(reason) => ItemFault::Skipped(reason),
            })
        })
        .collect();
    (out, report)
}

/// Applies the deterministic cut of [`CancelToken::cancel_at`]: results
/// computed past the cut index (by workers racing the cancellation) are
/// replaced with `Skipped`, so the surviving prefix is identical at
/// every thread count.
fn apply_cut<R>(out: &mut [Result<R, Dropped>], token: &CancelToken) {
    let cut = token.cut();
    if cut == usize::MAX {
        return;
    }
    let reason = token.reason().unwrap_or(CancelReason::External);
    for (i, slot) in out.iter_mut().enumerate() {
        if i > cut && slot.is_ok() {
            *slot = Err(Dropped::Skipped(reason));
        }
    }
}

/// The shared engine: self-scheduling order-preserving map with per-item
/// `catch_unwind` isolation and cooperative cancellation. All entry
/// points run through here; they differ only in how `Err` slots are
/// surfaced (the strict/quarantine paths pass a never-cancelled token).
fn run_isolated<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
    budget: PhaseBudget<'_>,
) -> (Vec<Result<R, Dropped>>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    // One guarded item call: the armed fault/stall hooks and the item
    // body all run inside the unwind boundary, so an injected or organic
    // panic is contained to this slot.
    let run_one = |scratch: &mut S, i: usize, item: T| -> Result<R, Dropped> {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            crate::fault::fire(label, i);
            crate::fault::stall_fire(label, i);
            f(scratch, item)
        }))
        .map_err(Dropped::Panic)
    };
    // Inline mode: single-threaded, no monitor. A phase with a watchdog
    // armed always takes the threaded engine (even for `threads <= 1` —
    // the output is bit-identical by construction, and the monitor needs
    // its own thread to observe a stalled worker).
    if n == 0 || (budget.watchdog.is_none() && (threads <= 1 || n == 1)) {
        let start = Instant::now();
        let mut scratch = init();
        let mut out: Vec<Result<R, Dropped>> = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            if budget.token.is_cancelled() {
                let reason = budget.token.reason().unwrap_or(CancelReason::Deadline);
                out.extend((i..n).map(|_| Err(Dropped::Skipped(reason))));
                break;
            }
            let res = run_one(&mut scratch, i, item);
            if res.is_err() {
                scratch = init();
            }
            out.push(res);
        }
        apply_cut(&mut out, budget.token);
        let elapsed = start.elapsed();
        if n > 0 {
            pao_obs::record_span_at(label, start, elapsed);
        }
        let report = ExecReport {
            threads: 1,
            busy_us: vec![duration_us(elapsed)],
        };
        return (out, report);
    }
    let threads = threads.min(n).max(1);

    // Items move into per-index slots the workers drain; results come back
    // through parallel slots. Mutex<Option<T>> per slot keeps this safe
    // without unsafe code; each slot is locked exactly once per side, so
    // contention is nil. No lock is held across the item call, and every
    // lock recovers from poisoning, so one fault cannot cascade.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let done: Vec<Mutex<Option<Result<R, Dropped>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    // Watchdog instrumentation. Heartbeats are per-worker counters with
    // claim/finish parity: an odd value means the worker is inside the
    // item recorded in `cur_item`. Only touched when a watchdog is armed,
    // so the unmonitored hot loop pays nothing.
    let monitoring = budget.watchdog.is_some();
    let beats: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let cur_item: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let done_count = AtomicUsize::new(0);
    let finished = Mutex::new(false);
    let finished_cv = Condvar::new();

    let busy_us = {
        let (work, done, next, init, run_one) = (&work, &done, &next, &init, &run_one);
        let (beats, cur_item, done_count) = (&beats, &cur_item, &done_count);
        let (finished, finished_cv) = (&finished, &finished_cv);
        std::thread::scope(|scope| {
            let monitor = budget.watchdog.map(|wd| {
                scope.spawn(move || {
                    monitor_heartbeats(
                        label,
                        wd,
                        budget.token,
                        beats,
                        cur_item,
                        done_count,
                        finished,
                        finished_cv,
                    );
                })
            });
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        if pao_obs::trace_enabled() {
                            // Worker w of every phase shares track w + 1,
                            // so one Perfetto row shows a worker's whole run.
                            pao_obs::trace::set_track(w as u32 + 1, &format!("worker {w}"));
                        }
                        let mut scratch = init();
                        let mut busy = Duration::ZERO;
                        // Sampled after init() so scratch construction
                        // doesn't count as item work.
                        let cpu_start = pao_obs::thread_cpu_ns();
                        loop {
                            // Cooperative cancellation: poll before claiming,
                            // so in-flight items finish and unclaimed ones
                            // stay unclaimed (the post-pass skips them).
                            if budget.token.is_cancelled() {
                                pao_obs::flush_thread();
                                return worker_busy_us(cpu_start, busy);
                            }
                            // Claim the next unprocessed index; self-scheduling
                            // makes uneven item costs balance automatically.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                // Scope exit does not wait for TLS
                                // destructors; push buffered spans and
                                // metrics out while still joinable.
                                pao_obs::flush_thread();
                                return worker_busy_us(cpu_start, busy);
                            }
                            if monitoring {
                                cur_item[w].store(i, Ordering::Relaxed);
                                beats[w].fetch_add(1, Ordering::Release);
                            }
                            let item = work[i]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .take();
                            let start = Instant::now();
                            let out = match item {
                                Some(item) => run_one(&mut scratch, i, item),
                                // Unreachable: fetch_add hands out each
                                // index exactly once. Degrade, don't abort.
                                None => Err(Dropped::Panic(Box::new(format!(
                                    "executor: work slot {i} claimed twice"
                                ))
                                    as Payload)),
                            };
                            if out.is_err() {
                                // The unwind may have left the scratch
                                // arena mid-update; rebuild it.
                                scratch = init();
                            }
                            if monitoring {
                                beats[w].fetch_add(1, Ordering::Release);
                                done_count.fetch_add(1, Ordering::Relaxed);
                            }
                            let elapsed = start.elapsed();
                            busy += elapsed;
                            pao_obs::record_span_at(label, start, elapsed);
                            *done[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        }
                    })
                })
                .collect();
            let mut busy_us = Vec::with_capacity(threads);
            for h in handles {
                match h.join() {
                    Ok(us) => busy_us.push(us),
                    // Workers catch item panics, so a join error means the
                    // worker loop itself failed; report idle rather than
                    // abort — the done slots below degrade per item.
                    Err(_) => busy_us.push(0),
                }
            }
            if let Some(m) = monitor {
                *finished.lock().unwrap_or_else(PoisonError::into_inner) = true;
                finished_cv.notify_all();
                let _ = m.join();
            }
            busy_us
        })
    };

    let cancel_reason = budget.token.reason();
    let mut out: Vec<Result<R, Dropped>> = done
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| match cancel_reason {
                    // Never claimed because the token tripped first.
                    Some(reason) => Err(Dropped::Skipped(reason)),
                    None => Err(Dropped::Panic(Box::new(format!(
                        "executor: result slot {i} never filled"
                    )) as Payload)),
                })
        })
        .collect();
    apply_cut(&mut out, budget.token);
    (out, ExecReport { threads, busy_us })
}

/// The watchdog monitor loop: samples per-worker heartbeats every
/// `wd.poll` until the phase finishes, and trips `token` with
/// [`CancelReason::Stall`] when a worker has been inside one item for
/// longer than `max(wd.min_stall, wd.multiple × observed mean item
/// time)`. The mean is estimated generously (elapsed × workers /
/// completed items), which biases the watchdog away from false positives
/// on legitimately slow phases. Crucially, "elapsed" is measured up to
/// the *last heartbeat progress*, not the current instant: once every
/// healthy worker has drained, the threshold freezes while the stalled
/// worker's silence keeps growing — otherwise a short phase (few items
/// per worker) could see its threshold outrun the stall forever.
#[allow(clippy::too_many_arguments)]
fn monitor_heartbeats(
    label: &str,
    wd: Watchdog,
    token: &CancelToken,
    beats: &[AtomicU64],
    cur_item: &[AtomicUsize],
    done_count: &AtomicUsize,
    finished: &Mutex<bool>,
    finished_cv: &Condvar,
) {
    let phase_start = Instant::now();
    let mut seen: Vec<(u64, Instant)> = beats.iter().map(|_| (0u64, phase_start)).collect();
    let mut last_progress = phase_start;
    'monitor: loop {
        {
            let guard = finished.lock().unwrap_or_else(PoisonError::into_inner);
            let (guard, _) = finished_cv
                .wait_timeout(guard, wd.poll)
                .unwrap_or_else(PoisonError::into_inner);
            if *guard {
                break 'monitor;
            }
        }
        let now = Instant::now();
        // Refresh per-worker progress stamps first so the mean below is
        // based on when work was last actually moving.
        for (w, beat) in beats.iter().enumerate() {
            let b = beat.load(Ordering::Acquire);
            if b != seen[w].0 {
                seen[w] = (b, now);
                last_progress = now;
            }
        }
        let completed = done_count.load(Ordering::Relaxed);
        let mean = if completed > 0 {
            last_progress
                .duration_since(phase_start)
                .mul_f64(beats.len() as f64 / completed as f64)
        } else {
            Duration::ZERO
        };
        let threshold = wd.min_stall.max(mean.saturating_mul(wd.multiple));
        for (w, &(b, since)) in seen.iter().enumerate() {
            // Odd parity = the worker claimed an item it has not finished.
            if b % 2 == 1 && now.duration_since(since) >= threshold {
                let stalled = now.duration_since(since);
                pao_obs::counter_add("watchdog.stalls", 1);
                token.record_stall(StallRecord {
                    label: label.to_owned(),
                    worker: w,
                    item: cur_item[w].load(Ordering::Relaxed),
                    stalled,
                    threshold,
                });
                token.cancel(CancelReason::Stall);
                // One trip per phase: healthy workers drain cooperatively;
                // the stalled item must eventually return on its own.
                break 'monitor;
            }
        }
    }
    let total_beats: u64 = beats.iter().map(|b| b.load(Ordering::Acquire)).sum();
    pao_obs::gauge_max("watchdog.heartbeats", total_beats);
    pao_obs::flush_thread();
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One worker's reported busy time: its on-CPU time for the phase when
/// the kernel exposes it, capped by the wall-clock item total so the
/// phase's item spans always cover the busy figure. Wall time alone
/// counts scheduler preemption as busy — with more workers than cores
/// it inflates by the oversubscription factor while wall time gains
/// nothing (the apgen "3× busy on one core" artifact). Off Linux the
/// wall-clock total is reported unchanged.
fn worker_busy_us(cpu_start_ns: Option<u64>, wall_busy: Duration) -> u64 {
    let wall_us = duration_us(wall_busy);
    match (cpu_start_ns, pao_obs::thread_cpu_ns()) {
        // A zero delta means the whole worker ran inside one scheduler
        // accounting quantum (schedstat updates on tick/switch); the
        // wall total is the better estimate at that scale.
        (Some(a), Some(b)) if b > a => ((b - a) / 1_000).min(wall_us),
        _ => wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<i64> = (0..1000).collect();
        let expect: Vec<i64> = input.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(threads, input.clone(), |x| x * 2),
                expect,
                "{threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(8, Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(8, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(100, vec![1, 2, 3], |x| x), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panic_payload() {
        // The original assertion message must survive the worker boundary.
        let _ = parallel_map(2, vec![1, 2, 3, 4], |x| {
            assert!(x != 3, "boom");
            x
        });
    }

    #[test]
    fn balances_uneven_work() {
        // One huge item and many tiny ones: self-scheduling must not leave
        // workers starved behind the huge one. (Functional check only —
        // timing is not asserted; single-CPU CI cannot show speedup.)
        let mut items = vec![200_000u64];
        items.extend(std::iter::repeat_n(10, 63));
        let expect: Vec<u64> = items
            .iter()
            .map(|&spin| (0..spin).fold(0u64, |a, b| a.wrapping_add(b * b)))
            .collect();
        let got = parallel_map(4, items, |spin| {
            (0..spin).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn reports_threads_and_busy_time() {
        let (out, rep) = parallel_map_report(3, (0..64).collect::<Vec<u32>>(), |x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(rep.threads, 3);
        assert_eq!(rep.busy_us.len(), 3);
        // Inline mode reports a single worker.
        let (_, rep1) = parallel_map_report(1, vec![1, 2, 3], |x| x);
        assert_eq!(rep1.threads, 1);
        assert_eq!(rep1.busy_us.len(), 1);
    }

    #[test]
    fn labeled_run_records_spans_covering_busy_time() {
        pao_obs::enable_trace();
        let (out, rep) = parallel_map_labeled(3, "test.core.tick", (0..64u64).collect(), |x| {
            (0..20_000 + x).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        pao_obs::disable_all();
        let dump = pao_obs::take_trace();
        assert_eq!(out.len(), 64);
        // Other tests in this binary may record spans concurrently; judge
        // only our own label.
        let ours: Vec<_> = dump
            .events
            .iter()
            .filter(|e| e.name == "test.core.tick")
            .collect();
        assert_eq!(ours.len(), 64, "one span per item");
        // Every span sits on a worker track (1..=threads), and the span
        // total matches the executor's busy total to µs rounding: the
        // spans reuse the busy-time instants, so coverage is structural.
        assert!(ours.iter().all(|e| (1..=3).contains(&e.track)));
        let span_ns: u64 = ours.iter().map(|e| e.dur_ns).sum();
        let busy_ns = rep.total_busy_us() * 1000;
        assert!(
            span_ns + 1000 >= busy_ns,
            "span total {span_ns}ns must cover busy total {busy_ns}ns"
        );
    }

    #[test]
    fn scratch_state_persists_per_worker() {
        for threads in [1, 3] {
            let (out, _) = parallel_map_scratch(
                threads,
                "test.scratch",
                (0..100u32).collect::<Vec<_>>(),
                || 0u32,
                |seen, x| {
                    *seen += 1;
                    (x, *seen)
                },
            );
            // Order preserved; every worker's counter is monotone from 1.
            assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i as u32));
            assert!(out.iter().all(|&(_, s)| s >= 1));
            let max_seen = out.iter().map(|&(_, s)| s).max().unwrap();
            assert!(
                max_seen as usize >= 100 / threads.max(1),
                "scratch must persist across items on a worker"
            );
        }
    }

    #[test]
    fn quarantine_isolates_panicking_item() {
        for threads in [1, 4] {
            let (out, rep) = parallel_map_quarantine(
                threads,
                "test.quarantine",
                (0..16i64).collect::<Vec<_>>(),
                || (),
                |(), x| {
                    assert!(x != 5, "item five exploded");
                    x * 2
                },
            );
            assert_eq!(out.len(), 16, "{threads}");
            for (i, o) in out.iter().enumerate() {
                if i == 5 {
                    let reason = o.as_ref().expect_err("item 5 must be quarantined");
                    assert!(reason.contains("item five exploded"), "{reason}");
                } else {
                    assert_eq!(*o, Ok(i as i64 * 2), "item {i} at {threads} threads");
                }
            }
            assert_eq!(rep.busy_us.len(), rep.threads);
        }
    }

    #[test]
    fn executor_reusable_after_worker_panic() {
        // Regression: a panicking item used to poison the done-slot chain
        // and abort the scope; now the same executor (and the process)
        // keeps working afterwards.
        let (out, _) = parallel_map_quarantine(
            4,
            "test.reuse.faulty",
            (0..32u64).collect::<Vec<_>>(),
            || (),
            |(), x| {
                assert!(x % 7 != 3, "boom {x}");
                x
            },
        );
        assert_eq!(out.iter().filter(|o| o.is_err()).count(), 5);
        // Strict mode right after: must behave exactly as on a fresh
        // process.
        let clean = parallel_map(4, (0..32u64).collect::<Vec<_>>(), |x| x + 1);
        assert_eq!(clean, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn quarantine_reinitializes_scratch_after_panic() {
        // Inline mode is deterministic: the item after the panic must see
        // a fresh scratch, not one abandoned mid-unwind.
        let (out, _) = parallel_map_quarantine(
            1,
            "test.scratch.reinit",
            vec![10u32, 11, 12],
            || 0u32,
            |seen, x| {
                *seen += 1;
                assert!(x != 11, "poisoned item");
                (x, *seen)
            },
        );
        assert_eq!(out[0], Ok((10, 1)));
        assert!(out[1].is_err());
        assert_eq!(out[2], Ok((12, 1)), "scratch must be rebuilt after a fault");
    }

    #[test]
    fn injected_fault_is_quarantined_at_every_thread_count() {
        let _g = crate::fault::test_lock();
        for threads in [1, 4] {
            crate::fault::arm("test.inject", 2);
            let (out, _) = parallel_map_quarantine(
                threads,
                "test.inject",
                (0..8u32).collect::<Vec<_>>(),
                || (),
                |(), x| x,
            );
            assert!(!crate::fault::armed(), "fault must have fired");
            for (i, o) in out.iter().enumerate() {
                if i == 2 {
                    let reason = o.as_ref().expect_err("armed item quarantined");
                    assert!(reason.contains("injected fault"), "{reason}");
                } else {
                    assert_eq!(*o, Ok(i as u32), "{threads}");
                }
            }
        }
        crate::fault::disarm();
    }

    #[test]
    fn merge_accumulates_reports() {
        let mut a = ExecReport {
            threads: 2,
            busy_us: vec![5, 7],
        };
        a.merge(&ExecReport {
            threads: 4,
            busy_us: vec![1, 1, 2, 3],
        });
        assert_eq!(a.threads, 4);
        assert_eq!(a.busy_us, vec![6, 8, 2, 3]);
    }

    #[test]
    fn pre_cancelled_token_skips_everything_and_executor_stays_usable() {
        for threads in [1, 4] {
            let token = CancelToken::never();
            token.cancel(CancelReason::External);
            let (out, rep) = parallel_map_budget(
                threads,
                "test.precancel",
                (0..16u32).collect::<Vec<_>>(),
                || (),
                |(), x| x,
                PhaseBudget::new(&token, None),
            );
            assert_eq!(out.len(), 16, "{threads}");
            assert!(
                out.iter()
                    .all(|o| *o == Err(ItemFault::Skipped(CancelReason::External))),
                "{threads}: every item skipped"
            );
            assert_eq!(rep.busy_us.len(), rep.threads);
        }
        // The executor (and a fresh token) works normally right after.
        let token = CancelToken::never();
        let (out, _) = parallel_map_budget(
            4,
            "test.precancel.reuse",
            (0..8u32).collect::<Vec<_>>(),
            || (),
            |(), x| x + 1,
            PhaseBudget::new(&token, None),
        );
        assert!(out.iter().enumerate().all(|(i, o)| *o == Ok(i as u32 + 1)));
    }

    #[test]
    fn cancel_at_is_bit_identical_across_thread_counts() {
        const CUT: usize = 5;
        let mut runs: Vec<Vec<Result<u32, ItemFault>>> = Vec::new();
        for threads in [1usize, 4] {
            let token = CancelToken::never();
            let tok = &token;
            let (out, _) = parallel_map_budget(
                threads,
                "test.cancel_at",
                (0..32u32).collect::<Vec<_>>(),
                || (),
                move |(), x| {
                    if x as usize == CUT {
                        tok.cancel_at(CUT, CancelReason::External);
                    }
                    x * 3
                },
                PhaseBudget::new(tok, None),
            );
            // Completed prefix 0..=CUT in input order; everything after is
            // skipped even if a racing worker computed it.
            for (i, o) in out.iter().enumerate() {
                if i <= CUT {
                    assert_eq!(*o, Ok(i as u32 * 3), "{threads} item {i}");
                } else {
                    assert_eq!(
                        *o,
                        Err(ItemFault::Skipped(CancelReason::External)),
                        "{threads} item {i}"
                    );
                }
            }
            runs.push(out);
        }
        assert_eq!(runs[0], runs[1], "bit-identical at threads 1 and 4");
    }

    /// Property: for *any* cancel index, the deterministic cut keeps the
    /// completed prefix in input order, is bit-identical at threads
    /// {1, 4}, and leaves the executor fully reusable afterwards.
    #[test]
    fn prop_cancel_cut_is_ordered_deterministic_and_reusable() {
        pao_ptest::check("parallel.cancel_cut", 40, |rng| {
            let n = rng.gen_range(1..=48u64) as usize;
            // `cut >= n` exercises the no-cancel edge (nothing skipped).
            let cut = rng.gen_range(0..=(n as u64 + 1)) as usize;
            let mut runs: Vec<Vec<Result<usize, ItemFault>>> = Vec::new();
            for threads in [1usize, 4] {
                let token = CancelToken::never();
                let tok = &token;
                let (out, _) = parallel_map_budget(
                    threads,
                    "prop.cancel_cut",
                    (0..n).collect::<Vec<_>>(),
                    || (),
                    move |(), x| {
                        if x == cut {
                            tok.cancel_at(cut, CancelReason::External);
                        }
                        x * 7 + 1
                    },
                    PhaseBudget::new(tok, None),
                );
                for (i, o) in out.iter().enumerate() {
                    if i <= cut {
                        assert_eq!(*o, Ok(i * 7 + 1), "threads {threads} item {i}");
                    } else {
                        assert_eq!(
                            *o,
                            Err(ItemFault::Skipped(CancelReason::External)),
                            "threads {threads} item {i}"
                        );
                    }
                }
                runs.push(out);
                // Reusable: a fresh run right after the cancelled one
                // completes every item.
                let clean = CancelToken::never();
                let (again, _) = parallel_map_budget(
                    threads,
                    "prop.cancel_cut.again",
                    (0..n).collect::<Vec<_>>(),
                    || (),
                    |(), x| x,
                    PhaseBudget::new(&clean, None),
                );
                for (i, r) in again.iter().enumerate() {
                    assert_eq!(*r, Ok(i), "reuse after cancel, threads {threads}");
                }
            }
            assert_eq!(runs[0], runs[1], "bit-identical at threads 1 and 4");
        });
    }

    #[test]
    fn deadline_finishes_in_flight_items_and_skips_the_rest() {
        let token = CancelToken::after(Duration::from_millis(10));
        let (out, _) = parallel_map_budget(
            2,
            "test.deadline",
            (0..64u32).collect::<Vec<_>>(),
            || (),
            |(), x| {
                std::thread::sleep(Duration::from_millis(2));
                x
            },
            PhaseBudget::new(&token, None),
        );
        assert_eq!(out.len(), 64);
        let done = out.iter().filter(|o| o.is_ok()).count();
        let skipped = out
            .iter()
            .filter(|o| matches!(o, Err(ItemFault::Skipped(CancelReason::Deadline))))
            .count();
        assert_eq!(done + skipped, 64, "no panics, only done or skipped");
        assert!(done >= 1, "items claimed before expiry finish");
        assert!(skipped >= 1, "a 10ms budget cannot cover 128ms of work");
        // Completed results keep input order (prefix + racing claims).
        for (i, o) in out.iter().enumerate() {
            if let Ok(v) = o {
                assert_eq!(*v as usize, i);
            }
        }
    }

    #[test]
    fn watchdog_trips_on_injected_stall() {
        let _g = crate::fault::test_lock();
        crate::fault::arm_stall("test.stall", 1, 400);
        let token = CancelToken::never();
        let wd = Watchdog {
            multiple: 4,
            min_stall: Duration::from_millis(50),
            poll: Duration::from_millis(1),
        };
        let (out, _) = parallel_map_budget(
            2,
            "test.stall",
            (0..32u32).collect::<Vec<_>>(),
            || (),
            |(), x| {
                std::thread::sleep(Duration::from_millis(5));
                x
            },
            PhaseBudget::new(&token, Some(wd)),
        );
        crate::fault::disarm();
        assert!(token.is_cancelled(), "watchdog must trip the token");
        assert_eq!(token.reason(), Some(CancelReason::Stall));
        let stalls = token.take_stalls();
        assert_eq!(stalls.len(), 1, "one stall recorded");
        assert_eq!(stalls[0].item, 1, "the stalled item is identified");
        assert_eq!(stalls[0].label, "test.stall");
        // The stalled item finishes (cooperative model) and healthy items
        // claimed before the trip finish too; the rest are skipped.
        assert_eq!(out[1], Ok(1), "stalled item still returns its result");
        assert!(
            out.iter()
                .any(|o| matches!(o, Err(ItemFault::Skipped(CancelReason::Stall)))),
            "items after the trip are skipped"
        );
        assert!(
            out.iter().all(|o| !matches!(o, Err(ItemFault::Panic(_)))),
            "a stall is a degrade, never an abort"
        );
    }

    #[test]
    fn watchdog_runs_clean_phases_to_completion() {
        // A healthy phase under watchdog: identical output, no stalls.
        let token = CancelToken::never();
        let (out, _) = parallel_map_budget(
            1, // exercises the forced-threaded path for threads <= 1
            "test.watchdog.clean",
            (0..16u32).collect::<Vec<_>>(),
            || (),
            |(), x| x * 2,
            PhaseBudget::new(&token, Some(Watchdog::default())),
        );
        assert!(out.iter().enumerate().all(|(i, o)| *o == Ok(i as u32 * 2)));
        assert!(!token.is_cancelled());
        assert!(token.take_stalls().is_empty());
    }
}
