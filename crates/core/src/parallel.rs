//! Self-scheduling parallel executor (the paper's future-work item (ii):
//! multi-threading to further reduce runtime).
//!
//! Unique instances, pattern DPs, cluster groups, repair scans and audit
//! shards are all independent units of work with wildly uneven costs (a
//! RAM macro's pin takes orders of magnitude longer than an inverter's).
//! A static chunking scheme stalls on the unlucky worker that drew the
//! expensive chunk; instead every worker *claims* the next unprocessed
//! index from a shared atomic counter, so load balances itself at
//! per-item granularity with no work-queue allocation and no external
//! thread-pool dependency — scoped threads and two atomics, std only.
//!
//! Results are written into a pre-sized slot table indexed by the claimed
//! position, so output order equals input order regardless of which
//! worker finished what — callers observe output identical to the
//! sequential mode (`threads <= 1`).

//! **Fault isolation.** Every work item runs under
//! [`std::panic::catch_unwind`], so one panicking item cannot take down
//! the phase: the quarantine-mode entry point
//! ([`parallel_map_quarantine`]) yields the panic as a per-item `Err`
//! while every other item completes, and the strict entry points
//! re-raise the first payload only after the full phase has drained.
//! Slot mutexes recover from poisoning (`PoisonError::into_inner`) so a
//! fault in one item can never cascade into an unrelated "done slot"
//! panic on another thread.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A caught worker-panic payload (kept intact so strict callers can
/// re-raise it with the original assertion message).
type Payload = Box<dyn Any + Send + 'static>;

/// Renders a caught panic payload as the quarantine reason string.
fn payload_reason(payload: &Payload) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_owned())
}

/// What one parallel phase did: how many workers ran and how long each
/// was busy (claimed items, excluding idle/steal time). Powers the
/// per-step parallel-efficiency lines in [`crate::stats::PaoStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Worker threads that participated (1 for the inline mode).
    pub threads: usize,
    /// Busy time per worker, in microseconds (empty for empty inputs).
    pub busy_us: Vec<u64>,
}

impl ExecReport {
    /// Total busy time across workers, in microseconds.
    #[must_use]
    pub fn total_busy_us(&self) -> u64 {
        self.busy_us.iter().sum()
    }

    /// Merges another report (phases run in several calls — e.g. repair
    /// rounds — accumulate into one report).
    pub fn merge(&mut self, other: &ExecReport) {
        self.threads = self.threads.max(other.threads);
        for (i, &b) in other.busy_us.iter().enumerate() {
            if i < self.busy_us.len() {
                self.busy_us[i] += b;
            } else {
                self.busy_us.push(b);
            }
        }
    }
}

/// Maps `f` over `items` with a self-scheduling pool of up to `threads`
/// workers, preserving order. With `threads <= 1` (or one item) this runs
/// inline on the caller's thread, matching the paper's single-threaded
/// measurement mode exactly.
///
/// ```
/// let squares = pao_core::parallel::parallel_map(4, vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_report(threads, items, f).0
}

/// [`parallel_map`] that also reports worker count and per-worker busy
/// time for the phase.
///
/// A worker panic is re-raised on the caller with its original payload
/// (via [`std::panic::resume_unwind`]), so assertion messages from inside
/// `f` survive the thread boundary.
pub fn parallel_map_report<T, R, F>(threads: usize, items: Vec<T>, f: F) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_labeled(threads, "item", items, f)
}

/// [`parallel_map_report`] with an observability label: when span
/// recording is on ([`pao_obs::enable_trace`]), every item becomes one
/// span named `label` on the claiming worker's track (worker `w` records
/// on track `w + 1`; the labels reuse the busy-time instants, so tracing
/// adds no clock reads to the hot loop). When recording is off the label
/// is inert.
pub fn parallel_map_labeled<T, R, F>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    f: F,
) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_scratch(threads, label, items, || (), |(), item| f(item))
}

/// [`parallel_map_labeled`] with per-worker scratch state: `init` runs
/// once on each worker thread (and once for the inline mode), and every
/// item call receives that worker's `&mut S`. This is how per-worker
/// arenas (e.g. [`pao_drc::DrcScratch`]) reach fine-grained scans — the
/// repair and audit phases probe one pin per item and would otherwise
/// re-allocate the DRC workspace per probe.
///
/// The scratch is dropped when its worker finishes; state that must
/// outlive the phase (observability tallies) should be published from
/// inside `f`.
pub fn parallel_map_scratch<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let (outcomes, report) = run_isolated(threads, label, items, init, f);
    let mut panic: Option<Payload> = None;
    let out: Vec<R> = outcomes
        .into_iter()
        .filter_map(|o| match o {
            Ok(r) => Some(r),
            Err(payload) => {
                panic = panic.take().or(Some(payload));
                None
            }
        })
        .collect();
    if let Some(payload) = panic {
        // Strict contract: the whole phase drained (no half-poisoned
        // state), then the first payload is re-raised with its original
        // assertion message.
        std::panic::resume_unwind(payload);
    }
    (out, report)
}

/// Fault-isolated map: like [`parallel_map_scratch`], but a panicking
/// work item yields `Err(reason)` in its output slot (its quarantine
/// record) while **every other item completes normally**. The executor
/// and its slot mutexes stay fully usable afterwards — quarantine is
/// per item, not per phase.
///
/// A worker whose item panicked gets a fresh scratch (`init` is re-run)
/// before claiming its next item, since the old scratch may have been
/// left mid-update by the unwind.
///
/// ```
/// let (out, _) = pao_core::parallel::parallel_map_quarantine(
///     2,
///     "docs.quarantine",
///     vec![1, 2, 3],
///     || (),
///     |(), x| {
///         assert!(x != 2, "two is right out");
///         x * 10
///     },
/// );
/// assert_eq!(out[0], Ok(10));
/// assert!(out[1].as_ref().unwrap_err().contains("two is right out"));
/// assert_eq!(out[2], Ok(30));
/// ```
pub fn parallel_map_quarantine<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<Result<R, String>>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let (outcomes, report) = run_isolated(threads, label, items, init, f);
    let out = outcomes
        .into_iter()
        .map(|o| o.map_err(|payload| payload_reason(&payload)))
        .collect();
    (out, report)
}

/// The shared engine: self-scheduling order-preserving map with per-item
/// `catch_unwind` isolation. Both the strict and the quarantine entry
/// points run through here; they differ only in how `Err` slots are
/// surfaced.
fn run_isolated<T, R, S, F, I>(
    threads: usize,
    label: &'static str,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<Result<R, Payload>>, ExecReport)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    // One guarded item call: the armed-fault hook and the item body both
    // run inside the unwind boundary, so an injected or organic panic is
    // contained to this slot.
    let run_one = |scratch: &mut S, i: usize, item: T| -> Result<R, Payload> {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            crate::fault::fire(label, i);
            f(scratch, item)
        }))
    };
    if threads <= 1 || n <= 1 {
        let start = Instant::now();
        let mut scratch = init();
        let mut out: Vec<Result<R, Payload>> = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            let res = run_one(&mut scratch, i, item);
            if res.is_err() {
                scratch = init();
            }
            out.push(res);
        }
        let elapsed = start.elapsed();
        if n > 0 {
            pao_obs::record_span_at(label, start, elapsed);
        }
        let report = ExecReport {
            threads: 1,
            busy_us: vec![duration_us(elapsed)],
        };
        return (out, report);
    }
    let threads = threads.min(n);

    // Items move into per-index slots the workers drain; results come back
    // through parallel slots. Mutex<Option<T>> per slot keeps this safe
    // without unsafe code; each slot is locked exactly once per side, so
    // contention is nil. No lock is held across the item call, and every
    // lock recovers from poisoning, so one fault cannot cascade.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let done: Vec<Mutex<Option<Result<R, Payload>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let busy_us = {
        let (work, done, next, init, run_one) = (&work, &done, &next, &init, &run_one);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        if pao_obs::trace_enabled() {
                            // Worker w of every phase shares track w + 1,
                            // so one Perfetto row shows a worker's whole run.
                            pao_obs::trace::set_track(w as u32 + 1, &format!("worker {w}"));
                        }
                        let mut scratch = init();
                        let mut busy = Duration::ZERO;
                        loop {
                            // Claim the next unprocessed index; self-scheduling
                            // makes uneven item costs balance automatically.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                // Scope exit does not wait for TLS
                                // destructors; push buffered spans and
                                // metrics out while still joinable.
                                pao_obs::flush_thread();
                                return duration_us(busy);
                            }
                            let item = work[i]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .take();
                            let start = Instant::now();
                            let out = match item {
                                Some(item) => run_one(&mut scratch, i, item),
                                // Unreachable: fetch_add hands out each
                                // index exactly once. Degrade, don't abort.
                                None => {
                                    Err(Box::new(format!("executor: work slot {i} claimed twice"))
                                        as Payload)
                                }
                            };
                            if out.is_err() {
                                // The unwind may have left the scratch
                                // arena mid-update; rebuild it.
                                scratch = init();
                            }
                            let elapsed = start.elapsed();
                            busy += elapsed;
                            pao_obs::record_span_at(label, start, elapsed);
                            *done[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        }
                    })
                })
                .collect();
            let mut busy_us = Vec::with_capacity(threads);
            for h in handles {
                match h.join() {
                    Ok(us) => busy_us.push(us),
                    // Workers catch item panics, so a join error means the
                    // worker loop itself failed; report idle rather than
                    // abort — the done slots below degrade per item.
                    Err(_) => busy_us.push(0),
                }
            }
            busy_us
        })
    };

    let out: Vec<Result<R, Payload>> = done
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(Box::new(format!("executor: result slot {i} never filled")) as Payload)
                })
        })
        .collect();
    (out, ExecReport { threads, busy_us })
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<i64> = (0..1000).collect();
        let expect: Vec<i64> = input.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(threads, input.clone(), |x| x * 2),
                expect,
                "{threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(8, Vec::<i32>::new(), |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(8, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(100, vec![1, 2, 3], |x| x), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panic_payload() {
        // The original assertion message must survive the worker boundary.
        let _ = parallel_map(2, vec![1, 2, 3, 4], |x| {
            assert!(x != 3, "boom");
            x
        });
    }

    #[test]
    fn balances_uneven_work() {
        // One huge item and many tiny ones: self-scheduling must not leave
        // workers starved behind the huge one. (Functional check only —
        // timing is not asserted; single-CPU CI cannot show speedup.)
        let mut items = vec![200_000u64];
        items.extend(std::iter::repeat_n(10, 63));
        let expect: Vec<u64> = items
            .iter()
            .map(|&spin| (0..spin).fold(0u64, |a, b| a.wrapping_add(b * b)))
            .collect();
        let got = parallel_map(4, items, |spin| {
            (0..spin).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn reports_threads_and_busy_time() {
        let (out, rep) = parallel_map_report(3, (0..64).collect::<Vec<u32>>(), |x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(rep.threads, 3);
        assert_eq!(rep.busy_us.len(), 3);
        // Inline mode reports a single worker.
        let (_, rep1) = parallel_map_report(1, vec![1, 2, 3], |x| x);
        assert_eq!(rep1.threads, 1);
        assert_eq!(rep1.busy_us.len(), 1);
    }

    #[test]
    fn labeled_run_records_spans_covering_busy_time() {
        pao_obs::enable_trace();
        let (out, rep) = parallel_map_labeled(3, "test.core.tick", (0..64u64).collect(), |x| {
            (0..20_000 + x).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        pao_obs::disable_all();
        let dump = pao_obs::take_trace();
        assert_eq!(out.len(), 64);
        // Other tests in this binary may record spans concurrently; judge
        // only our own label.
        let ours: Vec<_> = dump
            .events
            .iter()
            .filter(|e| e.name == "test.core.tick")
            .collect();
        assert_eq!(ours.len(), 64, "one span per item");
        // Every span sits on a worker track (1..=threads), and the span
        // total matches the executor's busy total to µs rounding: the
        // spans reuse the busy-time instants, so coverage is structural.
        assert!(ours.iter().all(|e| (1..=3).contains(&e.track)));
        let span_ns: u64 = ours.iter().map(|e| e.dur_ns).sum();
        let busy_ns = rep.total_busy_us() * 1000;
        assert!(
            span_ns + 1000 >= busy_ns,
            "span total {span_ns}ns must cover busy total {busy_ns}ns"
        );
    }

    #[test]
    fn scratch_state_persists_per_worker() {
        for threads in [1, 3] {
            let (out, _) = parallel_map_scratch(
                threads,
                "test.scratch",
                (0..100u32).collect::<Vec<_>>(),
                || 0u32,
                |seen, x| {
                    *seen += 1;
                    (x, *seen)
                },
            );
            // Order preserved; every worker's counter is monotone from 1.
            assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i as u32));
            assert!(out.iter().all(|&(_, s)| s >= 1));
            let max_seen = out.iter().map(|&(_, s)| s).max().unwrap();
            assert!(
                max_seen as usize >= 100 / threads.max(1),
                "scratch must persist across items on a worker"
            );
        }
    }

    #[test]
    fn quarantine_isolates_panicking_item() {
        for threads in [1, 4] {
            let (out, rep) = parallel_map_quarantine(
                threads,
                "test.quarantine",
                (0..16i64).collect::<Vec<_>>(),
                || (),
                |(), x| {
                    assert!(x != 5, "item five exploded");
                    x * 2
                },
            );
            assert_eq!(out.len(), 16, "{threads}");
            for (i, o) in out.iter().enumerate() {
                if i == 5 {
                    let reason = o.as_ref().expect_err("item 5 must be quarantined");
                    assert!(reason.contains("item five exploded"), "{reason}");
                } else {
                    assert_eq!(*o, Ok(i as i64 * 2), "item {i} at {threads} threads");
                }
            }
            assert_eq!(rep.busy_us.len(), rep.threads);
        }
    }

    #[test]
    fn executor_reusable_after_worker_panic() {
        // Regression: a panicking item used to poison the done-slot chain
        // and abort the scope; now the same executor (and the process)
        // keeps working afterwards.
        let (out, _) = parallel_map_quarantine(
            4,
            "test.reuse.faulty",
            (0..32u64).collect::<Vec<_>>(),
            || (),
            |(), x| {
                assert!(x % 7 != 3, "boom {x}");
                x
            },
        );
        assert_eq!(out.iter().filter(|o| o.is_err()).count(), 5);
        // Strict mode right after: must behave exactly as on a fresh
        // process.
        let clean = parallel_map(4, (0..32u64).collect::<Vec<_>>(), |x| x + 1);
        assert_eq!(clean, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn quarantine_reinitializes_scratch_after_panic() {
        // Inline mode is deterministic: the item after the panic must see
        // a fresh scratch, not one abandoned mid-unwind.
        let (out, _) = parallel_map_quarantine(
            1,
            "test.scratch.reinit",
            vec![10u32, 11, 12],
            || 0u32,
            |seen, x| {
                *seen += 1;
                assert!(x != 11, "poisoned item");
                (x, *seen)
            },
        );
        assert_eq!(out[0], Ok((10, 1)));
        assert!(out[1].is_err());
        assert_eq!(out[2], Ok((12, 1)), "scratch must be rebuilt after a fault");
    }

    #[test]
    fn injected_fault_is_quarantined_at_every_thread_count() {
        let _g = crate::fault::test_lock();
        for threads in [1, 4] {
            crate::fault::arm("test.inject", 2);
            let (out, _) = parallel_map_quarantine(
                threads,
                "test.inject",
                (0..8u32).collect::<Vec<_>>(),
                || (),
                |(), x| x,
            );
            assert!(!crate::fault::armed(), "fault must have fired");
            for (i, o) in out.iter().enumerate() {
                if i == 2 {
                    let reason = o.as_ref().expect_err("armed item quarantined");
                    assert!(reason.contains("injected fault"), "{reason}");
                } else {
                    assert_eq!(*o, Ok(i as u32), "{threads}");
                }
            }
        }
        crate::fault::disarm();
    }

    #[test]
    fn merge_accumulates_reports() {
        let mut a = ExecReport {
            threads: 2,
            busy_us: vec![5, 7],
        };
        a.merge(&ExecReport {
            threads: 4,
            busy_us: vec![1, 1, 2, 3],
        });
        assert_eq!(a.threads, 4);
        assert_eq!(a.busy_us, vec![6, 8, 2, 3]);
    }
}
